#!/usr/bin/env python3
"""Where did every bit go?  Telemetry-driven compression post-mortem.

Compresses one synthetic benchmark with SAMC and SADC under an
observability session, then renders the three telemetry channels: the
per-codec bit-attribution tables (whose totals equal the compressed
sizes in bits, exactly), the aggregated span tree, and a few counters.

This is the programmatic face of ``python -m repro stats``; telemetry
is off by default and compressed output is byte-identical either way.

Run:  python examples/stats_demo.py
"""

from repro import samc_compress
from repro.core.sadc import sadc_compress
from repro.obs import obs_session
from repro.obs.render import format_bits_table, format_span_tree
from repro.workloads import generate_benchmark


def main() -> None:
    program = generate_benchmark("gcc", "mips", scale=0.5)
    code = program.code
    print(f"benchmark: {program.name} ({len(code)} bytes of MIPS code)\n")

    with obs_session() as recorder:
        with recorder.scope(f"{program.name}/mips/SAMC"):
            samc_image = samc_compress(code)
        with recorder.scope(f"{program.name}/mips/SADC"):
            sadc_image = sadc_compress(code, isa="mips")
        snapshot = recorder.snapshot()

    print("=== bit attribution (totals are the compressed sizes) ===\n")
    print(format_bits_table(snapshot["bits"]))

    for image, scope in (
        (samc_image, f"{program.name}/mips/SAMC"),
        (sadc_image, f"{program.name}/mips/SADC"),
    ):
        accounted = sum(snapshot["bits"][scope].values())
        assert accounted == image.total_bytes * 8
        print(f"\n{scope}: {accounted} bits accounted "
              f"== {image.total_bytes} bytes x 8  ✓")

    print("\n=== span tree (where the time went) ===\n")
    print(format_span_tree(snapshot["spans"]))

    print("\n=== selected counters ===\n")
    for name in sorted(snapshot["counters"]):
        if not name.startswith(("samc.stream", "lzss.")):
            print(f"  {name} = {snapshot['counters'][name]}")


if __name__ == "__main__":
    main()
