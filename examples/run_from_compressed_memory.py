#!/usr/bin/env python3
"""Execute real programs directly out of compressed memory.

This is the whole point of the paper, demonstrated end to end: programs
live *compressed* in main memory; the CPU executes normal MIPS code; on
every I-cache miss the refill engine looks the block up in the LAT,
decompresses it with the real codec, and hands the CPU its instructions.
If a single bit anywhere in the pipeline were wrong, the kernels below
would compute wrong answers.

For each kernel (memcpy, dot product, Fibonacci, bubble sort, checksum)
we run natively and then through SAMC- and SADC-compressed memory,
verify identical results, and report the compression and fetch-cycle
cost.

Run:  python examples/run_from_compressed_memory.py
"""

from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.isa.mips.interp import MipsMachine
from repro.isa.x86.interp import X86Machine
from repro.memory.fetchsim import CompressedFetchPort, run_compressed
from repro.workloads.kernels import KERNELS, run_kernel
from repro.workloads.x86_kernels import X86_KERNELS, run_x86_kernel


def main() -> None:
    header = (f"{'kernel':<12} {'code':>6} {'scheme':<6} {'ratio':>7} "
              f"{'refills':>8} {'hit%':>6} {'cyc/instr':>10} {'result':>8}")
    print(header)
    print("-" * len(header))

    for kernel in KERNELS:
        code = kernel.code()
        native = run_kernel(kernel)
        assert kernel.check(native)

        for label, image in (
            ("SAMC", SamcCodec.for_mips().compress(code)),
            ("SADC", MipsSadcCodec().compress(code)),
        ):
            machine = MipsMachine()
            machine.load_code(code)
            kernel.setup(machine)
            result = run_compressed(image, machine, cache_size=256)
            ok = kernel.check(machine) and (
                machine.state().registers == native.state().registers
            )
            print(f"{kernel.name:<12} {len(code):>6} {label:<6} "
                  f"{image.compression_ratio:>7.3f} {result.refills:>8} "
                  f"{100 * result.hit_ratio:>5.1f}% "
                  f"{result.fetch_cycles_per_instruction:>10.2f} "
                  f"{'OK' if ok else 'FAIL':>8}")

    # -- the CISC path: variable-length fetches spanning block boundaries
    print()
    for kernel in X86_KERNELS:
        code = kernel.code()
        native = run_x86_kernel(kernel)
        assert kernel.check(native)
        image = SamcCodec.for_bytes().compress(code)
        port = CompressedFetchPort(image, cache_size=256)
        machine = X86Machine(fetch_bytes=port.fetch_bytes)
        machine.load_code(code)
        kernel.setup(machine)
        machine.run()
        ok = kernel.check(machine) and machine.regs == native.regs
        cyc = port.cycles / max(1, machine.instructions_executed)
        print(f"{kernel.name:<12} {len(code):>6} {'x86':<6} "
              f"{image.compression_ratio:>7.3f} {port.refills:>8} "
              f"{100 * port.cache.stats.hit_ratio:>5.1f}% "
              f"{cyc:>10.2f} {'OK' if ok else 'FAIL':>8}")

    print("\nevery kernel computed identical results fetching through the "
          "decompressing refill engine (LAT -> CLB -> block decode) — on "
          "MIPS with word fetches, on x86 with variable-length fetches "
          "spanning block boundaries.")
    print("note: tiny kernels carry the full model tables, so their "
          "ratios exceed 1 — code compression pays off at program scale, "
          "not for 40-byte loops.")


if __name__ == "__main__":
    main()
