#!/usr/bin/env python3
"""Regenerate Figures 7, 8 and 9 of the paper in one run.

Prints the three result tables the paper plots.  Absolute values come
from synthetic SPEC95 stand-ins (see DESIGN.md), so compare *shapes*:
who wins, by roughly what factor, and how the ordering changes between
the RISC and CISC targets.

Run:  python examples/reproduce_figures.py [--scale 2.0] [--quick]
"""

import argparse

from repro.analysis.experiments import (
    FIGURE_ALGORITHMS,
    average_ratios,
    run_suite,
)
from repro.analysis.tables import format_averages, format_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2.0,
                        help="benchmark size multiplier (default 2.0)")
    parser.add_argument("--quick", action="store_true",
                        help="run a 4-benchmark subset for a fast preview")
    args = parser.parse_args()

    names = ("compress", "gcc", "swim", "vortex") if args.quick else None

    fig7 = run_suite("mips", FIGURE_ALGORITHMS, scale=args.scale, names=names)
    print(format_suite(fig7, title="Figure 7 — MIPS compression ratios"))
    print()

    fig8 = run_suite("x86", FIGURE_ALGORITHMS, scale=args.scale, names=names)
    print(format_suite(fig8, title="Figure 8 — Pentium Pro compression ratios"))
    print()

    fig9 = {}
    for isa, rows in (("mips", None), ("x86", None)):
        rows = run_suite(isa, ("huffman", "SAMC", "SADC"),
                         scale=args.scale, names=names)
        fig9[isa] = average_ratios(rows)
    print(format_averages(fig9, title="Figure 9 — instruction compression "
                                      "algorithm averages"))

    print("\npaper shapes to check: gzip < SADC < SAMC ~ compress < "
          "huffman on MIPS; SAMC loses its edge on x86; SADC beats SAMC "
          "everywhere.")


if __name__ == "__main__":
    main()
