#!/usr/bin/env python3
"""Design-space exploration: block size × cache size × algorithm.

The CAD question behind the paper ("to understand the limits of program
compressibility as a CAD problem"): for a given program, which corner of
the (cache block size, I-cache size, compression scheme) space gives the
best memory-saved-per-slowdown?  This sweep prints the whole grid and
flags the Pareto-best configurations.

Run:  python examples/design_space.py
"""

from typing import List, Tuple

from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.memory import CompressedMemorySystem, generate_trace
from repro.workloads import generate_benchmark

BLOCK_SIZES = (16, 32, 64)
CACHE_SIZES = (1024, 4096)
TRACE_FETCHES = 60_000


def main() -> None:
    program = generate_benchmark("go", "mips", scale=1.5).code
    print(f"program: go ({len(program)} bytes)\n")

    rows: List[Tuple[str, int, int, float, float]] = []
    for block_size in BLOCK_SIZES:
        images = {
            "SAMC": SamcCodec.for_mips(block_size=block_size).compress(program),
            "SADC": MipsSadcCodec(block_size=block_size).compress(program),
        }
        for cache_size in CACHE_SIZES:
            trace = list(generate_trace(len(program), TRACE_FETCHES, seed=4))
            baseline = CompressedMemorySystem(
                len(program), cache_size=cache_size, block_size=block_size
            ).run(trace)
            for name, image in images.items():
                run = CompressedMemorySystem(
                    len(program), image=image,
                    cache_size=cache_size, block_size=block_size,
                ).run(trace)
                rows.append((
                    name, block_size, cache_size,
                    image.compression_ratio, run.slowdown_vs(baseline),
                ))

    pareto = _pareto(rows)
    header = (f"{'scheme':<6} {'block':>6} {'cache':>6} "
              f"{'ratio':>7} {'slowdown':>9}  pareto")
    print(header)
    print("-" * len(header))
    for row in sorted(rows, key=lambda r: (r[0], r[1], r[2])):
        star = "  *" if row in pareto else ""
        print(f"{row[0]:<6} {row[1]:>6} {row[2]:>6} "
              f"{row[3]:>7.3f} {row[4]:>9.3f}{star}")

    print("\n'*' marks configurations no other point dominates on both "
          "stored size and slowdown.")


def _pareto(rows):
    best = []
    for row in rows:
        dominated = any(
            other[3] <= row[3] and other[4] <= row[4]
            and (other[3] < row[3] or other[4] < row[4])
            for other in rows
        )
        if not dominated:
            best.append(row)
    return best


if __name__ == "__main__":
    main()
