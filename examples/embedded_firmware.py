#!/usr/bin/env python3
"""Scenario: fit firmware into a smaller ROM without losing performance.

The paper's motivating use case — "available memory is limited, posing
serious constraints on program size".  An engineer has a MIPS firmware
image, a ROM budget, and a CPU with a small I-cache.  This example walks
the actual decision:

1. compress the firmware with every candidate scheme,
2. check which ones fit the ROM budget (payload + tables + LAT),
3. simulate the decompress-on-miss memory system on a realistic fetch
   trace to price the slowdown,
4. estimate the decoder hardware each scheme needs,

and prints the resulting trade-off table.

Run:  python examples/embedded_firmware.py
"""

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.hw.cost import SadcDecoderCost, SamcDecoderCost
from repro.memory import CompressedMemorySystem, generate_trace
from repro.workloads import generate_benchmark

ROM_BUDGET_FRACTION = 0.75  # the new ROM is 75% of the old one
CACHE_SIZE = 2048
TRACE_FETCHES = 80_000


def main() -> None:
    firmware = generate_benchmark("m88ksim", "mips", scale=2.0).code
    rom_budget = int(len(firmware) * ROM_BUDGET_FRACTION)
    print(f"firmware: {len(firmware)} bytes; ROM budget: {rom_budget} bytes\n")

    candidates = {
        "byte-huffman": ByteHuffmanCodec().compress(firmware),
        "SAMC": SamcCodec.for_mips().compress(firmware),
        "SAMC (shift-only)": SamcCodec.for_mips(
            probability_mode="pow2"
        ).compress(firmware),
        "SADC": MipsSadcCodec().compress(firmware),
    }

    trace = list(generate_trace(len(firmware), TRACE_FETCHES, seed=2))
    baseline = CompressedMemorySystem(
        len(firmware), cache_size=CACHE_SIZE
    ).run(trace)

    header = (f"{'scheme':<18} {'stored':>8} {'ratio':>6} {'fits':>5} "
              f"{'slowdown':>9} {'decoder gates':>14}")
    print(header)
    print("-" * len(header))
    for name, image in candidates.items():
        system = CompressedMemorySystem(
            len(firmware), image=image, cache_size=CACHE_SIZE
        )
        run = system.run(trace)
        slowdown = run.slowdown_vs(baseline)
        gates = _decoder_gates(name, image)
        fits = "yes" if image.total_bytes <= rom_budget else "no"
        print(f"{name:<18} {image.total_bytes:>8} "
              f"{image.compression_ratio:>6.3f} {fits:>5} "
              f"{slowdown:>9.3f} {gates:>14,}")

    print(
        "\nreading the table: SADC stores the least and refills fastest; "
        "SAMC needs no ISA knowledge; the shift-only SAMC variant trades "
        "a little ratio for a multiplier-free decoder."
    )


def _decoder_gates(name: str, image) -> int:
    if name.startswith("SAMC"):
        model = image.metadata["model"]
        return SamcDecoderCost(
            probability_count=model.probability_count(),
            probability_bits=5 if "shift" in name else 8,
            multiplier_free="shift" in name,
        ).total_gates
    if name == "SADC":
        return SadcDecoderCost(
            dictionary_bits=image.metadata["dictionary"].storage_bits
        ).total_gates
    # Byte-Huffman: one decode table, tiny control.
    return 500 + image.model_bytes * 8 // 4


if __name__ == "__main__":
    main()
