#!/usr/bin/env python3
"""Quickstart: compress an embedded program, decompress any cache block.

Generates a synthetic SPEC95-style MIPS binary, compresses it with both
of the paper's algorithms (SAMC and SADC) plus the byte-Huffman prior
art, verifies lossless round-trips, and demonstrates the property the
whole design revolves around: any 32-byte cache block decompresses
independently, so a cache refill engine never touches the rest of the
program.

Run:  python examples/quickstart.py
"""

from repro import sadc_compress, sadc_decompress, samc_compress, samc_decompress
from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.samc import SamcCodec
from repro.workloads import generate_benchmark


def main() -> None:
    program = generate_benchmark("ijpeg", "mips", scale=1.0)
    code = program.code
    print(f"benchmark: {program.name} ({len(code)} bytes of MIPS code)\n")

    # --- SAMC: ISA-independent statistical coding -----------------------
    samc_image = samc_compress(code)
    assert samc_decompress(samc_image) == code
    print(samc_image.describe())

    # --- SADC: ISA-dependent dictionary coding --------------------------
    sadc_image = sadc_compress(code, isa="mips")
    assert sadc_decompress(sadc_image) == code
    print(sadc_image.describe())

    # --- The prior art for context --------------------------------------
    huffman = ByteHuffmanCodec().compress(code)
    print(huffman.describe())

    # --- Random access: the refill-engine operation ---------------------
    codec = SamcCodec.for_mips()
    image = codec.compress(code)
    block = 7
    original = code[block * 32 : (block + 1) * 32]
    refilled = codec.decompress_block(image, block)
    assert refilled == original
    offset = image.lat.block_offset(block)
    print(
        f"\nrandom access: block {block} lives at compressed offset "
        f"{offset} ({len(image.blocks[block])} bytes) and expands to 32 "
        f"bytes — no other block was touched"
    )


if __name__ == "__main__":
    main()
