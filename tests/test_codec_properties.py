"""Property-based round-trip tests over random canonical programs.

The workload generator exercises realistic statistics; these tests
exercise the *corners* — arbitrary canonical instruction sequences for
both ISAs, including degenerate distributions hypothesis likes to find
(all one opcode, maximal immediates, register 0 everywhere), plus the
hand-picked degenerate inputs every codec must survive: the empty
program, a single instruction, and all-identical blocks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sadc import MipsSadcCodec, X86SadcCodec
from repro.core.samc import SamcCodec
from repro.isa.mips.formats import OPCODES, Instruction
from repro.isa.x86.formats import (
    IMM_NONE,
    ONE_BYTE_TABLE,
    TWO_BYTE_TABLE,
    X86Instruction,
    _disp_size,
    _imm_size,
    decode_all,
)

_FP_TO_HW = {"ft": "rt", "fs": "rd", "fd": "shamt"}


@st.composite
def canonical_instruction(draw):
    """One instruction with values only in fields its format encodes."""
    spec = draw(st.sampled_from(OPCODES))
    fields = {"rs": 0, "rt": 0, "rd": 0, "shamt": 0, "imm": 0, "target": 0}
    for operand in spec.operands:
        if operand in ("rs", "rt", "rd", "shamt"):
            fields[operand] = draw(st.integers(0, 31))
        elif operand in _FP_TO_HW:
            fields[_FP_TO_HW[operand]] = draw(st.integers(0, 31))
        elif operand == "imm":
            fields["imm"] = draw(st.integers(0, 0xFFFF))
        elif operand == "target":
            fields["target"] = draw(st.integers(0, 0x3FFFFFF))
    return Instruction(spec, **fields)


@st.composite
def canonical_program(draw, min_size=1, max_size=64):
    instructions = draw(
        st.lists(canonical_instruction(), min_size=min_size, max_size=max_size)
    )
    code = bytearray()
    for instruction in instructions:
        code.extend(instruction.encode().to_bytes(4, "big"))
    return bytes(code)


@settings(max_examples=40, deadline=None)
@given(canonical_program())
def test_samc_roundtrip_property(code):
    codec = SamcCodec.for_mips()
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=25, deadline=None)
@given(canonical_program())
def test_sadc_roundtrip_property(code):
    codec = MipsSadcCodec(max_cycles=4)
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=20, deadline=None)
@given(canonical_program(min_size=9, max_size=48))
def test_samc_random_access_property(code):
    codec = SamcCodec.for_mips()
    image = codec.compress(code)
    for index in range(image.block_count()):
        want = code[index * 32 : (index + 1) * 32]
        assert codec.decompress_block(image, index) == want


@settings(max_examples=20, deadline=None)
@given(canonical_program(), st.sampled_from(["full", "pow2"]))
def test_samc_probability_modes_property(code, mode):
    codec = SamcCodec.for_mips(probability_mode=mode)
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=20, deadline=None)
@given(canonical_program())
def test_serialization_roundtrip_property(code):
    from repro.core.serialize import deserialize_image, serialize_image
    from repro.core.samc import samc_decompress

    image = SamcCodec.for_mips().compress(code)
    restored = deserialize_image(serialize_image(image))
    assert samc_decompress(restored) == code


# ---------------------------------------------------------------------------
# x86: canonical variable-length instruction sequences


#: Every modelled opcode, one- and two-byte, as (opcode bytes, grammar).
_X86_OPCODES = [
    (bytes([opcode]), info) for opcode, info in sorted(ONE_BYTE_TABLE.items())
] + [
    (bytes([0x0F, opcode]), info)
    for opcode, info in sorted(TWO_BYTE_TABLE.items())
]


@st.composite
def canonical_x86_instruction(draw):
    """One structurally valid x86 instruction, per the encoding grammar.

    Mirrors the decoder's rules exactly: SIB only when mod != 3 and
    rm == 4, displacement size from ModRM (+SIB base), immediate size
    from the opcode grammar (ModRM.reg for the F6/F7 groups) honouring
    the operand-size prefix.
    """
    opcode, info = draw(st.sampled_from(_X86_OPCODES))
    # Bias toward no prefix; 0x66 flips iz immediates from 4 to 2 bytes.
    prefixes = draw(st.sampled_from([b"", b"", b"", b"\x66"]))
    modrm = sib = None
    disp = b""
    reg = 0
    if info.has_modrm:
        mod = draw(st.integers(0, 3))
        reg = draw(st.integers(0, 7))
        rm = draw(st.integers(0, 7))
        modrm = (mod << 6) | (reg << 3) | rm
        if mod != 3 and rm == 4:
            sib = draw(st.integers(0, 255))
        disp_len = _disp_size(mod, rm, sib)
        disp = draw(st.binary(min_size=disp_len, max_size=disp_len))
    imm_kind = info.imm
    if info.imm_by_reg is not None:
        imm_kind = info.imm_by_reg.get(reg, IMM_NONE)
    imm_len = _imm_size(imm_kind, prefixes == b"\x66")
    imm = draw(st.binary(min_size=imm_len, max_size=imm_len))
    return X86Instruction(
        prefixes=prefixes, opcode=opcode, modrm=modrm, sib=sib,
        disp=disp, imm=imm,
    )


@st.composite
def canonical_x86_program(draw, min_size=1, max_size=32):
    instructions = draw(
        st.lists(
            canonical_x86_instruction(), min_size=min_size, max_size=max_size
        )
    )
    return b"".join(instruction.encode() for instruction in instructions)


@settings(max_examples=40, deadline=None)
@given(canonical_x86_program())
def test_x86_strategy_is_canonical(code):
    """The strategy emits exactly what the length decoder recovers."""
    decoded = decode_all(code)
    assert b"".join(instruction.encode() for instruction in decoded) == code


@settings(max_examples=25, deadline=None)
@given(canonical_x86_program())
def test_x86_sadc_roundtrip_property(code):
    codec = X86SadcCodec(max_cycles=4)
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=25, deadline=None)
@given(canonical_x86_program())
def test_samc_bytes_roundtrip_property(code):
    """Byte-oriented SAMC (the CISC fallback) on canonical x86 images."""
    codec = SamcCodec.for_bytes()
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=15, deadline=None)
@given(canonical_x86_program(min_size=12, max_size=40))
def test_x86_sadc_block_random_access_property(code):
    codec = X86SadcCodec(max_cycles=4)
    image = codec.compress(code)
    joined = b"".join(
        codec.decompress_block(image, index)
        for index in range(image.block_count())
    )
    assert joined == code


# ---------------------------------------------------------------------------
# Degenerate inputs, both ISAs


def _codecs():
    return [
        ("samc-mips", SamcCodec.for_mips()),
        ("samc-bytes", SamcCodec.for_bytes()),
        ("sadc-mips", MipsSadcCodec(max_cycles=4)),
        ("sadc-x86", X86SadcCodec(max_cycles=4)),
    ]


@pytest.mark.parametrize("name,codec", _codecs())
def test_empty_program_roundtrip(name, codec):
    image = codec.compress(b"")
    assert codec.decompress(image) == b""


@pytest.mark.parametrize(
    "name,codec,code",
    [
        ("samc-mips", SamcCodec.for_mips(), b"\x00\x00\x00\x00"),  # nop
        ("samc-bytes", SamcCodec.for_bytes(), b"\xc3"),  # ret
        ("sadc-mips", MipsSadcCodec(max_cycles=4), b"\x00\x00\x00\x00"),
        ("sadc-x86", X86SadcCodec(max_cycles=4), b"\xc3"),
    ],
)
def test_single_instruction_roundtrip(name, codec, code):
    image = codec.compress(code)
    assert codec.decompress(image) == code


@pytest.mark.parametrize(
    "name,codec,unit",
    [
        # One instruction repeated so every 32-byte block is identical.
        ("samc-mips", SamcCodec.for_mips(), b"\x00\x00\x08\x42"),
        ("samc-bytes", SamcCodec.for_bytes(), b"\x55"),  # push ebp
        ("sadc-mips", MipsSadcCodec(max_cycles=4), b"\x00\x00\x08\x42"),
        ("sadc-x86", X86SadcCodec(max_cycles=4), b"\x55"),
    ],
)
def test_all_identical_blocks_roundtrip(name, codec, unit):
    code = unit * (256 // len(unit))  # 8 identical 32-byte blocks
    image = codec.compress(code)
    assert image.block_count() == 8
    assert codec.decompress(image) == code
