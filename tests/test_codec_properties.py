"""Property-based round-trip tests over random canonical MIPS programs.

The workload generator exercises realistic statistics; these tests
exercise the *corners* — arbitrary canonical instruction sequences,
including degenerate distributions hypothesis likes to find (all one
opcode, maximal immediates, register 0 everywhere).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.isa.mips.formats import OPCODES, Instruction

_FP_TO_HW = {"ft": "rt", "fs": "rd", "fd": "shamt"}


@st.composite
def canonical_instruction(draw):
    """One instruction with values only in fields its format encodes."""
    spec = draw(st.sampled_from(OPCODES))
    fields = {"rs": 0, "rt": 0, "rd": 0, "shamt": 0, "imm": 0, "target": 0}
    for operand in spec.operands:
        if operand in ("rs", "rt", "rd", "shamt"):
            fields[operand] = draw(st.integers(0, 31))
        elif operand in _FP_TO_HW:
            fields[_FP_TO_HW[operand]] = draw(st.integers(0, 31))
        elif operand == "imm":
            fields["imm"] = draw(st.integers(0, 0xFFFF))
        elif operand == "target":
            fields["target"] = draw(st.integers(0, 0x3FFFFFF))
    return Instruction(spec, **fields)


@st.composite
def canonical_program(draw, min_size=1, max_size=64):
    instructions = draw(
        st.lists(canonical_instruction(), min_size=min_size, max_size=max_size)
    )
    code = bytearray()
    for instruction in instructions:
        code.extend(instruction.encode().to_bytes(4, "big"))
    return bytes(code)


@settings(max_examples=40, deadline=None)
@given(canonical_program())
def test_samc_roundtrip_property(code):
    codec = SamcCodec.for_mips()
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=25, deadline=None)
@given(canonical_program())
def test_sadc_roundtrip_property(code):
    codec = MipsSadcCodec(max_cycles=4)
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=20, deadline=None)
@given(canonical_program(min_size=9, max_size=48))
def test_samc_random_access_property(code):
    codec = SamcCodec.for_mips()
    image = codec.compress(code)
    for index in range(image.block_count()):
        want = code[index * 32 : (index + 1) * 32]
        assert codec.decompress_block(image, index) == want


@settings(max_examples=20, deadline=None)
@given(canonical_program(), st.sampled_from(["full", "pow2"]))
def test_samc_probability_modes_property(code, mode):
    codec = SamcCodec.for_mips(probability_mode=mode)
    image = codec.compress(code)
    assert codec.decompress(image) == code


@settings(max_examples=20, deadline=None)
@given(canonical_program())
def test_serialization_roundtrip_property(code):
    from repro.core.serialize import deserialize_image, serialize_image
    from repro.core.samc import samc_decompress

    image = SamcCodec.for_mips().compress(code)
    restored = deserialize_image(serialize_image(image))
    assert samc_decompress(restored) == code
