"""Tests for the MIPS SADC stream split (opcode/register/imm16/imm26)."""

import pytest

from repro.isa.mips.asm import assemble_to_bytes
from repro.isa.mips.formats import BY_MNEMONIC
from repro.isa.mips.streams import (
    MipsStreams,
    merge_streams,
    register_slots,
    split_streams,
    uses_imm16,
    uses_imm26,
)


class TestSlotTables:
    def test_r_type_three_slots(self):
        assert register_slots(BY_MNEMONIC["addu"]) == ("rd", "rs", "rt")

    def test_shift_uses_shamt_slot(self):
        assert register_slots(BY_MNEMONIC["sll"]) == ("rd", "rt", "shamt")

    def test_load_two_slots_and_imm(self):
        spec = BY_MNEMONIC["lw"]
        assert register_slots(spec) == ("rt", "rs")
        assert uses_imm16(spec)
        assert not uses_imm26(spec)

    def test_jump_only_long_imm(self):
        spec = BY_MNEMONIC["jal"]
        assert register_slots(spec) == ()
        assert uses_imm26(spec)
        assert not uses_imm16(spec)

    def test_fp_arith_slots(self):
        assert register_slots(BY_MNEMONIC["mul.d"]) == ("shamt", "rd", "rt")


class TestSplitMerge:
    SOURCE = [
        "addiu $sp, $sp, -24",
        "sw $ra, 20($sp)",
        "lw $a0, 0($a1)",
        "sll $t0, $a0, 2",
        "addu $v0, $t0, $a1",
        "jal 0x200",
        "lw $ra, 20($sp)",
        "jr $ra",
    ]

    def test_stream_contents(self):
        code = assemble_to_bytes(self.SOURCE)
        streams = split_streams(code)
        assert len(streams.opcodes) == 8
        assert len(streams.imm16) == 4   # addiu, sw, lw, lw offsets
        assert len(streams.imm26) == 1
        assert (0x200 >> 2) in streams.imm26

    def test_merge_inverts_split(self):
        code = assemble_to_bytes(self.SOURCE)
        assert merge_streams(split_streams(code)) == code

    def test_bit_size_accounting(self):
        code = assemble_to_bytes(["jal 0x40", "jr $ra"])
        streams = split_streams(code)
        sizes = streams.bit_sizes()
        assert sizes["opcodes"] == 16      # two 8-bit opcode ids
        assert sizes["imm26"] == 26
        assert sizes["registers"] == 5     # jr's rs
        assert streams.total_bits() == 16 + 26 + 5

    def test_empty_image(self):
        streams = split_streams(b"")
        assert streams.opcodes == []
        assert merge_streams(streams) == b""

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            split_streams(b"\x00\x00\x00")


def test_generated_program_roundtrip(mips_program):
    streams = split_streams(mips_program)
    assert merge_streams(streams) == mips_program
    # Streams must account for every instruction.
    assert len(streams.opcodes) == len(mips_program) // 4


def test_streams_smaller_than_word_stream(mips_program):
    # The whole point of the split: total stream bits == 32 per
    # instruction (it is a partition of the word's information).
    streams = split_streams(mips_program)
    per_instr = streams.total_bits() / (len(mips_program) // 4)
    # opcode ids take 8 bits but replace 6-bit op + 6-bit funct + fmt
    # bits; allow the bookkeeping band.
    assert 16 <= per_instr <= 40
