"""Differential tests for the batch codec engine.

The batch entry points (``decompress_blocks`` / ``encode_blocks`` /
``tokenize_blocks`` / ``lzw_compress_blocks``) are specified as *exactly*
the per-item loop — byte-identical output for every input, under both
``REPRO_FASTPATH`` settings.  Hypothesis drives random programs, ragged
batches (mixed word counts, short tails), repeated and reordered
indices, and empty batches through both forms.  ``REPRO_BATCH_MIN=1``
forces the lockstep vectorised kernels even at tiny batch sizes, so the
vector path itself is what gets exercised, not the small-batch scalar
fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import lzss
from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.lzw import lzw_compress, lzw_compress_blocks
from repro.core.samc.codec import SamcCodec
from repro.resilience.errors import CorruptedStreamError


@contextmanager
def _env(**overrides):
    """Set env vars for the duration (hypothesis-safe, unlike the
    function-scoped ``monkeypatch`` fixture)."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _word_data(data: bytes) -> bytes:
    return data[: len(data) - len(data) % 4]


# ---------------------------------------------------------------------------
# SAMC: batch decode vs per-block decode

@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=16, max_size=512).map(_word_data),
       st.randoms(use_true_random=False))
def test_samc_decompress_blocks_differential(data, rng):
    """Every index order — contiguous, shuffled, repeated — decodes
    identically through the batch API on all four path combinations."""
    if not data:
        return
    codec = SamcCodec.for_mips(block_size=16)
    image = codec.compress(data)
    indices = list(range(image.block_count()))
    shuffled = indices[:]
    rng.shuffle(shuffled)
    ragged = shuffled + shuffled[: max(1, len(shuffled) // 2)]
    with _env(REPRO_FASTPATH="0"):
        expected = [codec.decompress_block(image, i) for i in ragged]
        assert codec.decompress_blocks(image, ragged) == expected
    with _env(REPRO_FASTPATH="1", REPRO_BATCH_MIN="1"):
        assert [codec.decompress_block(image, i) for i in ragged] == expected
        assert codec.decompress_blocks(image, ragged) == expected
    # Scalar fastpath fallback (batch below the dispatch threshold).
    with _env(REPRO_FASTPATH="1", REPRO_BATCH_MIN="10000"):
        assert codec.decompress_blocks(image, ragged) == expected


@settings(max_examples=15, deadline=None)
@given(st.binary(min_size=8, max_size=256))
def test_samc_bytes_decompress_blocks_differential(data):
    """The byte-stream SAMC variant (ragged tail blocks included)."""
    if not data:
        return
    codec = SamcCodec.for_bytes(block_size=32)
    image = codec.compress(data)
    indices = list(range(image.block_count()))
    with _env(REPRO_FASTPATH="0"):
        expected = [codec.decompress_block(image, i) for i in indices]
        assert codec.decompress_blocks(image, indices) == expected
    with _env(REPRO_FASTPATH="1", REPRO_BATCH_MIN="1"):
        assert codec.decompress_blocks(image, indices) == expected
    assert b"".join(expected) == data


def test_samc_decompress_blocks_empty():
    codec = SamcCodec.for_mips(block_size=16)
    image = codec.compress(bytes(range(64)))
    for fastpath in ("0", "1"):
        with _env(REPRO_FASTPATH=fastpath, REPRO_BATCH_MIN="1"):
            assert codec.decompress_blocks(image, []) == []


def test_samc_decode_blocks_rejects_mismatched_lengths():
    from repro.fastpath.samc_kernel import compiled_model

    codec = SamcCodec.for_mips(block_size=16)
    image = codec.compress(bytes(range(64)))
    compiled = compiled_model(image.metadata["model"])
    with pytest.raises(ValueError):
        compiled.decode_blocks(list(image.blocks), [4])


# ---------------------------------------------------------------------------
# SAMC: vectorised encode vs scalar encode

@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=16, max_size=512).map(_word_data),
       st.sampled_from([1, 3, 4, 7]))
def test_samc_encode_blocks_vec_vs_scalar(data, words_per_block):
    """The vector encoder emits the scalar encoder's exact bytes, block
    for block, including the final short block."""
    from repro.fastpath.samc_kernel import compiled_model

    if not data:
        return
    codec = SamcCodec.for_mips(block_size=16)
    image = codec.compress(data)  # trains + freezes a model for us
    model = image.metadata["model"]
    words = [int.from_bytes(data[i : i + 4], "big")
             for i in range(0, len(data), 4)]
    with _env(REPRO_BATCH_MIN="10000"):
        scalar = compiled_model(model).encode_blocks(words, words_per_block)
    with _env(REPRO_BATCH_MIN="1"):
        vec = compiled_model(model).encode_blocks(words, words_per_block)
    assert vec == scalar


# ---------------------------------------------------------------------------
# Byte-Huffman: table-driven batch decode vs the probing decoder

@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=400))
def test_byte_huffman_decompress_blocks_differential(data):
    codec = ByteHuffmanCodec(block_size=32)
    image = codec.compress(data)
    indices = list(range(image.block_count()))
    ragged = indices + indices[::-1]
    with _env(REPRO_FASTPATH="0"):
        expected = [codec.decompress_block(image, i) for i in ragged]
        assert codec.decompress_blocks(image, ragged) == expected
    with _env(REPRO_FASTPATH="1"):
        assert codec.decompress_blocks(image, ragged) == expected
        assert codec.decompress_blocks(image, []) == []
    assert b"".join(expected[: len(indices)]) == data


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=8, max_size=200), st.integers(0, 10_000),
       st.integers(0, 255))
def test_byte_huffman_corruption_differential(data, position, flip):
    """On corrupted payloads both paths agree: same bytes out, or the
    same error category (the batch path falls back to the reference
    loop whenever the table decode goes off the rails)."""
    codec = ByteHuffmanCodec(block_size=16)
    image = codec.compress(data)
    target = position % len(image.blocks)
    payload = bytearray(image.blocks[target])
    if not payload:
        return
    payload[position % len(payload)] ^= (flip or 1)
    image.blocks[target] = bytes(payload)
    indices = list(range(image.block_count()))

    def outcome():
        try:
            return codec.decompress_blocks(image, indices)
        except CorruptedStreamError as error:
            return ("error", error.category)

    with _env(REPRO_FASTPATH="0"):
        expected = outcome()
    with _env(REPRO_FASTPATH="1"):
        assert outcome() == expected


# ---------------------------------------------------------------------------
# LZ batch entry points

lz_blocks = st.lists(
    st.one_of(
        st.binary(max_size=200),
        st.builds(
            lambda unit, reps: unit * reps,
            st.binary(min_size=1, max_size=6),
            st.integers(1, 60),
        ),
    ),
    max_size=8,
)


@settings(max_examples=30, deadline=None)
@given(lz_blocks)
def test_lzss_tokenize_blocks_differential(blocks):
    expected = [lzss._tokenize_reference(block) for block in blocks]
    with _env(REPRO_FASTPATH="0"):
        assert lzss.tokenize_blocks(blocks) == expected
    with _env(REPRO_FASTPATH="1"):
        assert lzss.tokenize_blocks(blocks) == expected
    # Duplicate-heavy batch: the dedup path must replay, not alias-skip.
    doubled = blocks + blocks
    with _env(REPRO_FASTPATH="1"):
        assert lzss.tokenize_blocks(doubled) == expected + expected


@settings(max_examples=30, deadline=None)
@given(lz_blocks)
def test_lzw_compress_blocks_differential(blocks):
    with _env(REPRO_FASTPATH="0"):
        expected = [lzw_compress(block) for block in blocks]
        assert lzw_compress_blocks(blocks) == expected
    with _env(REPRO_FASTPATH="1"):
        assert lzw_compress_blocks(blocks) == expected
        assert lzw_compress_blocks(blocks + blocks) == expected + expected


# ---------------------------------------------------------------------------
# SADC: the batch API is the per-block loop by definition

def test_sadc_decompress_blocks_matches_loop():
    from repro.core.sadc import MipsSadcCodec
    from repro.workloads.suite import generate_benchmark

    data = generate_benchmark("compress", "mips", scale=0.1, seed=7).code
    codec = MipsSadcCodec(block_size=32)
    image = codec.compress(data)
    indices = list(range(image.block_count()))[::-1]
    assert codec.decompress_blocks(image, indices) == [
        codec.decompress_block(image, i) for i in indices
    ]
    assert codec.decompress_blocks(image, []) == []
