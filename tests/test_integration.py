"""Cross-module integration tests: the paper's claims end to end."""

import pytest

from repro import sadc_compress, sadc_decompress, samc_compress, samc_decompress
from repro.analysis.experiments import compression_ratio
from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.samc import SamcCodec
from repro.memory.system import CompressedMemorySystem
from repro.memory.trace import generate_trace
from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="module")
def program():
    # Large enough that model tables amortise and statistics settle.
    return generate_benchmark("gcc", "mips", scale=1.0, seed=0)


class TestPublicApi:
    def test_samc_top_level(self, program):
        image = samc_compress(program.code)
        assert samc_decompress(image) == program.code

    def test_sadc_top_level(self, program):
        image = sadc_compress(program.code, isa="mips")
        assert sadc_decompress(image) == program.code

    def test_sadc_x86_dispatch(self, x86_program):
        image = sadc_compress(x86_program, isa="x86")
        assert sadc_decompress(image) == x86_program

    def test_unknown_isa(self):
        with pytest.raises(ValueError):
            sadc_compress(b"", isa="arm")


class TestPaperClaims:
    """The headline relationships from Section 5, on one benchmark."""

    def test_sadc_beats_samc_on_mips(self, program):
        samc = compression_ratio(program.code, "SAMC", "mips")
        sadc = compression_ratio(program.code, "SADC", "mips")
        assert sadc < samc

    def test_both_beat_byte_huffman_on_mips(self, program):
        huffman = compression_ratio(program.code, "huffman", "mips")
        samc = compression_ratio(program.code, "SAMC", "mips")
        sadc = compression_ratio(program.code, "SADC", "mips")
        assert samc < huffman
        assert sadc < huffman

    def test_gzip_beats_block_oriented_coders(self, program):
        gzip = compression_ratio(program.code, "gzip", "mips")
        sadc = compression_ratio(program.code, "SADC", "mips")
        assert gzip < sadc  # file-oriented coding is the upper bound

    def test_everything_compresses(self, program):
        for algorithm in ("compress", "gzip", "huffman", "SAMC", "SADC"):
            assert compression_ratio(program.code, algorithm, "mips") < 1.0

    def test_samc_worse_on_cisc(self, program, x86_program_large):
        mips_payload = SamcCodec.for_mips().compress(program.code).payload_ratio
        x86_payload = SamcCodec.for_bytes().compress(
            x86_program_large
        ).payload_ratio
        assert x86_payload > mips_payload  # no stream subdivision on CISC


class TestRandomAccessEquivalence:
    def test_block_access_equals_full_decompress(self, program):
        codec = SamcCodec.for_mips()
        image = codec.compress(program.code)
        full = codec.decompress(image)
        stitched = b"".join(
            codec.decompress_block(image, i) for i in range(image.block_count())
        )
        assert stitched == full == program.code


class TestArchitectureLoop:
    def test_compress_then_simulate(self, program):
        image = samc_compress(program.code)
        trace = list(generate_trace(len(program.code), 30_000, seed=3))
        base = CompressedMemorySystem(len(program.code)).run(trace)
        comp = CompressedMemorySystem(len(program.code), image=image).run(trace)
        slowdown = comp.slowdown_vs(base)
        # Decompress-on-miss costs something but not catastrophe at a
        # healthy hit ratio (the paper's core performance argument).
        assert 1.0 <= slowdown < 3.0
        assert comp.cache.hit_ratio > 0.8

    def test_block_oriented_codecs_agree_on_originals(self, program):
        # SAMC, SADC and byte-Huffman must reconstruct identical bytes.
        samc = samc_compress(program.code)
        sadc = sadc_compress(program.code, isa="mips")
        huff_codec = ByteHuffmanCodec()
        huff = huff_codec.compress(program.code)
        assert samc_decompress(samc) == sadc_decompress(sadc) == \
            huff_codec.decompress(huff) == program.code
