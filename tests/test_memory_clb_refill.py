"""Tests for the CLB and the refill-engine timing model."""

import pytest

from repro.memory.clb import CLB
from repro.memory.refill import RefillEngine, RefillTiming


class TestCLB:
    def test_first_lookup_misses(self):
        clb = CLB()
        assert clb.lookup(0) is False

    def test_same_group_hits(self):
        clb = CLB(group_size=8)
        clb.lookup(0)
        assert clb.lookup(7) is True   # same LAT group
        assert clb.lookup(8) is False  # next group

    def test_lru_eviction(self):
        clb = CLB(entries=2, group_size=1)
        clb.lookup(0)
        clb.lookup(1)
        clb.lookup(2)  # evicts group 0
        assert clb.lookup(0) is False

    def test_lru_refresh(self):
        clb = CLB(entries=2, group_size=1)
        clb.lookup(0)
        clb.lookup(1)
        clb.lookup(0)  # refresh
        clb.lookup(2)  # evicts group 1
        assert clb.lookup(0) is True

    def test_flush(self):
        clb = CLB()
        clb.lookup(0)
        clb.flush()
        assert clb.lookup(0) is False

    def test_stats(self):
        clb = CLB()
        clb.lookup(0)
        clb.lookup(0)
        assert clb.stats.lookups == 2
        assert clb.stats.hit_ratio == pytest.approx(0.5)

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            CLB(entries=0)


class TestRefillEngine:
    def test_uncompressed_has_no_decode_stage(self):
        engine = RefillEngine("uncompressed")
        assert engine.decompression_cycles(32) == 0

    def test_samc_four_bits_per_cycle(self):
        engine = RefillEngine("SAMC")
        assert engine.decompression_cycles(32) == 64  # 256 bits / 4

    def test_sadc_faster_than_samc(self):
        samc = RefillEngine("SAMC")
        sadc = RefillEngine("SADC")
        assert sadc.decompression_cycles(32) < samc.decompression_cycles(32)

    def test_clb_miss_adds_memory_latency(self):
        engine = RefillEngine("SAMC", RefillTiming(memory_latency=40))
        hit = engine.refill_cycles(20, 32, clb_hit=True)
        miss = engine.refill_cycles(20, 32, clb_hit=False)
        assert miss - hit == 40

    def test_compressed_transfer_cheaper(self):
        timing = RefillTiming(bus_bytes_per_cycle=4)
        engine = RefillEngine("uncompressed", timing)
        full = engine.refill_cycles(32, 32)
        half = engine.refill_cycles(16, 32)
        assert half == full - 4

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            RefillEngine("zstd")

    def test_transfer_cycles_rounds_up(self):
        timing = RefillTiming(bus_bytes_per_cycle=4)
        assert timing.transfer_cycles(17) == 5
        assert timing.transfer_cycles(16) == 4
        assert timing.transfer_cycles(0) == 0

    def test_refill_dominated_by_memory_latency(self):
        # Sanity on magnitudes: a miss costs tens of cycles.
        engine = RefillEngine("SAMC")
        assert engine.refill_cycles(20, 32) > RefillTiming().memory_latency
