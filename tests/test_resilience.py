"""Resilience subsystem: framing, fault injection, hardened decoders.

The contract under test is *guaranteed termination with structured
errors*: any malformed input to any decode path either round-trips
(framed mode) or raises :class:`CorruptedStreamError` with a meaningful
category/offset — never a hang, never a raw ``IndexError``/``KeyError``/
``struct.error``, never unbounded allocation from a forged length field.
"""

import random

import numpy as np
import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.lzw import lzw_compress, lzw_decompress
from repro.baselines.positional_huffman import PositionalHuffmanCodec
from repro.core.lat import build_lat
from repro.core.samc import SamcCodec, samc_decompress
from repro.core.serialize import (
    SerializationError,
    deserialize_image,
    serialize_image,
)
from repro.resilience import (
    FRAME_OVERHEAD,
    CorruptedStreamError,
    block_payload,
    frame_image,
    framing_enabled,
    is_framed,
    unwrap_frame,
    wrap_frame,
)
from repro.resilience.errors import (
    CATEGORY_BOUNDS,
    CATEGORY_CHECKSUM,
    CATEGORY_MAGIC,
    CATEGORY_STRUCTURE,
    CATEGORY_TRUNCATED,
    CATEGORY_VERSION,
)
from repro.resilience.fuzz import build_targets, run_fuzz
from repro.resilience.inject import (
    FAULT_KINDS,
    corrupt_lat_entry,
    duplicate_span,
    flip_bit,
    sample_fault,
    splice_bytes,
    truncate,
)


class TestFrame:
    def test_roundtrip(self):
        payload = bytes(range(256)) * 3
        framed = wrap_frame(payload)
        assert len(framed) == len(payload) + FRAME_OVERHEAD
        assert is_framed(framed)
        assert unwrap_frame(framed) == payload

    def test_empty_payload_roundtrip(self):
        assert unwrap_frame(wrap_frame(b"")) == b""

    def test_truncated_header(self):
        with pytest.raises(CorruptedStreamError) as info:
            unwrap_frame(b"RF0")
        assert info.value.category == CATEGORY_TRUNCATED

    def test_bad_magic(self):
        framed = bytearray(wrap_frame(b"payload"))
        framed[0] = ord("X")
        with pytest.raises(CorruptedStreamError) as info:
            unwrap_frame(bytes(framed))
        assert info.value.category == CATEGORY_MAGIC
        assert info.value.offset == 0

    def test_bad_version(self):
        framed = bytearray(wrap_frame(b"payload"))
        framed[4] = 99
        with pytest.raises(CorruptedStreamError) as info:
            unwrap_frame(bytes(framed))
        assert info.value.category == CATEGORY_VERSION

    def test_truncated_payload(self):
        framed = wrap_frame(b"payload")
        with pytest.raises(CorruptedStreamError) as info:
            unwrap_frame(framed[:-2])
        assert info.value.category == CATEGORY_TRUNCATED

    def test_trailing_bytes(self):
        with pytest.raises(CorruptedStreamError) as info:
            unwrap_frame(wrap_frame(b"payload") + b"\x00")
        assert info.value.category == CATEGORY_STRUCTURE

    def test_payload_corruption_fails_checksum(self):
        framed = bytearray(wrap_frame(b"payload bytes here"))
        framed[-1] ^= 0x01
        with pytest.raises(CorruptedStreamError) as info:
            unwrap_frame(bytes(framed))
        assert info.value.category == CATEGORY_CHECKSUM

    def test_corrupted_length_field_fails_closed(self):
        # A larger declared length reads as truncation; a smaller one
        # reads as trailing bytes.  Either way: detected, not mis-sliced.
        framed = bytearray(wrap_frame(b"x" * 300))
        framed[9] ^= 0xFF  # low byte of the u32 length
        with pytest.raises(CorruptedStreamError):
            unwrap_frame(bytes(framed))


class TestFramedImage:
    def test_per_block_framing_decodes(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        framed = frame_image(image)
        assert framed.metadata["framed"] is True
        assert image.metadata.get("framed") is None  # original untouched
        assert samc_decompress(framed) == mips_program

    def test_corrupted_block_detected(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        framed = frame_image(image)
        framed.blocks[0] = flip_bit(framed.blocks[0], 80)
        with pytest.raises(CorruptedStreamError):
            samc_decompress(framed)

    def test_block_payload_passthrough_when_unframed(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        assert block_payload(image, 0) == image.blocks[0]


class TestFramedSerialization:
    def test_framed_archive_roundtrip(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        raw = serialize_image(image, framed=False)
        framed = serialize_image(image, framed=True)
        assert framed != raw
        assert is_framed(framed)
        assert len(framed) == len(raw) + FRAME_OVERHEAD
        # deserialize_image auto-detects the container.
        assert samc_decompress(deserialize_image(framed)) == mips_program
        assert samc_decompress(deserialize_image(raw)) == mips_program

    def test_env_switch(self, mips_program, monkeypatch):
        image = ByteHuffmanCodec().compress(mips_program)
        monkeypatch.delenv("REPRO_FRAMED", raising=False)
        assert not framing_enabled()
        raw = serialize_image(image)
        monkeypatch.setenv("REPRO_FRAMED", "1")
        assert framing_enabled()
        framed = serialize_image(image)
        assert is_framed(framed) and not is_framed(raw)
        assert unwrap_frame(framed) == raw

    def test_framed_archive_corruption_detected(self, mips_program):
        image = ByteHuffmanCodec().compress(mips_program)
        framed = bytearray(serialize_image(image, framed=True))
        framed[len(framed) // 2] ^= 0x10
        with pytest.raises(CorruptedStreamError):
            deserialize_image(bytes(framed))


class TestInjectors:
    def test_flip_bit_changes_exactly_one_bit(self):
        data = bytes(64)
        out = flip_bit(data, 13)
        assert out != data
        diff = int.from_bytes(data, "big") ^ int.from_bytes(out, "big")
        assert bin(diff).count("1") == 1
        assert flip_bit(out, 13) == data  # involution

    def test_truncate_strictly_shorter(self):
        assert truncate(b"abcdef", 2) == b"ab"
        with pytest.raises(ValueError):
            truncate(b"abc", 3)

    def test_splice_preserves_length(self):
        out = splice_bytes(b"aaaaaa", 2, b"XY")
        assert out == b"aaXYaa"
        assert len(out) == 6

    def test_duplicate_span_grows(self):
        assert duplicate_span(b"abcd", 1, 2) == b"abcbcd"

    def test_sample_fault_never_identity_and_deterministic(self):
        data = bytes(range(48))
        a = [sample_fault(random.Random(11), data) for _ in range(20)]
        b = [sample_fault(random.Random(11), data) for _ in range(20)]
        assert a == b  # same seed, same faults
        for description, corrupted in a:
            assert corrupted != data, description
            assert any(description.startswith(k) for k in FAULT_KINDS)

    def test_corrupt_lat_entry_detected_by_validate(self):
        lat = build_lat([10, 12, 8, 11])
        lat.validate()
        bad = corrupt_lat_entry(lat, 1, delta=1 << 20)
        with pytest.raises(CorruptedStreamError) as info:
            bad.validate()
        assert info.value.category in (CATEGORY_BOUNDS, CATEGORY_STRUCTURE)


class TestLatHardening:
    def test_block_offset_out_of_range(self):
        lat = build_lat([10, 12, 8])
        with pytest.raises(CorruptedStreamError) as info:
            lat.block_offset(17)
        assert info.value.category == CATEGORY_BOUNDS

    def test_negative_index_rejected(self):
        lat = build_lat([10, 12, 8])
        with pytest.raises(CorruptedStreamError):
            lat.block_offset(-1)


class TestSerializerHardening:
    """Forged length/count fields must fail fast, not allocate or loop."""

    def _mutate(self, data: bytes, offset: int, value: int) -> bytes:
        out = bytearray(data)
        out[offset] = value
        return bytes(out)

    def test_empty_input(self):
        with pytest.raises(CorruptedStreamError):
            deserialize_image(b"")

    def test_bad_archive_magic(self, mips_program):
        data = serialize_image(
            ByteHuffmanCodec().compress(mips_program), framed=False
        )
        with pytest.raises(CorruptedStreamError) as info:
            deserialize_image(b"XXXX" + data[4:])
        assert info.value.category == CATEGORY_STRUCTURE

    def test_truncations_always_structured(self, mips_program):
        # Every prefix of a valid archive must raise, never hang or leak
        # a low-level exception.
        data = serialize_image(
            SamcCodec.for_mips().compress(mips_program), framed=False
        )
        for cut in range(0, min(len(data), 600), 17):
            with pytest.raises(CorruptedStreamError):
                deserialize_image(data[:cut])

    def test_huge_declared_counts_bounded(self, mips_program):
        # Forge 0xFF into many single-byte positions; the reader's
        # allocation budget must reject counts the remaining bytes
        # cannot back, without materialising them.
        data = serialize_image(
            SamcCodec.for_mips().compress(mips_program), framed=False
        )
        for offset in range(4, min(len(data), 96)):
            forged = self._mutate(data, offset, 0xFF)
            try:
                image = deserialize_image(forged)
            except CorruptedStreamError:
                continue
            # Rare: the mutation still parses — decode must then either
            # work or raise the structured error.
            try:
                samc_decompress(image)
            except CorruptedStreamError:
                pass

    def test_zero_probability_table_rejected(self, mips_program):
        from repro.core.samc.model import SamcModel

        image = SamcCodec.for_mips().compress(mips_program)
        model = image.metadata["model"]
        table = model.stream_models[0].frozen_table.copy()
        table[0, 0] = 0
        # Rebuild the image's model with the poisoned table and check the
        # serialised form is rejected on read (the untrusted boundary).
        tables = [sm.frozen_table.copy() for sm in model.stream_models]
        tables[0][0, 0] = 0
        bad_model = SamcModel.from_frozen(
            model.width, [s.positions for s in model.specs],
            model.connect_bits, tables,
        )
        metadata = dict(image.metadata)
        metadata["model"] = bad_model
        from repro.core.lat import CompressedImage

        bad_image = CompressedImage(
            algorithm=image.algorithm,
            original_size=image.original_size,
            block_size=image.block_size,
            blocks=image.blocks,
            model_bytes=image.model_bytes,
            metadata=metadata,
        )
        data = serialize_image(bad_image, framed=False)
        with pytest.raises(SerializationError):
            deserialize_image(data)

    def test_serialization_error_is_corrupted_stream_error(self):
        assert issubclass(SerializationError, CorruptedStreamError)


class TestDecoderHardening:
    def test_lzw_invalid_code(self):
        with pytest.raises(CorruptedStreamError):
            lzw_decompress(b"\xff\xff\xff\xff\xff\xff\xff\xff")

    def test_lzw_roundtrip_still_exact(self):
        data = b"the quick brown fox " * 40
        assert lzw_decompress(lzw_compress(data)) == data

    def test_byte_huffman_corrupt_block(self, mips_program):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program)
        image.blocks[0] = b"\xff" * len(image.blocks[0])
        try:
            out = codec.decompress(image)
            assert isinstance(out, bytes)
        except CorruptedStreamError:
            pass

    def test_positional_huffman_truncated_block(self, mips_program):
        # A truncated payload exhausts the BitReader mid-symbol; that
        # must surface as CorruptedStreamError, never a raw EOFError.
        codec = PositionalHuffmanCodec()
        image = codec.compress(mips_program)
        image.blocks[0] = image.blocks[0][:1]
        with pytest.raises(CorruptedStreamError):
            codec.decompress(image)

    def test_positional_huffman_missing_tables_metadata(self, mips_program):
        # Forged metadata (missing table key) must not leak a KeyError.
        codec = PositionalHuffmanCodec()
        image = codec.compress(mips_program)
        del image.metadata["positional_tables"]
        with pytest.raises(CorruptedStreamError):
            codec.decompress(image)


class TestFuzzDriver:
    def test_smoke_run_passes(self):
        report = run_fuzz(seed=5, iters=24)
        assert report.ok, "\n".join(report.format_lines())
        assert report.iterations == 24
        assert report.timeouts == 0
        assert sum(report.detected.values()) > 0

    def test_deterministic_across_runs(self):
        a = run_fuzz(seed=9, iters=12)
        b = run_fuzz(seed=9, iters=12)
        assert a.detected == b.detected
        assert a.roundtrips == b.roundtrips
        assert a.survived == b.survived

    def test_targets_cover_every_codec_family(self):
        names = {t.name for t in build_targets()}
        assert any("samc" in n for n in names)
        assert any("sadc" in n for n in names)
        assert any("huffman" in n for n in names)
        assert any("lzw" in n for n in names)
        assert any("gzip" in n for n in names)

    def test_failure_reported_not_raised(self):
        # A target whose decoder leaks a raw exception must be reported
        # as a failure, not crash the driver.
        from repro.resilience.fuzz import FuzzTarget, _timed, FuzzReport

        def bad_decode(data):
            raise KeyError("leaked")

        report = FuzzReport(seed=0)
        outcome, _ = _timed(report, "bad", 5.0, lambda: bad_decode(b"x"))
        assert outcome == "failure"
        assert report.failures
        assert not report.ok
