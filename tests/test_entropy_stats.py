"""Tests for entropy/correlation statistics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.entropy.stats import (
    bit_correlation,
    bit_matrix,
    entropy_bits,
    frequencies,
    markov_stream_entropy,
    total_information_bits,
)


class TestEntropy:
    def test_uniform_binary(self):
        assert entropy_bits({0: 50, 1: 50}) == pytest.approx(1.0)

    def test_deterministic_is_zero(self):
        assert entropy_bits({7: 100}) == 0.0

    def test_uniform_n_symbols(self):
        counts = {i: 10 for i in range(8)}
        assert entropy_bits(counts) == pytest.approx(3.0)

    def test_empty(self):
        assert entropy_bits({}) == 0.0

    def test_skew_lowers_entropy(self):
        assert entropy_bits({0: 90, 1: 10}) < entropy_bits({0: 50, 1: 50})

    def test_total_information(self):
        assert total_information_bits({0: 50, 1: 50}) == pytest.approx(100.0)


@given(st.dictionaries(st.integers(0, 255), st.integers(1, 1000),
                       min_size=1, max_size=16))
def test_entropy_bounds(counts):
    h = entropy_bits(counts)
    assert 0.0 <= h <= math.log2(len(counts)) + 1e-9


def test_frequencies():
    assert frequencies([1, 1, 2]) == {1: 2, 2: 1}


class TestBitMatrix:
    def test_shape_and_values(self):
        matrix = bit_matrix([0b10, 0b01], 2)
        assert matrix.shape == (2, 2)
        assert matrix.tolist() == [[1, 0], [0, 1]]


class TestBitCorrelation:
    def test_identical_bits_fully_correlated(self):
        # Bits 0 and 1 always equal; bit 2 random-ish.
        words = [0b110, 0b000, 0b111, 0b001]
        corr = bit_correlation(words, 3)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_constant_bits_zero_correlation(self):
        words = [0b10, 0b11]  # bit 0 constant
        corr = bit_correlation(words, 2)
        assert corr[0, 1] == 0.0

    def test_symmetric(self):
        words = [3, 1, 2, 0, 3, 1]
        corr = bit_correlation(words, 2)
        assert np.allclose(corr, corr.T)

    def test_too_few_words(self):
        assert bit_correlation([1], 2).shape == (2, 2)


class TestMarkovStreamEntropy:
    def test_deterministic_stream(self):
        words = [0b11, 0b11, 0b11]
        assert markov_stream_entropy(words, (0, 1), 2) == 0.0

    def test_iid_uniform_stream(self):
        words = [0b00, 0b01, 0b10, 0b11]
        assert markov_stream_entropy(words, (0, 1), 2) == pytest.approx(1.0)

    def test_dependent_bits_cheaper_than_independent(self):
        # Second bit always equals first: H should be ~0.5/bit, versus
        # 1.0/bit if the bits were independent coin flips.
        words = [0b00, 0b11] * 16
        h = markov_stream_entropy(words, (0, 1), 2)
        assert h == pytest.approx(0.5)

    def test_empty_positions(self):
        assert markov_stream_entropy([1, 2], (), 8) == 0.0

    def test_no_words(self):
        assert markov_stream_entropy([], (0,), 8) == 0.0
