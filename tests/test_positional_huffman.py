"""Tests for the positional byte-Huffman codec (the paper's fix to
Kozuch & Wolfe's single-table scheme)."""

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.positional_huffman import (
    PositionalHuffmanCodec,
    positional_huffman_ratio,
)
from repro.core.samc import SamcCodec


class TestRoundtrip:
    def test_program(self, mips_program):
        codec = PositionalHuffmanCodec()
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_random_access(self, mips_program):
        codec = PositionalHuffmanCodec()
        image = codec.compress(mips_program)
        index = image.block_count() // 2
        want = mips_program[index * 32 : (index + 1) * 32]
        assert codec.decompress_block(image, index) == want

    def test_partial_final_block(self):
        codec = PositionalHuffmanCodec(block_size=32)
        data = bytes(range(40))  # 10 words, not a whole block
        image = codec.compress(data)
        assert codec.decompress(image) == data

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            PositionalHuffmanCodec().compress(b"\x00" * 5)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PositionalHuffmanCodec(block_size=30)
        with pytest.raises(ValueError):
            PositionalHuffmanCodec(word_bytes=0)


class TestPaperClaim:
    """'8-bit symbols … encoded using the same table … increases the
    entropy of the source significantly' — per-position tables must
    recover part of that loss; SAMC (adds intra-field memory) more."""

    def test_positional_beats_plain_huffman(self, mips_program_large):
        plain = ByteHuffmanCodec().compress(mips_program_large)
        positional = PositionalHuffmanCodec().compress(mips_program_large)
        assert positional.payload_ratio < plain.payload_ratio - 0.02

    def test_samc_beats_positional(self, mips_program_large):
        positional = PositionalHuffmanCodec().compress(mips_program_large)
        samc = SamcCodec.for_mips().compress(mips_program_large)
        assert samc.payload_ratio < positional.payload_ratio

    def test_four_tables_cost_more_model(self, mips_program_large):
        plain = ByteHuffmanCodec().compress(mips_program_large)
        positional = PositionalHuffmanCodec().compress(mips_program_large)
        assert positional.model_bytes > plain.model_bytes

    def test_ratio_helper(self, mips_program_large):
        assert 0.0 < positional_huffman_ratio(mips_program_large) < 1.0
        assert positional_huffman_ratio(b"") == 1.0
