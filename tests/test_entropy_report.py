"""Tests for the compressibility analysis report."""

import pytest

from repro.analysis.entropy_report import analyze_mips
from repro.analysis.experiments import compression_ratio
from repro.core.samc import SamcCodec


@pytest.fixture(scope="module")
def report(mips_program_large):
    return analyze_mips(mips_program_large)


class TestReportStructure:
    def test_counts(self, report, mips_program_large):
        assert report.instructions == len(mips_program_large) // 4

    def test_field_entropies_bounded_by_width(self, report):
        for name, h in report.field_entropy.items():
            assert 0.0 <= h <= report.field_width[name]

    def test_opcode_entropy_well_below_width(self, report):
        # Compiled code uses few opcodes heavily: entropy far below 8.
        assert report.field_entropy["opcodes"] < 6.0

    def test_register_entropy_skewed(self, report):
        assert report.field_entropy["registers"] < 5.0

    def test_bounds_below_raw_width(self, report):
        assert report.zero_order_bound < 32.0
        assert report.markov_bound < 32.0

    def test_summary_flat_mapping(self, report):
        summary = report.summary()
        assert "markov ratio bound" in summary
        assert all(isinstance(v, float) for v in summary.values())


class TestBoundsVsAchieved:
    def test_samc_payload_near_markov_bound(self, report, mips_program_large):
        # The coder should land close to (and necessarily above) the
        # model's own entropy, padded by per-block reset overhead.
        payload = SamcCodec.for_mips().compress(mips_program_large).payload_ratio
        bound = report.markov_bound / 32.0
        assert payload >= bound - 0.02
        assert payload <= bound + 0.15

    def test_markov_bound_beats_zero_order_per_stream(self, report):
        # First-order modelling of the word cannot be *worse* than
        # treating each SAMC stream as iid bits; sanity-check magnitude.
        assert report.markov_bound <= 32.0
        assert sum(report.samc_stream_bits.values()) == pytest.approx(
            report.markov_bound
        )

    def test_total_ratio_above_payload(self, mips_program_large):
        total = compression_ratio(mips_program_large, "SAMC", "mips")
        payload = SamcCodec.for_mips().compress(mips_program_large).payload_ratio
        assert total > payload
