"""Tests for the decoder midpoint datapath (serial == parallel)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.midpoint import (
    INTERVAL_MAX,
    PROB_ONE,
    compute_midpoints,
    parallel_decode,
    serial_decode,
    serial_midpoint,
    shift_only_midpoint,
)


class TestSerialMidpoint:
    def test_half_probability_splits_middle(self):
        mid = serial_midpoint(0, INTERVAL_MAX, PROB_ONE // 2)
        assert abs(mid - INTERVAL_MAX // 2) <= 1

    def test_clamped_above_min(self):
        assert serial_midpoint(100, 200, 1) >= 101

    def test_clamped_below_max(self):
        assert serial_midpoint(100, 200, PROB_ONE - 1) <= 198

    def test_skewed_probability_moves_midpoint(self):
        low_p = serial_midpoint(0, INTERVAL_MAX, PROB_ONE // 8)
        high_p = serial_midpoint(0, INTERVAL_MAX, 7 * PROB_ONE // 8)
        assert low_p < high_p


def _random_prob_table(seed):
    rng = random.Random(seed)
    table = {}

    def prob(prefix):
        if prefix not in table:
            table[prefix] = rng.randrange(1, PROB_ONE)
        return table[prefix]

    return prob


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_cases(self, seed):
        rng = random.Random(seed + 100)
        prob = _random_prob_table(seed)
        val = rng.randrange(INTERVAL_MAX)
        assert parallel_decode(val, 4, prob) == serial_decode(val, 4, prob)

    def test_midpoint_count_is_fifteen_for_nibble(self):
        midpoints = compute_midpoints(4, _random_prob_table(1))
        assert len(midpoints) == 15  # the paper's 15 mid_i units

    def test_midpoints_independent_of_val(self):
        # The whole point: the table depends only on (low, high, probs).
        prob = _random_prob_table(2)
        table_once = compute_midpoints(4, prob)
        table_again = compute_midpoints(4, prob)
        assert table_once == table_again


@settings(max_examples=80, deadline=None)
@given(st.integers(0, INTERVAL_MAX - 1), st.integers(0, 2**31 - 1))
def test_parallel_equals_serial_property(val, seed):
    prob = _random_prob_table(seed)
    assert parallel_decode(val, 4, prob) == serial_decode(val, 4, prob)


class TestShiftOnly:
    def test_matches_multiplier_for_power_probs(self):
        # LPS probability 2^-3 with 0 as LPS: p0 = PROB_ONE >> 3.
        low, high = 0, INTERVAL_MAX
        shift_mid = shift_only_midpoint(low, high, 3, zero_is_lps=True)
        mult_mid = serial_midpoint(low, high, PROB_ONE >> 3)
        assert abs(shift_mid - mult_mid) <= 2

    def test_one_as_lps_subtraction_path(self):
        low, high = 0, INTERVAL_MAX
        shift_mid = shift_only_midpoint(low, high, 3, zero_is_lps=False)
        mult_mid = serial_midpoint(low, high, PROB_ONE - (PROB_ONE >> 3))
        assert abs(shift_mid - mult_mid) <= 2

    def test_clamping(self):
        assert shift_only_midpoint(10, 12, 8, True) == 11
