"""Tests for the binary arithmetic (range) coder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.arith import (
    PROB_ONE,
    BinaryArithmeticDecoder,
    BinaryArithmeticEncoder,
    decode_bits,
    encode_bits,
    quantize_power_of_two,
    quantize_probability,
    quantize_probability_8bit,
)


class TestQuantizers:
    def test_full_range(self):
        assert quantize_probability(0.5) == PROB_ONE // 2
        assert quantize_probability(0.0) == 1
        assert quantize_probability(1.0) == PROB_ONE - 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            quantize_probability(1.5)
        with pytest.raises(ValueError):
            quantize_probability(-0.1)

    def test_8bit_is_multiple_of_256(self):
        for p in (0.0, 0.1, 0.5, 0.9, 1.0):
            q = quantize_probability_8bit(p)
            assert q % 256 == 0
            assert 1 <= q <= PROB_ONE - 1

    def test_pow2_lps_is_power_of_two(self):
        for p in (0.03, 0.2, 0.5, 0.8, 0.97):
            q = quantize_power_of_two(p)
            lps = min(q, PROB_ONE - q)
            assert lps & (lps - 1) == 0, f"p={p} lps={lps}"

    def test_pow2_side_preserved(self):
        assert quantize_power_of_two(0.9) > PROB_ONE // 2
        assert quantize_power_of_two(0.1) < PROB_ONE // 2

    def test_pow2_extremes(self):
        assert 1 <= quantize_power_of_two(0.0) < PROB_ONE
        assert 1 <= quantize_power_of_two(1.0) < PROB_ONE


class TestCoderBasics:
    def test_empty_stream(self):
        encoder = BinaryArithmeticEncoder()
        payload = encoder.finish()
        assert isinstance(payload, bytes)

    def test_single_bit(self):
        for bit in (0, 1):
            payload = encode_bits([bit], [PROB_ONE // 2])
            assert decode_bits(payload, [PROB_ONE // 2]) == [bit]

    def test_bad_bit_rejected(self):
        encoder = BinaryArithmeticEncoder()
        with pytest.raises(ValueError):
            encoder.encode_bit(2, PROB_ONE // 2)

    def test_bad_probability_rejected(self):
        encoder = BinaryArithmeticEncoder()
        with pytest.raises(ValueError):
            encoder.encode_bit(0, 0)
        with pytest.raises(ValueError):
            encoder.encode_bit(0, PROB_ONE)

    def test_encode_after_finish_rejected(self):
        encoder = BinaryArithmeticEncoder()
        encoder.finish()
        with pytest.raises(RuntimeError):
            encoder.encode_bit(0, 100)

    def test_finish_idempotent(self):
        encoder = BinaryArithmeticEncoder()
        encoder.encode_bit(1, 1000)
        assert encoder.finish() == encoder.finish()


class TestCompressionBehaviour:
    def test_skewed_bits_compress(self):
        # 4096 zeros predicted at p0 = 0.99 should code far below 4096 bits.
        p = quantize_probability(0.99)
        payload = encode_bits([0] * 4096, [p] * 4096)
        assert len(payload) < 4096 // 8 // 4  # > 4x compression

    def test_mispredicted_bits_expand(self):
        p = quantize_probability(0.99)  # predicts 0, stream is all 1s
        payload = encode_bits([1] * 512, [p] * 512)
        assert len(payload) > 512 // 8  # worse than raw

    def test_uniform_prediction_near_raw(self):
        rng = random.Random(1)
        bits = [rng.randrange(2) for _ in range(4096)]
        payload = encode_bits(bits, [PROB_ONE // 2] * 4096)
        assert abs(len(payload) - 4096 // 8) <= 8

    def test_short_flush(self):
        # The flush emits at most 4 bytes beyond the information content.
        p = quantize_probability(0.5)
        payload = encode_bits([0, 1, 0, 1], [p] * 4)
        assert len(payload) <= 4


def _random_case(seed, n):
    rng = random.Random(seed)
    bits = [rng.randrange(2) for _ in range(n)]
    probs = [rng.randrange(1, PROB_ONE) for _ in range(n)]
    return bits, probs


@pytest.mark.parametrize("seed", range(8))
def test_roundtrip_random_probabilities(seed):
    bits, probs = _random_case(seed, 2000)
    assert decode_bits(encode_bits(bits, probs), probs) == bits


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1), st.integers(1, PROB_ONE - 1)),
                max_size=400))
def test_roundtrip_property(pairs):
    bits = [b for b, _p in pairs]
    probs = [p for _b, p in pairs]
    assert decode_bits(encode_bits(bits, probs), probs) == bits


def test_adaptive_style_usage():
    # Model state may depend on decoded history (as SAMC's does): as long
    # as encoder and decoder derive probabilities identically, it works.
    rng = random.Random(9)
    bits = [rng.randrange(2) for _ in range(1000)]

    def model(history):
        zeros = history.count(0) + 1
        return max(1, min(PROB_ONE - 1,
                          int(PROB_ONE * zeros / (len(history) + 2))))

    encoder = BinaryArithmeticEncoder()
    history = []
    for bit in bits:
        encoder.encode_bit(bit, model(history[-32:]))
        history.append(bit)
    payload = encoder.finish()

    decoder = BinaryArithmeticDecoder(payload)
    history = []
    out = []
    for _ in range(1000):
        bit = decoder.decode_bit(model(history[-32:]))
        out.append(bit)
        history.append(bit)
    assert out == bits


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        encode_bits([0, 1], [100])
