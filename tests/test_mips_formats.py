"""Tests for the MIPS instruction-format model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.mips.formats import (
    BY_MNEMONIC,
    OPCODES,
    Instruction,
    decode,
)
from repro.isa.mips.registers import register_name, register_number


class TestOpcodeTable:
    def test_mnemonics_unique(self):
        names = [spec.mnemonic for spec in OPCODES]
        assert len(names) == len(set(names))

    def test_r_type_have_funct(self):
        for spec in OPCODES:
            if spec.fmt == "R":
                assert spec.funct is not None, spec.mnemonic

    def test_core_instructions_present(self):
        for mnemonic in ("addu", "addiu", "lw", "sw", "beq", "bne", "jal",
                         "jr", "lui", "sll", "slt", "mul.d", "lwc1"):
            assert mnemonic in BY_MNEMONIC


class TestEncodeDecode:
    def test_addu_field_packing(self):
        instr = Instruction(BY_MNEMONIC["addu"], rd=2, rs=4, rt=5)
        word = instr.encode()
        assert word >> 26 == 0
        assert word & 0x3F == 0x21
        assert (word >> 11) & 0x1F == 2
        assert (word >> 21) & 0x1F == 4
        assert (word >> 16) & 0x1F == 5

    def test_addiu_immediate(self):
        instr = Instruction(BY_MNEMONIC["addiu"], rt=29, rs=29, imm=0xFFF8)
        word = instr.encode()
        assert word >> 26 == 0x09
        assert word & 0xFFFF == 0xFFF8

    def test_jal_target(self):
        instr = Instruction(BY_MNEMONIC["jal"], target=0x123456)
        word = instr.encode()
        assert word >> 26 == 0x03
        assert word & 0x3FFFFFF == 0x123456

    def test_regimm_branch_encodes_condition_in_rt(self):
        word = Instruction(BY_MNEMONIC["bgez"], rs=3, imm=8).encode()
        assert (word >> 16) & 0x1F == 0x01
        assert decode(word).mnemonic == "bgez"

    def test_cop1_fmt_field(self):
        word = Instruction(BY_MNEMONIC["add.d"], rt=2, rd=4, shamt=6).encode()
        assert word >> 26 == 0x11
        assert (word >> 21) & 0x1F == 0x11  # double-precision fmt
        decoded = decode(word)
        assert decoded.mnemonic == "add.d"
        assert decoded.rt == 2 and decoded.rd == 4 and decoded.shamt == 6

    def test_all_opcodes_roundtrip(self):
        for spec in OPCODES:
            instr = Instruction(spec, rs=1, rt=2, rd=3, shamt=4,
                                imm=0x1234, target=0x155_5555)
            # Fields the format ignores are dropped by encode; decode must
            # recover what encode actually stored.
            decoded = decode(instr.encode())
            assert decoded.spec.mnemonic == spec.mnemonic
            assert decoded.encode() == instr.encode()

    def test_decode_rejects_unknown_funct(self):
        with pytest.raises(ValueError):
            decode(0x0000_003F)  # SPECIAL with unused funct

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(ValueError):
            decode(0x3F << 26)

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            decode(1 << 32)


@given(st.sampled_from(OPCODES), st.integers(0, 31), st.integers(0, 31),
       st.integers(0, 31), st.integers(0, 31), st.integers(0, 0xFFFF),
       st.integers(0, 0x3FFFFFF))
def test_encode_decode_roundtrip_property(spec, rs, rt, rd, shamt, imm, target):
    instr = Instruction(spec, rs=rs, rt=rt, rd=rd, shamt=shamt,
                        imm=imm, target=target)
    word = instr.encode()
    assert 0 <= word < 2**32
    decoded = decode(word)
    assert decoded.mnemonic == spec.mnemonic
    assert decoded.encode() == word


class TestRegisters:
    def test_name_number_roundtrip(self):
        for number in range(32):
            assert register_number(register_name(number)) == number

    def test_aliases(self):
        assert register_number("$sp") == 29
        assert register_number("sp") == 29
        assert register_number("$29") == 29
        assert register_number("r29") == 29

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            register_number("$xyz")

    def test_out_of_range_name(self):
        with pytest.raises(ValueError):
            register_name(32)
