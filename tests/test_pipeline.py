"""Pipeline semantics: caching, fingerprints, parallel/serial identity.

The guarantees under test are the ones the figure sweeps now depend on:
a job's identity is content-addressed (same code image + same codec
config → same fingerprint, in any process), cache hits never recompress,
corruption of the disk tier degrades to recompute (never a crash or a
wrong number), and ``--jobs N`` is bit-identical to the serial path.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import (
    compression_ratio,
    run_suite,
    run_suite_with_report,
    suite_jobs,
)
from repro.cli import main
from repro.obs import OBS_ENV, NullRecorder, obs_session, use_recorder
from repro.pipeline import (
    ExperimentJob,
    NullCache,
    ResultCache,
    job_fingerprint,
    run_pipeline,
)

#: Small, cheap job mix: two benchmarks × two fast algorithms.
JOBS = [
    ExperimentJob(benchmark, "mips", algorithm, scale=0.15, seed=3)
    for benchmark in ("compress", "tomcatv")
    for algorithm in ("compress", "huffman")
]


def _entry_files(cache_dir: Path):
    return sorted(cache_dir.rglob("*.json"))


class TestFingerprint:
    def test_distinct_configs_distinct_fingerprints(self):
        code = b"\x00\x11\x22\x33" * 8
        base = job_fingerprint(code, "SAMC", "mips", 32)
        assert job_fingerprint(code, "SAMC", "mips", 64) != base
        assert job_fingerprint(code, "SADC", "mips", 32) != base
        assert job_fingerprint(code, "SAMC", "x86", 32) != base
        assert job_fingerprint(code + b"\x00" * 4, "SAMC", "mips", 32) != base

    def test_stable_across_processes(self):
        """Fingerprints must not depend on per-process hash randomisation."""
        code = bytes(range(64))
        local = job_fingerprint(code, "SAMC", "mips", 32)
        script = (
            "from repro.pipeline import job_fingerprint;"
            "print(job_fingerprint(bytes(range(64)), 'SAMC', 'mips', 32))"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "12345"  # force a different hash() universe
        remote = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert remote == local

    def test_scale_int_float_equivalent(self):
        code = b"\x90" * 32
        a = ExperimentJob("compress", "mips", "huffman", scale=1).fingerprint(code)
        b = ExperimentJob("compress", "mips", "huffman", scale=1.0).fingerprint(code)
        assert a == b


class TestCacheSemantics:
    def test_miss_then_memory_hit(self):
        cache = ResultCache()
        first = run_pipeline(JOBS, cache=cache)
        assert first.hits == 0
        assert first.recompressions == len(JOBS)
        second = run_pipeline(JOBS, cache=cache)
        assert second.hits == len(JOBS)
        assert second.recompressions == 0
        assert second.ratios() == first.ratios()

    def test_disk_tier_survives_new_process_state(self, tmp_path):
        first = run_pipeline(JOBS, cache=ResultCache(tmp_path))
        assert _entry_files(tmp_path), "disk tier wrote no entries"
        # A fresh cache instance models a brand-new process: memo empty.
        fresh = ResultCache(tmp_path)
        second = run_pipeline(JOBS, cache=fresh)
        assert second.hits == len(JOBS)
        assert second.recompressions == 0
        assert fresh.stats.disk_hits == len(JOBS)
        assert second.ratios() == first.ratios()

    def test_null_cache_always_recompresses(self):
        cache = NullCache()
        run_pipeline(JOBS, cache=cache)
        report = run_pipeline(JOBS, cache=cache)
        assert report.hits == 0
        assert report.recompressions == len(JOBS)

    def test_duplicate_jobs_compress_once(self):
        report = run_pipeline([JOBS[0], JOBS[0], JOBS[0]], cache=NullCache())
        assert report.job_count == 3
        assert report.recompressions == 1
        assert len(set(report.ratios())) == 1

    def test_corrupted_entry_recovers_by_recompute(self, tmp_path):
        baseline = run_pipeline(JOBS, cache=ResultCache(tmp_path))
        entries = _entry_files(tmp_path)
        entries[0].write_text("definitely { not json")
        # Valid JSON whose fingerprint does not match its filename.
        forged = {
            "version": 1,
            "fingerprint": "0" * 64,
            "payload": {"ratio": 0.0, "bytes_in": 1, "bytes_out": 0},
        }
        entries[1].write_text(json.dumps(forged))

        fresh = ResultCache(tmp_path)
        report = run_pipeline(JOBS, cache=fresh)
        assert report.ratios() == baseline.ratios()
        assert fresh.stats.corrupt == 2
        assert report.recompressions == 2  # only the two damaged entries

        # The recompute rewrote the damaged entries: next run is all hits.
        again = run_pipeline(JOBS, cache=ResultCache(tmp_path))
        assert again.hits == len(JOBS)

    def test_cache_dir_collision_fails_before_compute(self, tmp_path):
        """A cache path that is actually a file must fail up front, not
        after the sweep has burned CPU on every job."""
        collision = tmp_path / "occupied"
        collision.write_text("not a directory")
        with pytest.raises(ValueError, match="not usable"):
            ResultCache(collision)

    def test_cache_dir_created_eagerly(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        ResultCache(target)
        assert target.is_dir()

    def test_truncated_entry_never_crashes(self, tmp_path):
        run_pipeline(JOBS[:1], cache=ResultCache(tmp_path))
        for entry in _entry_files(tmp_path):
            entry.write_bytes(entry.read_bytes()[: len(entry.read_bytes()) // 2])
        report = run_pipeline(JOBS[:1], cache=ResultCache(tmp_path))
        assert report.job_count == 1
        assert report.recompressions == 1


class TestParallelIdentity:
    def test_jobs_1_vs_jobs_n_bit_identical(self):
        serial = run_pipeline(JOBS, max_workers=1, cache=NullCache())
        parallel = run_pipeline(JOBS, max_workers=3, cache=NullCache())
        assert serial.ratios() == parallel.ratios()
        assert [r.bytes_out for r in serial.results] == \
               [r.bytes_out for r in parallel.results]

    def test_run_suite_parallel_identity(self):
        kwargs = dict(
            algorithms=("huffman", "compress"), scale=0.15,
            names=("compress", "tomcatv"), seed=3,
        )
        assert run_suite("mips", jobs=1, **kwargs) == \
               run_suite("mips", jobs=3, **kwargs)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            run_pipeline(JOBS, max_workers=0)


class TestTelemetryMerge:
    """Cross-process telemetry: serial and parallel runs aggregate the
    same counters, bit accounts, and histograms (spans differ only in
    wall time, so only their structure is compared)."""

    @staticmethod
    def _run(workers):
        with obs_session():
            report = run_pipeline(JOBS, max_workers=workers, cache=NullCache())
        return report.telemetry

    def test_jobs_1_vs_jobs_n_telemetry_identical(self):
        serial = self._run(1)
        parallel = self._run(3)
        assert serial is not None and parallel is not None
        assert serial["counters"] == parallel["counters"]
        assert serial["bits"] == parallel["bits"]
        assert serial["histograms"] == parallel["histograms"]
        assert serial["gauges"] == parallel["gauges"]
        assert {p: c["count"] for p, c in serial["spans"].items()} == \
               {p: c["count"] for p, c in parallel["spans"].items()}

    def test_telemetry_rolls_into_ambient_recorder(self):
        with obs_session() as rec:
            run_pipeline(JOBS[:2], max_workers=1, cache=NullCache())
            snap = rec.snapshot()
        # Worker-side job telemetry merged into the session recorder.
        assert any(scope for scope in snap["bits"])
        assert any(path.startswith("pipeline.run") for path in snap["spans"])

    def test_telemetry_none_when_obs_off(self, monkeypatch):
        # Force-disable even when the surrounding suite runs with
        # REPRO_OBS=1 (the CI obs job): the inline jobs=1 path consults
        # the ambient recorder.
        monkeypatch.delenv(OBS_ENV, raising=False)
        with use_recorder(NullRecorder()):
            report = run_pipeline(JOBS[:1], cache=NullCache())
        assert report.telemetry is None

    def test_duplicate_jobs_counted_per_occurrence(self):
        with obs_session():
            once = run_pipeline([JOBS[0]], cache=NullCache()).telemetry
        with obs_session():
            thrice = run_pipeline([JOBS[0]] * 3, cache=NullCache()).telemetry
        # Replay semantics: the aggregate reflects the job *list*, not
        # the deduplicated compute set.
        for name, value in once["counters"].items():
            assert thrice["counters"][name] == 3 * value
        scope = next(iter(once["bits"]))
        for category, bits in once["bits"][scope].items():
            assert thrice["bits"][scope][category] == 3 * bits


class TestSuiteWiring:
    def test_rows_preserve_figure_order(self):
        rows, report = run_suite_with_report(
            "mips", algorithms=("huffman", "compress"), scale=0.15,
            names=("tomcatv", "compress"), seed=3,
        )
        assert [row.benchmark for row in rows] == ["tomcatv", "compress"]
        assert list(rows[0].ratios) == ["huffman", "compress"]
        assert report.job_count == 4

    def test_suite_matches_direct_computation(self):
        from repro.workloads.suite import generate_benchmark

        rows = run_suite("mips", algorithms=("huffman",), scale=0.15,
                         names=("compress",), seed=3)
        code = generate_benchmark("compress", "mips", scale=0.15, seed=3).code
        assert rows[0].ratios["huffman"] == \
               compression_ratio(code, "huffman", "mips", 32)

    def test_suite_jobs_enumeration(self):
        jobs = suite_jobs("x86", algorithms=("SAMC",), names=("gcc", "li"))
        assert jobs == [
            ExperimentJob("gcc", "x86", "SAMC"),
            ExperimentJob("li", "x86", "SAMC"),
        ]

    def test_compression_ratio_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            compression_ratio(b"\x00" * 32, "SAMC", "mips", block_size=0)
        with pytest.raises(ValueError, match="block_size"):
            compression_ratio(b"\x00" * 32, "huffman", "mips", block_size=-8)


class TestCli:
    ARGS = ["suite", "--isa", "mips", "--scale", "0.15",
            "--algorithms", "huffman", "compress",
            "--benchmarks", "compress", "tomcatv"]

    def test_stdout_identical_across_job_widths(self, capsys):
        assert main(self.ARGS + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert "Compression ratios" in serial

    def test_cached_second_run_zero_recompressions(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert "4 cache hits, 0 recompressions" in captured.err

    def test_no_cache_flag(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path), "--no-cache"]
        assert main(args) == 0
        assert not _entry_files(tmp_path)
        assert "0 cache hits" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Fault tolerance: failing jobs degrade the report, never abort the batch.
# ---------------------------------------------------------------------------


def _job(algorithm, benchmark="compress", **kwargs):
    return ExperimentJob(benchmark, "mips", algorithm, scale=0.15, seed=3,
                         **kwargs)


class TestFaultTolerantPipeline:
    def test_failing_job_is_isolated(self):
        jobs = [_job("compress"), _job("no-such-algorithm"), _job("huffman")]
        report = run_pipeline(jobs, cache=NullCache())
        assert report.job_count == 2  # the two good jobs completed
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert failure.job.algorithm == "no-such-algorithm"
        assert failure.attempts == 1

    def test_retries_are_counted_then_exhausted(self):
        jobs = [_job("no-such-algorithm")]
        report = run_pipeline(jobs, cache=NullCache(), retries=2,
                              retry_backoff=0.0)
        assert report.failures[0].attempts == 3  # 1 try + 2 retries

    def test_generation_failure_fails_all_dependent_jobs(self):
        jobs = [
            ExperimentJob("no-such-benchmark", "mips", "compress", scale=0.15),
            ExperimentJob("no-such-benchmark", "mips", "huffman", scale=0.15),
            _job("compress"),
        ]
        report = run_pipeline(jobs, cache=NullCache())
        assert report.job_count == 1
        assert len(report.failures) == 2
        assert all(f.kind == "generation" for f in report.failures)

    def test_failures_identical_across_job_widths(self):
        jobs = [_job("compress"), _job("no-such-algorithm"),
                _job("huffman"), _job("no-such-algorithm", benchmark="tomcatv")]
        serial = run_pipeline(jobs, max_workers=1, cache=NullCache())
        parallel = run_pipeline(jobs, max_workers=4, cache=NullCache())
        key = lambda f: (f.job, f.kind, f.error_type, f.attempts)
        assert [key(f) for f in serial.failures] == \
            [key(f) for f in parallel.failures]
        assert serial.ratios() == parallel.ratios()

    def test_pool_timeout_recorded_not_hung(self):
        jobs = [_job("compress"), _job("huffman")]
        report = run_pipeline(jobs, max_workers=2, cache=NullCache(),
                              job_timeout=1e-6)
        assert report.job_count == 0
        assert len(report.failures) == 2
        assert all(f.kind == "timeout" for f in report.failures)

    def test_failure_report_renders(self):
        report = run_pipeline([_job("no-such-algorithm")], cache=NullCache())
        text = report.format()
        assert "1 FAILED" in text
        assert "no-such-algorithm" in text
        assert report.summary()["failures"] == 1

    def test_degraded_suite_renders_partial_table(self, monkeypatch):
        # Make one algorithm blow up mid-suite and check the table still
        # renders, with `-` in the damaged cells.
        from repro.analysis import experiments
        from repro.analysis.tables import format_suite

        real = experiments.compression_ratio
        blown = []

        def flaky(code, algorithm, isa, block_size=32):
            if algorithm == "huffman" and not blown:
                blown.append(True)
                raise RuntimeError("injected")
            return real(code, algorithm, isa, block_size)

        monkeypatch.setattr(experiments, "compression_ratio", flaky)
        rows, report = run_suite_with_report(
            "mips", algorithms=("compress", "huffman"), scale=0.15,
            names=["compress", "tomcatv"], seed=3, cache=NullCache(),
        )
        assert len(report.failures) == 1
        table = format_suite(rows)
        assert f"  {'-':>9}" in table  # the damaged cell renders as a hole
        assert "huffman" in table  # the column survives via the other row
        assert len(rows) == 2

    def test_failure_counters_reach_obs(self):
        from repro.obs import obs_session

        with obs_session() as recorder:
            run_pipeline([_job("no-such-algorithm")], cache=NullCache(),
                         retries=1, retry_backoff=0.0)
            counters = recorder.snapshot()["counters"]
        assert counters.get("pipeline.job_failures") == 1
        assert counters.get("pipeline.job_retries") == 1


class TestCacheQuarantine:
    def test_corrupt_entries_are_quarantined(self, tmp_path):
        run_pipeline(JOBS, cache=ResultCache(tmp_path))
        entries = _entry_files(tmp_path)
        entries[0].write_text("definitely { not json")

        fresh = ResultCache(tmp_path)
        run_pipeline(JOBS, cache=fresh)
        assert fresh.stats.corrupt == 1
        assert fresh.stats.quarantined == 1
        assert fresh.stats.as_dict()["quarantined"] == 1
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [entries[0].name]
        assert quarantined[0].read_text() == "definitely { not json"

    def test_quarantine_counter_reaches_obs(self, tmp_path):
        from repro.obs import obs_session

        run_pipeline(JOBS, cache=ResultCache(tmp_path))
        _entry_files(tmp_path)[0].write_text("xx")
        with obs_session() as recorder:
            run_pipeline(JOBS, cache=ResultCache(tmp_path))
            counters = recorder.snapshot()["counters"]
        assert counters.get("resilience.cache_quarantined") == 1

    def test_quarantined_entry_not_reloaded(self, tmp_path):
        # The quarantine dir must not shadow the live entry namespace:
        # after recompute the fresh entry wins and hits normally.
        run_pipeline(JOBS, cache=ResultCache(tmp_path))
        _entry_files(tmp_path)[0].write_text("xx")
        run_pipeline(JOBS, cache=ResultCache(tmp_path))
        again = ResultCache(tmp_path)
        report = run_pipeline(JOBS, cache=again)
        assert report.hits == len(JOBS)
        assert again.stats.corrupt == 0
