"""Telemetry export surfaces: Prometheus, Chrome trace JSON, top, SLO.

Satellite contracts of the observability PR:

* histograms count overflow/underflow explicitly and flag quantiles
  drawn from saturated edge buckets;
* the Prometheus exposition is schema-pinned (prefix, type suffixes,
  cumulative buckets) and passes its own validator;
* the Chrome trace-event export is structurally valid trace JSON;
* ``repro top``'s rate/render helpers are pure and deterministic;
* the loadgen SLO gate trips on exactly the configured breaches.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    BUCKET_CAP,
    merge_histogram,
    new_histogram,
    observe,
    quantile_saturated,
    summarize_histogram,
)
from repro.obs.prom import (
    metric_name,
    prometheus_exposition,
    validate_exposition,
)
from repro.obs.trace import (
    TraceContext,
    annex_to_chrome_events,
    chrome_trace_document,
    spans_to_chrome_events,
)
from repro.service.loadgen import (
    LoadgenReport,
    slo_breaches,
    write_stats_json,
)
from repro.service.top import render_dashboard, sample_rates


class TestHistogramSaturation:
    """Overflow/underflow are counted, and quantiles flag saturation."""

    def test_overflow_and_underflow_counted(self):
        cell = new_histogram()
        observe(cell, 5)
        observe(cell, -3)
        observe(cell, 1 << 70)
        assert cell["count"] == 3
        assert cell["underflow"] == 1
        assert cell["overflow"] == 1

    def test_in_range_observations_do_not_saturate(self):
        cell = new_histogram()
        for value in (1, 10, 100, 1000):
            observe(cell, value)
        summary = summarize_histogram(cell)
        assert summary["saturated"] is False
        assert set(summary) == {
            "count", "mean", "p50", "p95", "p99", "saturated",
        }

    def test_quantile_in_cap_bucket_flagged(self):
        cell = new_histogram()
        for _ in range(10):
            observe(cell, 1 << 70)  # clamps into the cap bucket
        assert quantile_saturated(cell, 0.99) is True
        assert summarize_histogram(cell)["saturated"] is True

    def test_quantile_in_underflow_bucket_flagged(self):
        cell = new_histogram()
        for _ in range(10):
            observe(cell, -1)
        assert quantile_saturated(cell, 0.50) is True

    def test_cap_bucket_without_clamping_not_flagged(self):
        cell = new_histogram()
        observe(cell, (1 << BUCKET_CAP) - 1)  # max in-range value
        assert cell["overflow"] == 0
        assert summarize_histogram(cell)["saturated"] is False

    def test_merge_tolerates_pre_saturation_snapshots(self):
        into = new_histogram()
        observe(into, -1)
        legacy = {"buckets": {3: 2}, "count": 2, "total": 10}
        merge_histogram(into, legacy)
        assert into["count"] == 3
        assert into["underflow"] == 1 and into["overflow"] == 0


SNAPSHOT = {
    "counters": {"service.requests.compress": 12, "pipeline.jobs": 3},
    "gauges": {"service.queue_depth": 7},
    "histograms": {
        "service.latency_us.compress": {
            "buckets": {1: 2, 3: 5, 5: 1},
            "count": 8,
            "total": 60,
            "overflow": 0,
            "underflow": 0,
        },
    },
}


class TestPrometheusExposition:
    """The text-format mapping is pinned line by line."""

    def test_metric_name_folding(self):
        assert metric_name("service.latency_us.compress") == (
            "repro_service_latency_us_compress"
        )
        assert metric_name("9lives") == "repro__9lives"

    def test_counter_and_gauge_samples(self):
        text = prometheus_exposition(SNAPSHOT)
        assert "# TYPE repro_service_requests_compress_total counter" in text
        assert "repro_service_requests_compress_total 12" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 7" in text

    def test_histogram_samples_cumulative(self):
        lines = prometheus_exposition(SNAPSHOT).splitlines()
        metric = "repro_service_latency_us_compress"
        samples = [l for l in lines if l.startswith(metric + "_bucket")]
        assert samples == [
            f'{metric}_bucket{{le="1"}} 2',
            f'{metric}_bucket{{le="7"}} 7',
            f'{metric}_bucket{{le="31"}} 8',
            f'{metric}_bucket{{le="+Inf"}} 8',
        ]
        assert f"{metric}_sum 60" in lines
        assert f"{metric}_count 8" in lines

    def test_overflow_emitted_only_when_present(self):
        assert "_overflow_total" not in prometheus_exposition(SNAPSHOT)
        saturated = {
            "histograms": {
                "h": {"buckets": {BUCKET_CAP: 1}, "count": 1,
                      "total": 1 << 70, "overflow": 1, "underflow": 0},
            },
        }
        text = prometheus_exposition(saturated)
        assert "repro_h_overflow_total 1" in text

    def test_exposition_is_deterministic(self):
        assert prometheus_exposition(SNAPSHOT) == (
            prometheus_exposition(json.loads(json.dumps(SNAPSHOT)))
        )

    def test_validator_passes_own_output(self):
        assert validate_exposition(prometheus_exposition(SNAPSHOT)) == []

    def test_validator_catches_defects(self):
        assert validate_exposition("orphan_sample 1\n")
        assert validate_exposition(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'  # not cumulative
        )
        assert validate_exposition(
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_count 9\n"  # +Inf != count
        )

    def test_live_recorder_snapshot_validates(self):
        from repro.obs.recorder import Recorder

        recorder = Recorder()
        recorder.count("a.b", 2)
        recorder.gauge("c", 9)
        for value in (1, 5, 900):
            recorder.observe("lat", value)
        text = prometheus_exposition(recorder.snapshot())
        assert validate_exposition(text) == []


class TestChromeTraceExport:
    """Trace annexes and span trees render as valid trace-event JSON."""

    def _annex(self):
        ctx = TraceContext(77, origin_ns=1000)
        ctx.mark("dispatch", now_ns=1100)
        ctx.mark("codec", now_ns=2100)
        ctx.annotations.append({"name": "registry", "at_ns": 150,
                                "outcome": "hit"})
        return ctx.to_annex()

    def test_annex_events_structure(self):
        events = annex_to_chrome_events(self._annex(), pid=2, tid=3)
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 3  # request + 2 segments
        assert len(instants) == 1
        for event in events:
            assert event["pid"] == 2 and event["tid"] == 3
            assert isinstance(event["ts"], float)
        segment = next(e for e in complete if e["name"] == "codec")
        assert segment["ts"] == pytest.approx(0.1)  # 100ns → 0.1µs
        assert segment["dur"] == pytest.approx(1.0)

    def test_document_shape(self):
        document = chrome_trace_document(
            annex_to_chrome_events(self._annex())
        )
        # The Chrome trace-event "JSON Object Format": traceEvents is
        # the one required key, and the whole thing must be valid JSON.
        round_tripped = json.loads(json.dumps(document))
        assert isinstance(round_tripped["traceEvents"], list)
        assert round_tripped["displayTimeUnit"] == "ms"

    def test_span_tree_layout_preserves_nesting(self):
        spans = {
            "run": {"count": 1, "total_ns": 10_000,
                    "min_ns": 10_000, "max_ns": 10_000},
            "run/encode": {"count": 2, "total_ns": 6_000,
                           "min_ns": 1_000, "max_ns": 5_000},
            "run/train": {"count": 1, "total_ns": 3_000,
                          "min_ns": 3_000, "max_ns": 3_000},
        }
        events = {e["name"]: e for e in spans_to_chrome_events(spans)}
        assert events["run"]["ts"] == 0.0
        # Children start at the parent's start, heaviest first.
        assert events["encode"]["ts"] == 0.0
        assert events["train"]["ts"] == pytest.approx(6.0)
        assert events["run"]["args"]["count"] == 1


class TestTopHelpers:
    """Rates and rendering are pure functions over stats documents."""

    def _doc(self, compress=0, bytes_out=0):
        return {
            "schema_version": 2,
            "uptime_seconds": 12.5,
            "counters": {
                "service.requests.compress": compress,
                "service.replies.ok": compress,
                "service.bytes_out": bytes_out,
            },
            "latency_us": {
                "compress": {"count": compress, "mean": 500,
                             "p50": 400, "p95": 900, "p99": 1500,
                             "saturated": False},
            },
            "batch": {"count": 4, "mean": 2, "p50": 2, "p95": 3,
                      "p99": 3, "saturated": False},
            "queue": {"capacity": 256, "depth": 1,
                      "depth_highwater": 9, "inflight": 2},
            "registry": {"entries": 3, "max_entries": 32,
                         "trained": 3, "hits": 9, "evictions": 0},
        }

    def test_first_sample_has_zero_rates(self):
        rates = sample_rates(None, self._doc(compress=100), 2.0)
        assert all(value == 0.0 for value in rates.values())

    def test_rates_from_counter_deltas(self):
        rates = sample_rates(
            self._doc(compress=100, bytes_out=1000),
            self._doc(compress=150, bytes_out=3000),
            2.0,
        )
        assert rates["service.requests.compress"] == 25.0
        assert rates["service.bytes_out"] == 1000.0

    def test_counter_reset_clamps_to_zero(self):
        rates = sample_rates(
            self._doc(compress=100), self._doc(compress=10), 1.0
        )
        assert rates["service.requests.compress"] == 0.0

    def test_render_dashboard_lines(self):
        lines = render_dashboard(
            self._doc(compress=5),
            {"service.requests.compress": 42.0},
        )
        text = "\n".join(lines)
        assert "rps     42.0" in text
        assert "queue 1/256" in text
        assert "in-flight 2" in text
        assert "75.0% hit rate" in text
        assert "compress" in text and "p99" in text

    def test_saturated_latency_is_flagged(self):
        doc = self._doc(compress=5)
        doc["latency_us"]["compress"]["saturated"] = True
        assert "(saturated)" in "\n".join(render_dashboard(doc))


class TestSloGate:
    """The loadgen SLO gate trips on exactly the configured breaches."""

    def _report(self, latencies, protocol_errors=0, service_errors=0):
        report = LoadgenReport(
            target_rps=100, duration=1, connections=1, seed=0,
            sent=len(latencies) or 1, ok=len(latencies),
            protocol_errors=protocol_errors,
            service_errors=service_errors,
            elapsed=1.0, latencies_ms=list(latencies),
        )
        return report

    def test_clean_run_passes(self):
        report = self._report([1.0] * 100)
        assert slo_breaches(report, p99_ms=20, max_error_rate=0.0) == []

    def test_p99_breach(self):
        report = self._report([1.0] * 98 + [50.0, 60.0])
        breaches = slo_breaches(report, p99_ms=20)
        assert len(breaches) == 1 and "p99" in breaches[0]

    def test_error_rate_breach(self):
        report = self._report([1.0] * 10, service_errors=2)
        report.sent = 12
        breaches = slo_breaches(report, max_error_rate=0.1)
        assert len(breaches) == 1 and "error rate" in breaches[0]

    def test_protocol_errors_always_breach(self):
        report = self._report([1.0], protocol_errors=1)
        assert slo_breaches(report) != []

    def test_no_gates_no_latency_breach(self):
        report = self._report([500.0] * 10)
        assert slo_breaches(report) == []

    def test_stats_json_artifact(self, tmp_path):
        report = self._report([1.0, 2.0, 3.0])
        report.service_stats = {"schema_version": 2}
        path = tmp_path / "loadgen.json"
        write_stats_json(report, str(path))
        document = json.loads(path.read_text())
        assert document["requests_sent"] == 3
        assert document["service_stats"]["schema_version"] == 2
        assert "latency_ms" in document
