"""Protocol-fuzz smoke: 200 seeded malformed requests, zero violations.

This is the service twin of ``test_resilience_fuzz``: it drives the
seeded wire mutator of :mod:`repro.service.fuzz` at a self-hosted
daemon and asserts the service contract held for every iteration —
no hangs, no silent disconnects, no success-for-garbage, no leaked
``internal`` exceptions.
"""

from __future__ import annotations

import random

from repro.service.fuzz import (
    CASES,
    EXPECT_ERROR,
    ServiceFuzzReport,
    run_service_fuzz,
)


class TestCaseTable:
    def test_cases_are_deterministic(self):
        for name, case, _expect in CASES:
            assert case(random.Random(5)) == case(random.Random(5)), name

    def test_covers_frame_and_body_defects(self):
        names = {name for name, _case, _expect in CASES}
        # Frame-level (stream desync) and body-level (intact frame)
        # defects are different server paths; both must be exercised.
        assert {"garbage", "truncated", "bad-crc", "oversized"} <= names
        assert {"unknown-op", "unknown-codec", "invalid-compress"} <= names
        assert "valid-probe" in names  # rejects-everything must fail


class TestSmoke:
    def test_200_iterations_clean(self):
        report = run_service_fuzz(seed=1998, iters=200)
        assert report.ok, "\n".join(report.format_lines())
        assert report.iterations == 200
        assert report.hangs == 0
        # The seeded mix must actually exercise both outcomes.
        assert sum(report.rejected.values()) > 0
        assert report.ok_probes > 0
        # Rejections arrive across several defect categories.
        assert len(report.rejected) >= 3

    def test_report_round_trips_to_json(self):
        import json

        report = run_service_fuzz(seed=3, iters=25)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["target"] == "service"
        assert doc["iterations"] == 25
        assert doc["ok"] is report.ok


class TestReportAccounting:
    def test_failure_count_includes_hangs(self):
        report = ServiceFuzzReport(seed=0)
        assert report.ok
        report.hangs = 1
        assert not report.ok
        assert report.failure_count == 1
        report.failures.append("iter 0 garbage: no reply")
        assert report.failure_count == 2

    def test_format_lines_lists_failures(self):
        report = ServiceFuzzReport(seed=9)
        report.failures.append("iter 3 bad-crc: answered with success")
        lines = report.format_lines()
        assert any("FAILURE" in line for line in lines)

    def test_expect_error_is_default_contract(self):
        # Three OK probes (plain, traced, deadline-stamped); everything
        # else expects a structured rejection.
        expectations = [expect for _n, _c, expect in CASES]
        assert expectations.count(EXPECT_ERROR) == len(CASES) - 3
