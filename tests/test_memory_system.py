"""Integration tests for the decompress-on-miss memory system."""

import pytest

from repro.core.samc import SamcCodec
from repro.memory.system import CompressedMemorySystem
from repro.memory.trace import generate_trace


@pytest.fixture(scope="module")
def samc_image(mips_program):
    return SamcCodec.for_mips().compress(mips_program)


@pytest.fixture(scope="module")
def short_trace(mips_program):
    return list(generate_trace(len(mips_program), length=20_000, seed=1))


class TestTrace:
    def test_addresses_in_range(self, mips_program, short_trace):
        assert all(0 <= a < len(mips_program) for a in short_trace)

    def test_word_aligned(self, short_trace):
        assert all(a % 4 == 0 for a in short_trace)

    def test_deterministic(self, mips_program):
        a = list(generate_trace(len(mips_program), 1000, seed=5))
        b = list(generate_trace(len(mips_program), 1000, seed=5))
        assert a == b

    def test_length_exact(self, mips_program):
        assert len(list(generate_trace(len(mips_program), 1234))) == 1234

    def test_locality_tunable(self, mips_program):
        tight = list(generate_trace(len(mips_program), 20_000, seed=2,
                                    mean_loop_bytes=64, mean_iterations=64))
        loose = list(generate_trace(len(mips_program), 20_000, seed=2,
                                    mean_loop_bytes=2048, mean_iterations=2))
        from repro.memory.cache import InstructionCache

        def hit_ratio(trace):
            cache = InstructionCache(1024, 32, 2)
            for address in trace:
                cache.access(address)
            return cache.stats.hit_ratio

        assert hit_ratio(tight) > hit_ratio(loose)

    def test_tiny_program_rejected(self):
        with pytest.raises(ValueError):
            list(generate_trace(4, 10))


class TestSystem:
    def test_uncompressed_baseline(self, mips_program, short_trace):
        system = CompressedMemorySystem(len(mips_program))
        result = system.run(short_trace)
        assert result.algorithm == "uncompressed"
        assert result.clb is None
        assert result.fetches == len(short_trace)
        assert result.cycles >= result.fetches

    def test_compressed_slower_than_uncompressed(
        self, mips_program, samc_image, short_trace
    ):
        base = CompressedMemorySystem(len(mips_program)).run(short_trace)
        comp = CompressedMemorySystem(
            len(mips_program), image=samc_image
        ).run(short_trace)
        assert comp.cycles >= base.cycles
        assert comp.slowdown_vs(base) >= 1.0

    def test_slowdown_shrinks_with_bigger_cache(
        self, mips_program, samc_image, short_trace
    ):
        def slowdown(cache_size):
            base = CompressedMemorySystem(
                len(mips_program), cache_size=cache_size
            ).run(short_trace)
            comp = CompressedMemorySystem(
                len(mips_program), image=samc_image, cache_size=cache_size
            ).run(short_trace)
            return comp.slowdown_vs(base)

        assert slowdown(8192) <= slowdown(512) + 1e-9

    def test_clb_stats_collected(self, mips_program, samc_image, short_trace):
        system = CompressedMemorySystem(len(mips_program), image=samc_image)
        result = system.run(short_trace)
        assert result.clb is not None
        assert result.clb.lookups == result.cache.misses

    def test_block_size_mismatch_rejected(self, mips_program, samc_image):
        with pytest.raises(ValueError):
            CompressedMemorySystem(
                len(mips_program), image=samc_image, block_size=64
            )

    def test_cycles_per_fetch(self, mips_program, short_trace):
        result = CompressedMemorySystem(len(mips_program)).run(short_trace)
        assert result.cycles_per_fetch == result.cycles / result.fetches

    def test_empty_trace(self, mips_program):
        result = CompressedMemorySystem(len(mips_program)).run([])
        assert result.cycles == 0
        assert result.cycles_per_fetch == 0.0
