"""Unit tests for the observability layer: recorder, metrics, renderers.

The properties under test are the ones the rest of the stack leans on:
the NullRecorder is a complete no-op, span aggregation keys are
deterministic, snapshots merge associatively and order-insensitively
(what makes ``--jobs 1`` and ``--jobs N`` telemetry identical), and the
``stats --format json`` document survives a JSON round-trip.
"""

import json
import os

import pytest

from repro.obs import (
    OBS_ENV,
    NullRecorder,
    Recorder,
    empty_snapshot,
    get_recorder,
    merge_snapshots,
    obs_enabled,
    obs_session,
    use_recorder,
)
from repro.obs.metrics import (
    BUCKET_CAP,
    bucket_bounds,
    bucket_index,
    merge_histogram,
    new_histogram,
    observe,
)
from repro.obs.recorder import merge_into, span_label
from repro.obs.render import (
    format_bits_table,
    format_histogram,
    format_span_tree,
    stats_document,
)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        with rec.span("anything", attr=1):
            with rec.scope("a/b/c"):
                rec.count("x")
                rec.gauge("y", 7)
                rec.observe("z", 3)
                rec.add_bits("bits", 100)
        assert rec.snapshot() == empty_snapshot()

    def test_merge_snapshot_is_noop(self):
        rec = NullRecorder()
        live = Recorder()
        live.count("c", 5)
        rec.merge_snapshot(live.snapshot())
        assert rec.snapshot() == empty_snapshot()


class TestSpanLabel:
    def test_no_attrs_is_bare_name(self):
        assert span_label("encode", {}) == "encode"

    def test_attrs_sorted_for_determinism(self):
        label = span_label("job", {"isa": "mips", "algorithm": "SAMC"})
        assert label == "job{algorithm=SAMC,isa=mips}"


class TestRecorderSpans:
    def test_nested_spans_aggregate_by_path(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("inner"):
                pass
        snap = rec.snapshot()
        assert set(snap["spans"]) == {"outer", "outer/inner"}
        assert snap["spans"]["outer"]["count"] == 1
        assert snap["spans"]["outer/inner"]["count"] == 2

    def test_span_records_min_max_total(self):
        rec = Recorder()
        for _ in range(3):
            with rec.span("s"):
                pass
        cell = rec.snapshot()["spans"]["s"]
        assert cell["count"] == 3
        assert cell["min_ns"] <= cell["max_ns"] <= cell["total_ns"]

    def test_span_survives_exception(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("inner failure")
        assert rec.snapshot()["spans"]["boom"]["count"] == 1
        # The stack unwound: a new span is a root, not a child of boom.
        with rec.span("after"):
            pass
        assert "after" in rec.snapshot()["spans"]


class TestRecorderInstruments:
    def test_counters_add(self):
        rec = Recorder()
        rec.count("events")
        rec.count("events", 4)
        assert rec.snapshot()["counters"]["events"] == 5

    def test_gauges_keep_maximum(self):
        rec = Recorder()
        rec.gauge("peak", 10)
        rec.gauge("peak", 3)
        rec.gauge("peak", 12)
        assert rec.snapshot()["gauges"]["peak"] == 12

    def test_histograms_bucket_and_total(self):
        rec = Recorder()
        for value in (0, 1, 2, 3, 4):
            rec.observe("sizes", value)
        cell = rec.snapshot()["histograms"]["sizes"]
        assert cell["count"] == 5
        assert cell["total"] == 10
        assert cell["buckets"] == {0: 1, 1: 1, 2: 2, 3: 1}


class TestBitAccounting:
    def test_default_scope_from_constructor(self):
        rec = Recorder(scope="gcc/mips/SAMC")
        rec.add_bits("model", 64)
        rec.add_bits("model", 8)
        assert rec.snapshot()["bits"] == {"gcc/mips/SAMC": {"model": 72}}

    def test_scope_context_overrides_and_restores(self):
        rec = Recorder(scope="outer")
        with rec.scope("inner"):
            rec.add_bits("a", 1)
        rec.add_bits("b", 2)
        assert rec.snapshot()["bits"] == {"inner": {"a": 1}, "outer": {"b": 2}}

    def test_explicit_scope_argument_wins(self):
        rec = Recorder(scope="ambient")
        rec.add_bits("a", 3, scope="explicit")
        assert rec.snapshot()["bits"] == {"explicit": {"a": 3}}


class TestMetricsBucketing:
    def test_bucket_index_edges(self):
        assert bucket_index(0) == 0
        assert bucket_index(-5) == 0
        assert bucket_index(1) == 1
        assert bucket_index(2) == 2
        assert bucket_index(3) == 2
        assert bucket_index(4) == 3
        assert bucket_index(2**63) == BUCKET_CAP
        assert bucket_index(2**200) == BUCKET_CAP

    def test_bucket_bounds_cover_index(self):
        for value in (1, 2, 3, 7, 8, 1000):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi

    def test_merge_coerces_string_bucket_keys(self):
        # JSON round-trips turn int bucket keys into strings; merging a
        # deserialised histogram must not split buckets by key type.
        a = new_histogram()
        observe(a, 5)
        b = json.loads(json.dumps(a))
        merge_histogram(a, b)
        assert a["buckets"] == {3: 2}
        assert a["count"] == 2


class TestSnapshotMerge:
    @staticmethod
    def _worker(seed):
        rec = Recorder(scope=f"bench{seed % 2}/mips/SAMC")
        rec.count("jobs")
        rec.count("words", seed * 10)
        rec.gauge("peak", seed)
        rec.observe("sizes", seed)
        rec.add_bits("payload", seed * 100)
        with rec.span("job"):
            with rec.span("encode"):
                pass
        return rec.snapshot()

    def test_merge_is_order_insensitive(self):
        snaps = [self._worker(seed) for seed in (1, 2, 3)]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(reversed(snaps))
        assert forward == backward

    def test_merge_matches_single_recorder_equivalent(self):
        merged = merge_snapshots([self._worker(s) for s in (1, 2, 3)])
        assert merged["counters"] == {"jobs": 3, "words": 60}
        assert merged["gauges"] == {"peak": 3}
        assert merged["histograms"]["sizes"]["count"] == 3
        assert merged["bits"] == {
            "bench1/mips/SAMC": {"payload": 400},
            "bench0/mips/SAMC": {"payload": 200},
        }
        assert merged["spans"]["job"]["count"] == 3
        assert merged["spans"]["job/encode"]["count"] == 3

    def test_merge_into_recorder(self):
        rec = Recorder()
        rec.count("jobs")
        rec.merge_snapshot(self._worker(2))
        assert rec.snapshot()["counters"]["jobs"] == 2

    def test_merge_into_empty_copies_spans(self):
        target = empty_snapshot()
        merge_into(target, self._worker(1))
        source = self._worker(1)
        # Mutating the merge target must not alias the source snapshot.
        target["spans"]["job"]["count"] += 100
        assert source["spans"]["job"]["count"] == 1


class TestAmbientRecorder:
    def test_disabled_by_default(self):
        # The ambient default tracks REPRO_OBS at interpreter start, so
        # pin the property in a clean subprocess — this test must also
        # pass when the suite itself runs under REPRO_OBS=1 (the CI obs
        # job).
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        env.pop(OBS_ENV, None)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        script = "from repro.obs import obs_enabled; print(obs_enabled())"
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert out == "False"

    def test_use_recorder_swaps_and_restores(self):
        live = Recorder()
        before = get_recorder()
        with use_recorder(live):
            assert get_recorder() is live
            assert obs_enabled() is True
        assert get_recorder() is before

    def test_obs_session_sets_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(OBS_ENV, raising=False)
        before = get_recorder()
        with obs_session(scope="test") as rec:
            assert os.environ[OBS_ENV] == "1"
            assert get_recorder() is rec
            rec.add_bits("x", 8)
        assert OBS_ENV not in os.environ
        assert get_recorder() is before

    def test_obs_session_preserves_existing_env_value(self, monkeypatch):
        monkeypatch.setenv(OBS_ENV, "yes")
        with obs_session():
            assert os.environ[OBS_ENV] == "1"
        assert os.environ[OBS_ENV] == "yes"


class TestRenderers:
    def _snapshot(self):
        rec = Recorder(scope="gcc/mips/SAMC")
        rec.add_bits("stream0", 800)
        rec.add_bits("model", 200)
        rec.count("samc.blocks_encoded", 4)
        rec.observe("sizes", 6)
        with rec.span("pipeline.run"):
            with rec.span("job", benchmark="gcc"):
                pass
        return rec.snapshot()

    def test_bits_table_shows_total_and_share(self):
        text = format_bits_table(self._snapshot()["bits"])
        assert "gcc/mips/SAMC" in text
        assert "stream0" in text and "80.00%" in text
        assert "total" in text and "1000" in text and "125 bytes" in text

    def test_bits_table_empty(self):
        assert "no bit-accounting" in format_bits_table({})

    def test_span_tree_indents_children(self):
        text = format_span_tree(self._snapshot()["spans"])
        lines = text.splitlines()
        assert lines[0].startswith("pipeline.run")
        assert lines[1].startswith("  job{benchmark=gcc}")

    def test_span_tree_empty(self):
        assert format_span_tree({}) == "no spans recorded"

    def test_format_histogram(self):
        snap = self._snapshot()
        text = format_histogram("sizes", snap["histograms"]["sizes"])
        assert "n=1 total=6" in text
        assert "[4, 8): 1" in text

    def test_stats_document_json_round_trip(self):
        doc = stats_document(self._snapshot())
        restored = json.loads(json.dumps(doc))
        assert restored == doc  # all keys stringified: lossless round-trip
        assert restored["schema_version"] == 1
        cell = restored["benchmarks"]["gcc/mips/SAMC"]
        assert cell["total_bits"] == 1000
        assert cell["total_bytes"] == 125
        assert cell["categories"] == {"model": 200, "stream0": 800}
        assert restored["histograms"]["sizes"]["buckets"] == {"3": 1}
