"""Tests for the whole-program contract analyses (layer 3).

Four deliberately-broken fixture trees — one per analysis — must each
produce exactly one finding with the right rule id, file, and line;
their repaired counterparts must verify clean.  Plus unit coverage for
the call-graph tiers, the baseline machinery, and SARIF rendering.
"""

import textwrap
import time
from pathlib import Path

import pytest

from repro.verify import SEVERITY_ERROR, Finding
from repro.verify.baseline import (
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.verify.callgraph import build_callgraph
from repro.verify.contracts import flow_rules
from repro.verify.lint import parse_tree, run_lint
from repro.verify.sarif import to_sarif


def _write_tree(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


def _flow_lint(root):
    return run_lint(flow_rules(), root=root)


def _graph(tmp_path, files):
    return build_callgraph(parse_tree(Path(_write_tree(tmp_path, files))))


# ---------------------------------------------------------------------------
# Broken fixtures: exactly one finding each, with rule id, file, line.
# ---------------------------------------------------------------------------


class TestBrokenFlowFixtures:
    def test_exception_leak(self, tmp_path):
        # A decode entry reaches a helper whose raw IndexError has no
        # decode_guard between it and the entry point.
        root = _write_tree(tmp_path, {
            "core/dec.py": """
                # repro: contract decode-entry
                def decode(data):
                    return _pick(data, 0)


                def _pick(data, i):
                    if i >= len(data):
                        raise IndexError("index out of range")
                    return data[i]
            """,
        })
        findings = _flow_lint(root)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "exception-leak"
        assert f.severity == SEVERITY_ERROR
        assert f.file.endswith("core/dec.py")
        assert f.line == 9  # the raise, not the entry point
        assert "IndexError" in f.message
        assert "core/dec.py::decode" in f.message

    def test_loop_progress(self, tmp_path):
        # A decode-reachable while loop whose body neither consumes
        # input nor advances a counter.
        root = _write_tree(tmp_path, {
            "core/spin.py": """
                # repro: contract decode-entry
                def decode(data):
                    while data:
                        pass
                    return data
            """,
        })
        findings = _flow_lint(root)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "loop-progress"
        assert f.file.endswith("core/spin.py")
        assert f.line == 4  # the while statement
        assert "progress metric" in f.message

    def test_determinism_taint(self, tmp_path):
        # Set iteration inside a determinism sink: hash-order leaks
        # into the output.
        root = _write_tree(tmp_path, {
            "pipeline/fp.py": """
                # repro: contract determinism-sink
                def digest(keys):
                    out = []
                    for key in set(keys):
                        out.append(key)
                    return out
            """,
        })
        findings = _flow_lint(root)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "determinism-taint"
        assert f.file.endswith("pipeline/fp.py")
        assert f.line == 5  # the iterated set() expression
        assert "pipeline/fp.py::digest" in f.message

    def test_dual_path_drift(self, tmp_path):
        # A batch entry point with no scalar oracle to diff against.
        root = _write_tree(tmp_path, {
            "core/codec.py": """
                class Codec:
                    def decompress_blocks(self, payloads):
                        return [bytes(payload) for payload in payloads]
            """,
        })
        findings = _flow_lint(root)
        assert len(findings) == 1
        f = findings[0]
        assert f.rule == "dual-path-drift"
        assert f.file.endswith("core/codec.py")
        assert f.line == 3  # the def line
        assert "no scalar oracle" in f.message


class TestFlowFixtureRepairs:
    def test_guarded_leak_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/dec.py": """
                from repro.resilience.errors import decode_guard

                # repro: contract decode-entry
                def decode(data):
                    with decode_guard("dec.decode"):
                        return _pick(data, 0)


                def _pick(data, i):
                    if i >= len(data):
                        raise IndexError("index out of range")
                    return data[i]
            """,
        })
        assert _flow_lint(root) == []

    def test_consuming_loop_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/spin.py": """
                # repro: contract decode-entry
                def decode(items):
                    while items:
                        items.pop()
                    return items
            """,
        })
        assert _flow_lint(root) == []

    def test_sorted_iteration_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "pipeline/fp.py": """
                # repro: contract determinism-sink
                def digest(keys):
                    out = []
                    for key in sorted(set(keys)):
                        out.append(key)
                    return out
            """,
        })
        assert _flow_lint(root) == []

    def test_batch_with_oracle_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/codec.py": """
                class Codec:
                    def decompress_block(self, payload):
                        return bytes(payload)

                    def decompress_blocks(self, payloads):
                        return [
                            self.decompress_block(p) for p in payloads
                        ]
            """,
        })
        assert _flow_lint(root) == []

    def test_noqa_suppresses_flow_finding(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/dec.py": """
                # repro: contract decode-entry
                def decode(data):
                    raise IndexError("x")  # repro: noqa exception-leak
            """,
        })
        assert _flow_lint(root) == []


class TestContractAnnotations:
    def test_unknown_contract_name_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/x.py": """
                # repro: contract decode-gateway
                def decode(data):
                    return data
            """,
        })
        findings = _flow_lint(root)
        assert [f.rule for f in findings] == ["contract-annotation"]
        assert findings[0].line == 2
        assert "decode-gateway" in findings[0].message

    def test_trailing_annotation_on_def_line(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/x.py": """
                def decode(data):  # repro: contract decode-entry
                    raise KeyError("boom")
            """,
        })
        findings = _flow_lint(root)
        assert [f.rule for f in findings] == ["exception-leak"]

    def test_wire_derived_bound_needs_budget_check(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/x.py": """
                # repro: contract decode-entry
                def decode(reader):
                    count = reader.u16()
                    total = 0
                    for _ in range(count):
                        total += reader.u8()
                    return total
            """,
        })
        findings = _flow_lint(root)
        assert [f.rule for f in findings] == ["loop-progress"]
        assert "'count'" in findings[0].message
        assert findings[0].line == 6  # the for statement

    def test_validated_wire_bound_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/x.py": """
                from repro.resilience.errors import CorruptedStreamError

                # repro: contract decode-entry
                def decode(reader):
                    count = reader.u16()
                    if count > 4096:
                        raise CorruptedStreamError("count over budget")
                    total = 0
                    for _ in range(count):
                        total += reader.u8()
                    return total
            """,
        })
        assert _flow_lint(root) == []


# ---------------------------------------------------------------------------
# Call-graph unit coverage: cycles, dispatch tiers, dunder fallback.
# ---------------------------------------------------------------------------


class TestCallGraph:
    def test_cycle_reachability_terminates(self, tmp_path):
        graph = _graph(tmp_path, {
            "core/a.py": """
                def ping(n):
                    return pong(n - 1)


                def pong(n):
                    return ping(n - 1)
            """,
        })
        reachable = graph.reachable(["core/a.py::ping"])
        assert reachable == {"core/a.py::ping", "core/a.py::pong"}

    def test_lexical_resolution_is_precise(self, tmp_path):
        graph = _graph(tmp_path, {
            "core/a.py": """
                def helper(x):
                    return x


                def entry(x):
                    return helper(x)
            """,
        })
        (site,) = graph.sites("core/a.py::entry")
        assert site.resolved == ("core/a.py::helper",)
        assert site.fallback is False

    def test_import_directed_resolution_is_precise(self, tmp_path):
        graph = _graph(tmp_path, {
            "core/helper.py": """
                def unwrap(data):
                    return data
            """,
            "core/entry.py": """
                from repro.core import helper


                def decode(data):
                    return helper.unwrap(data)
            """,
        })
        (site,) = graph.sites("core/entry.py::decode")
        assert site.resolved == ("core/helper.py::unwrap",)
        assert site.fallback is False

    def test_dynamic_dispatch_falls_back_to_name_match(self, tmp_path):
        # codec is a statically-unknown object: the call must link to
        # every project function of that name, flagged as a fallback.
        graph = _graph(tmp_path, {
            "core/m1.py": """
                def decompress_block(p):
                    return p
            """,
            "core/m2.py": """
                def decompress_block(p):
                    return bytes(p)
            """,
            "core/use.py": """
                def run(codec, p):
                    return codec.decompress_block(p)
            """,
        })
        (site,) = graph.sites("core/use.py::run")
        assert set(site.resolved) == {
            "core/m1.py::decompress_block",
            "core/m2.py::decompress_block",
        }
        assert site.fallback is True

    def test_dunder_names_never_fall_back(self, tmp_path):
        # super().__init__() must not link every constructor in the
        # project into one reachability blob.
        graph = _graph(tmp_path, {
            "core/base.py": """
                class Base:
                    def __init__(self):
                        self.x = 1


                class Child(Base):
                    def __init__(self):
                        super().__init__()
            """,
        })
        init_sites = [
            s
            for s in graph.sites("core/base.py::Child.__init__")
            if s.callee_name == "__init__"
        ]
        assert len(init_sites) == 1
        assert init_sites[0].resolved == ()

    def test_self_method_resolution(self, tmp_path):
        graph = _graph(tmp_path, {
            "core/c.py": """
                class Codec:
                    def step(self, x):
                        return x

                    def run(self, x):
                        return self.step(x)
            """,
        })
        (site,) = graph.sites("core/c.py::Codec.run")
        assert site.resolved == ("core/c.py::Codec.step",)
        assert site.fallback is False

    def test_external_module_calls_resolve_to_nothing(self, tmp_path):
        graph = _graph(tmp_path, {
            "core/x.py": """
                import struct


                def parse(data):
                    return struct.unpack("<I", data)
            """,
        })
        (site,) = graph.sites("core/x.py::parse")
        assert site.resolved == ()
        assert site.fallback is False


# ---------------------------------------------------------------------------
# Baseline machinery.
# ---------------------------------------------------------------------------


def _finding(rule="exception-leak", file="src/repro/a.py", line=7,
             message="boom"):
    return Finding(rule, SEVERITY_ERROR, file, line, message)


class TestBaseline:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding(), _finding(message="other")], path)
        entries = load_baseline(path)
        assert len(entries) == 2
        assert {e["message"] for e in entries} == {"boom", "other"}

    def test_apply_subtracts_line_insensitively(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding(line=7)], path)
        # Same (rule, file, message) at a different line still matches:
        # edits above a baselined site must not resurrect it.
        kept, matched, stale = apply_baseline(
            [_finding(line=99)], load_baseline(path)
        )
        assert kept == []
        assert matched == 1
        assert stale == []

    def test_new_finding_survives_subtraction(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding()], path)
        fresh = _finding(message="newly introduced")
        kept, matched, stale = apply_baseline(
            [_finding(), fresh], load_baseline(path)
        )
        assert kept == [fresh]
        assert matched == 1

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([_finding(), _finding(message="fixed since")], path)
        kept, matched, stale = apply_baseline(
            [_finding()], load_baseline(path)
        )
        assert kept == []
        assert matched == 1
        assert [e["message"] for e in stale] == ["fixed since"]

    def test_multiset_semantics(self, tmp_path):
        # Two identical findings, one baseline entry: one is new.
        path = tmp_path / "baseline.json"
        write_baseline([_finding()], path)
        kept, matched, _ = apply_baseline(
            [_finding(), _finding()], load_baseline(path)
        )
        assert matched == 1
        assert len(kept) == 1

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_load_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"version": 1, "findings": [{"rule": "x"}]}'
        )
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(path)

    def test_baseline_key_ignores_line_and_severity(self):
        assert baseline_key(_finding(line=1)) == baseline_key(
            _finding(line=500)
        )


# ---------------------------------------------------------------------------
# SARIF rendering.
# ---------------------------------------------------------------------------


class TestSarif:
    def test_document_shape(self):
        doc = to_sarif([_finding()])
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-check"
        (result,) = run["results"]
        assert result["ruleId"] == "exception-leak"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/a.py"
        assert location["region"]["startLine"] == 7

    def test_rules_deduplicated_and_sorted(self):
        doc = to_sarif([
            _finding(rule="loop-progress"),
            _finding(rule="exception-leak"),
            _finding(rule="loop-progress"),
        ])
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == [
            "exception-leak", "loop-progress",
        ]

    def test_empty_findings_make_valid_document(self):
        doc = to_sarif([])
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []


# ---------------------------------------------------------------------------
# Performance: the whole-program pass must stay cheap enough for CI's
# 30-second guard with wide margin.
# ---------------------------------------------------------------------------


class TestFlowPerformance:
    def test_flow_rules_on_real_tree_are_fast(self):
        start = time.monotonic()
        run_lint(flow_rules())
        elapsed = time.monotonic() - start
        assert elapsed < 15.0, f"flow analyses took {elapsed:.1f}s"
