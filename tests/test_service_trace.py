"""End-to-end request tracing, the flight recorder, and the DUMP op.

The tentpole contracts of the observability layer:

* a traced request's reply carries a trace annex whose trace id is the
  client's, whose segments partition the server timeline exactly
  (``sum(dur_ns) == total_ns``), and whose total fits inside the
  client-observed wire latency;
* untagged frames are untouched — tracing is strictly opt-in and
  backwards compatible;
* the flight recorder is a bounded ring whose JSONL dump round-trips,
  reachable over the wire (DUMP) and written to disk on wire errors;
* the fuzzer's trace-mutation cases cannot extract a hang, a success,
  or a leaked internal error from the daemon.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.clock import monotonic_ns
from repro.obs.flightrec import FlightRecorder, parse_dump
from repro.obs.trace import TraceContext, activate, trace_annotate
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import (
    FLAG_TRACED,
    OP_COMPRESS,
    OP_DUMP,
    OP_STATS,
    Request,
    Response,
    STATUS_OK,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.service.server import ServerThread, ServiceConfig


@pytest.fixture(scope="module")
def server():
    with ServerThread(ServiceConfig(port=0)) as address:
        yield address


@pytest.fixture()
def client(server):
    host, port = server
    with ServiceClient(host, port) as cli:
        yield cli


PAYLOAD = bytes(range(256)) * 4


class TestTracedProtocol:
    """Wire-level encode/decode of the trace extension."""

    def test_traced_request_round_trip(self):
        request = Request(
            op=OP_COMPRESS, request_id=7, codec="gzipish",
            payload=b"abc", traced=True, trace_id=(1 << 64) - 1,
        )
        decoded = decode_request(encode_request(request))
        assert decoded.traced is True
        assert decoded.trace_id == (1 << 64) - 1
        assert decoded.payload == b"abc"
        assert decoded.request_id == 7

    def test_untraced_request_unchanged(self):
        request = Request(
            op=OP_COMPRESS, request_id=3, codec="lzw", payload=b"xy"
        )
        body = encode_request(request)
        assert body[0] == OP_COMPRESS  # no flag bit on the wire
        decoded = decode_request(body)
        assert decoded.traced is False and decoded.trace_id == 0

    def test_trace_id_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_request(Request(
                op=OP_COMPRESS, request_id=1, codec="lzw",
                payload=b"", traced=True, trace_id=1 << 64,
            ))

    def test_traced_response_round_trip(self):
        annex = json.dumps({
            "version": 1, "trace_id": 42, "total_ns": 10,
            "segments": [], "annotations": [],
        }).encode()
        response = Response(
            op=OP_COMPRESS, status=STATUS_OK, request_id=9,
            payload=b"out", traced=True, trace_json=annex,
        )
        decoded = decode_response(encode_response(response))
        assert decoded.traced is True
        assert decoded.payload == b"out"
        assert decoded.trace()["trace_id"] == 42

    def test_untraced_response_has_no_annex(self):
        response = Response(
            op=OP_COMPRESS, status=STATUS_OK, request_id=1, payload=b"z"
        )
        decoded = decode_response(encode_response(response))
        assert decoded.traced is False and decoded.trace() is None

    def test_truncated_traced_request_rejected(self):
        # A traced header needs 14 bytes before the codec name.
        stub = bytes([OP_COMPRESS | FLAG_TRACED]) + b"\x00" * 5
        with pytest.raises(protocol.WireError):
            decode_request(stub)

    def test_flag_on_unknown_op_still_unknown(self):
        body = bytearray(encode_request(Request(
            op=OP_COMPRESS, request_id=1, codec="gzipish",
            payload=b"x", traced=True, trace_id=5,
        )))
        body[0] = 127 | FLAG_TRACED
        with pytest.raises(protocol.WireError, match="op"):
            decode_request(bytes(body))


class TestTraceContext:
    """The exact-partition timeline model."""

    def test_segments_partition_exactly(self):
        t0 = monotonic_ns()
        ctx = TraceContext(1, origin_ns=t0)
        ctx.mark("a", now_ns=t0 + 100)
        ctx.mark("b", now_ns=t0 + 250)
        ctx.mark("c", now_ns=t0 + 1000)
        assert [s["dur_ns"] for s in ctx.segments] == [100, 150, 750]
        assert [s["start_ns"] for s in ctx.segments] == [0, 100, 250]
        assert sum(s["dur_ns"] for s in ctx.segments) == ctx.total_ns == 1000

    def test_clock_regression_clamps_to_zero_duration(self):
        t0 = monotonic_ns()
        ctx = TraceContext(1, origin_ns=t0)
        ctx.mark("a", now_ns=t0 - 50)
        assert ctx.segments[0]["dur_ns"] == 0
        assert ctx.total_ns == 0

    def test_annotations_reach_every_active_context(self):
        contexts = [TraceContext(i) for i in (1, 2)]
        with activate(contexts):
            trace_annotate("registry", outcome="hit")
        trace_annotate("after", x=1)  # outside: no-op
        for ctx in contexts:
            assert [a["name"] for a in ctx.annotations] == ["registry"]
            assert ctx.annotations[0]["outcome"] == "hit"


class TestTracedService:
    """Live-daemon tracing: echo, reconciliation, registry annotation."""

    @pytest.mark.parametrize("trace_id", [0, 1, (1 << 64) - 1])
    def test_trace_id_echoed(self, client, trace_id):
        response = client.request(
            OP_COMPRESS, "gzipish", PAYLOAD, trace_id=trace_id
        )
        assert response.ok
        assert response.trace()["trace_id"] == trace_id

    def test_timeline_reconciles_with_wire_latency(self, client):
        started = monotonic_ns()
        response = client.request(
            OP_COMPRESS, "gzipish", PAYLOAD, trace_id=99
        )
        wire_ns = monotonic_ns() - started
        annex = response.trace()
        segments = annex["segments"]
        # The exact-partition invariant survives the wire.
        assert sum(s["dur_ns"] for s in segments) == annex["total_ns"]
        # The server timeline fits inside what the client observed.
        assert 0 < annex["total_ns"] <= wire_ns
        assert [s["name"] for s in segments] == [
            "dispatch", "queue_wait", "group_assembly", "codec", "reply",
        ]

    def test_untraced_request_gets_no_annex(self, client):
        response = client.request(OP_COMPRESS, "gzipish", PAYLOAD)
        assert response.ok and response.trace() is None

    def test_registry_annotates_traced_samc_requests(self, client):
        code = bytes((i * 7) % 256 for i in range(1024))
        first = client.request(
            OP_COMPRESS, "samc-bytes", code, trace_id=11
        ).trace()
        second = client.request(
            OP_COMPRESS, "samc-bytes", code, trace_id=12
        ).trace()
        outcomes = {
            a["outcome"] for annex in (first, second)
            for a in annex["annotations"] if a["name"] == "registry"
        }
        # Train on first touch, hit on the second: both annotated.
        assert "train" in outcomes and "hit" in outcomes

    def test_inline_op_traces_as_single_segment(self, client):
        response = client.request(OP_STATS, trace_id=5)
        annex = response.trace()
        assert [s["name"] for s in annex["segments"]] == ["inline"]
        assert annex["segments"][0]["dur_ns"] == annex["total_ns"]

    def test_error_reply_still_carries_trace(self, client):
        response = client.request(
            OP_COMPRESS, "no-such-codec", b"x", trace_id=13
        )
        assert not response.ok
        assert response.trace()["trace_id"] == 13


class TestFlightRecorder:
    """Ring bounds, dump round-trip, and the wire/dump-on-error paths."""

    def test_ring_is_bounded_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for index in range(10):
            rec.record("event", index=index)
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        # Oldest fell off; sequence numbers keep counting.
        assert [e["index"] for e in rec.events()] == [6, 7, 8, 9]
        assert [e["seq"] for e in rec.events()] == [7, 8, 9, 10]

    def test_dump_round_trips_through_parse(self):
        rec = FlightRecorder(capacity=8)
        rec.record("accepted", request_id=1, op="compress")
        rec.record("reply", request_id=1, status="ok")
        parsed = parse_dump(rec.dump_jsonl())
        assert parsed["meta"]["events"] == 2
        assert parsed["meta"]["capacity"] == 8
        assert [e["kind"] for e in parsed["events"]] == [
            "accepted", "reply",
        ]

    def test_parse_rejects_malformed_dumps(self):
        with pytest.raises(ValueError):
            parse_dump("")
        with pytest.raises(ValueError):
            parse_dump('{"not-meta": 1}\n')
        good = FlightRecorder(2)
        good.record("x")
        truncated = good.dump_jsonl().splitlines()[0] + "\n"
        with pytest.raises(ValueError, match="declares"):
            parse_dump(truncated)

    def test_dump_op_returns_parseable_ring(self, client):
        client.request(OP_COMPRESS, "gzipish", PAYLOAD)
        dump = client.request(OP_DUMP)
        assert dump.ok
        parsed = parse_dump(dump.payload.decode())
        kinds = {e["kind"] for e in parsed["events"]}
        assert "accepted" in kinds and "reply" in kinds

    def test_wire_error_dumps_to_configured_path(self, tmp_path):
        dump_path = tmp_path / "flight.jsonl"
        config = ServiceConfig(
            port=0, flightrec_capacity=64, flightrec_dump=str(dump_path)
        )
        with ServerThread(config) as (host, port):
            with ServiceClient(host, port) as cli:
                cli.request(OP_COMPRESS, "gzipish", b"ok" * 32)
                cli.send_raw(b"\x00\x00\x00\x05garbage")
                cli.shutdown_write()
                # The error reply arrives before the close.
                while True:
                    try:
                        cli.read_response()
                    except Exception:
                        break
            assert dump_path.exists()
        parsed = parse_dump(dump_path.read_text())
        assert any(
            e["kind"] == "wire_error" for e in parsed["events"]
        )


class TestFuzzTraceCases:
    """The fuzzer's trace mutations stay within the service contract."""

    def test_fuzz_run_with_trace_cases_passes(self):
        from repro.service.fuzz import run_service_fuzz

        report = run_service_fuzz(seed=17, iters=60)
        assert report.ok, report.failures
        assert report.hangs == 0

    def test_trace_case_generators_cover_flag_paths(self):
        import random

        from repro.service.fuzz import (
            _case_trace_flag_on_malformed,
            _case_traced_probe,
            _case_traced_truncated,
        )

        rng = random.Random(5)
        for case in (
            _case_traced_probe,
            _case_trace_flag_on_malformed,
            _case_traced_truncated,
        ):
            data = case(rng)
            assert isinstance(data, bytes) and len(data) > 4

    def test_fuzz_failure_fetches_flight_dump(self, tmp_path):
        # fetch_flight_dump against a healthy daemon: the artifact hook.
        from repro.service.fuzz import fetch_flight_dump

        path = tmp_path / "fuzz-flight.jsonl"
        with ServerThread(ServiceConfig(port=0)) as address:
            with ServiceClient(*address) as cli:
                cli.request(OP_COMPRESS, "gzipish", b"warm" * 16)
            assert fetch_flight_dump(address, str(path)) is True
        parsed = parse_dump(path.read_text())
        assert parsed["meta"]["events"] >= 1
