"""Public-API surface tests: imports, dispatch, and docstrings."""

import importlib

import pytest

import repro
from repro.core import decompress_image
from repro.core.lat import CompressedImage


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.bitstream", "repro.entropy", "repro.baselines",
        "repro.core", "repro.core.samc", "repro.core.sadc",
        "repro.isa.mips", "repro.isa.x86", "repro.memory", "repro.hw",
        "repro.workloads", "repro.analysis",
    ])
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    @pytest.mark.parametrize("module", [
        "repro.core.samc.codec", "repro.core.sadc.mips",
        "repro.entropy.arith", "repro.memory.system",
        "repro.workloads.mips_gen", "repro.hw.midpoint",
    ])
    def test_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 40


class TestDecompressDispatch:
    def test_samc(self, mips_program):
        image = repro.samc_compress(mips_program)
        assert decompress_image(image) == mips_program

    def test_sadc(self, mips_program):
        image = repro.sadc_compress(mips_program, isa="mips")
        assert decompress_image(image) == mips_program

    def test_byte_huffman(self, mips_program):
        from repro.baselines.byte_huffman import ByteHuffmanCodec

        image = ByteHuffmanCodec().compress(mips_program)
        assert decompress_image(image) == mips_program

    def test_unknown_algorithm(self):
        image = CompressedImage("nope", 0, 32, [], 0)
        with pytest.raises(ValueError):
            decompress_image(image)


class TestPublicDocstrings:
    def test_every_public_core_callable_documented(self):
        import repro.core as core

        for name in core.__all__:
            obj = getattr(core, name)
            if callable(obj):
                assert obj.__doc__, f"repro.core.{name} lacks a docstring"
