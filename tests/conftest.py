"""Shared fixtures: small deterministic programs, reused across tests."""

from __future__ import annotations

import pytest

from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="session")
def mips_program() -> bytes:
    """A small synthetic MIPS binary (~350 instructions)."""
    return generate_benchmark("compress", "mips", scale=0.3, seed=7).code


@pytest.fixture(scope="session")
def mips_program_large() -> bytes:
    """A mid-size MIPS binary for statistics-sensitive tests."""
    return generate_benchmark("gcc", "mips", scale=0.5, seed=7).code


@pytest.fixture(scope="session")
def x86_program() -> bytes:
    """A small synthetic x86 binary."""
    return generate_benchmark("compress", "x86", scale=0.3, seed=7).code


@pytest.fixture(scope="session")
def x86_program_large() -> bytes:
    """A mid-size x86 binary."""
    return generate_benchmark("gcc", "x86", scale=0.5, seed=7).code
