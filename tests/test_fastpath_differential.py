"""Differential tests: fastpath kernels vs the reference oracles.

The reference implementations are the specification; every fastpath
kernel must match them bit for bit on *arbitrary* inputs, not just the
benchmark workloads.  Hypothesis drives random byte strings (plus the
adversarial shapes it likes: runs, near-periodic data, empty input)
through both paths — reference selected via the same ``REPRO_FASTPATH``
escape hatch users get, so the dispatch plumbing is exercised too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import lzss
from repro.baselines.lzw import _lzw_compress_reference, lzw_decompress
from repro.bitstream.io import BitReader, BitWriter
from repro.core.samc.codec import SamcCodec
from repro.core.samc.model import SamcModel
from repro.entropy.arith import quantize_probability
from repro.fastpath.lz_kernel import lzw_compress_fast, tokenize_fast
from repro.fastpath.samc_kernel import (
    CompiledSamcModel,
    train_model_fast,
)


# ---------------------------------------------------------------------------
# LZ kernels

lz_data = st.one_of(
    st.binary(max_size=600),
    # Highly repetitive inputs: long matches, self-overlap, chain churn.
    st.builds(
        lambda unit, reps, tail: unit * reps + tail,
        st.binary(min_size=1, max_size=8),
        st.integers(1, 120),
        st.binary(max_size=8),
    ),
)


@settings(max_examples=80, deadline=None)
@given(lz_data)
def test_lzss_tokenize_differential(data):
    assert tokenize_fast(data) == lzss._tokenize_reference(data)


@settings(max_examples=80, deadline=None)
@given(lz_data)
def test_lzw_differential(data):
    fast = lzw_compress_fast(data)
    assert fast == _lzw_compress_reference(data)
    assert lzw_decompress(fast) == data


def test_lzw_dictionary_reset_differential():
    """Enough distinct digrams to overflow the 16-bit dictionary."""
    rng = np.random.default_rng(42)
    data = rng.integers(0, 256, size=150_000, dtype=np.uint8).tobytes()
    assert lzw_compress_fast(data) == _lzw_compress_reference(data)


# ---------------------------------------------------------------------------
# Batched bit I/O vs bit-at-a-time

ops = st.lists(
    st.one_of(
        st.integers(0, 1).map(lambda b: ("bit", b)),
        st.tuples(st.integers(0, 40), st.integers(0, 2**40 - 1)).map(
            lambda t: ("bits", t[0], t[1] & ((1 << t[0]) - 1))
        ),
        st.binary(max_size=12).map(lambda d: ("bytes", d)),
    ),
    max_size=30,
)


@settings(max_examples=100, deadline=None)
@given(ops)
def test_bitwriter_batched_matches_bitwise(sequence):
    batched = BitWriter()
    bitwise = BitWriter()
    for op in sequence:
        if op[0] == "bit":
            batched.write_bit(op[1])
            bitwise.write_bit(op[1])
        elif op[0] == "bits":
            _, width, value = op
            batched.write_bits(value, width)
            for shift in range(width - 1, -1, -1):
                bitwise.write_bit((value >> shift) & 1)
        else:
            batched.write_bytes(op[1])
            for byte in op[1]:
                for shift in range(7, -1, -1):
                    bitwise.write_bit((byte >> shift) & 1)
    assert len(batched) == len(bitwise)
    assert batched.getvalue() == bitwise.getvalue()


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=20), st.lists(st.integers(0, 19), max_size=12),
       st.booleans())
def test_bitreader_batched_matches_bitwise(data, widths, pad):
    batched = BitReader(data, pad=pad)
    bitwise = BitReader(data, pad=pad)
    for width in widths:
        try:
            expected = 0
            for _ in range(width):
                expected = (expected << 1) | bitwise.read_bit()
        except EOFError:
            with pytest.raises(EOFError):
                batched.read_bits(width)
            return
        assert batched.read_bits(width) == expected
        assert batched.bit_position == bitwise.bit_position


# ---------------------------------------------------------------------------
# SAMC kernels vs the object walk

def _random_words(draw_bytes, word_bits):
    word_bytes = word_bits // 8
    usable = len(draw_bytes) - len(draw_bytes) % word_bytes
    return [
        int.from_bytes(draw_bytes[i : i + word_bytes], "big")
        for i in range(0, usable, word_bytes)
    ]


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=4, max_size=320), st.integers(0, 3),
       st.sampled_from([1, 2, 4]))
def test_samc_kernel_differential(data, connect_bits, words_per_block):
    """Training counts, coded blocks, and decode all match the reference."""
    words = _random_words(data, 32)
    if not words:
        return
    streams = [[0, 1, 2, 3, 4, 5, 6, 7], [8, 9, 10, 11, 12, 13, 14, 15],
               [16, 17, 18, 19, 20, 21, 22, 23], [24, 25, 26, 27, 28, 29, 30, 31]]

    reference = SamcModel(32, streams, connect_bits)
    blocks = [
        words[i : i + words_per_block]
        for i in range(0, len(words), words_per_block)
    ]
    for block in blocks:
        reference.train_block(block)
    fast = SamcModel(32, streams, connect_bits)
    train_model_fast(fast, words, words_per_block)
    for ref_stream, fast_stream in zip(reference.stream_models, fast.stream_models):
        assert (ref_stream._counts == fast_stream._counts).all()

    reference.freeze(quantize_probability)
    fast.freeze(quantize_probability)
    compiled = CompiledSamcModel(fast)

    from repro.entropy.arith import BinaryArithmeticDecoder, BinaryArithmeticEncoder

    expected_payloads = []
    for block in blocks:
        encoder = BinaryArithmeticEncoder()
        reference.walk_encode(block, encoder.encode_bit)
        expected_payloads.append(encoder.finish())
    assert compiled.encode_blocks(words, words_per_block) == expected_payloads

    for block, payload in zip(blocks, expected_payloads):
        decoder = BinaryArithmeticDecoder(payload)
        assert reference.walk_decode(len(block), decoder.decode_bit) == block
        assert compiled.decode_block(payload, len(block)) == block


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=8, max_size=256).map(lambda b: b[: len(b) - len(b) % 4]))
def test_samc_codec_escape_hatch_differential(data):
    """The codec-level dispatch produces identical images either way."""
    import os

    if not data:
        return
    saved = os.environ.get("REPRO_FASTPATH")
    try:
        os.environ["REPRO_FASTPATH"] = "0"
        reference = SamcCodec.for_mips(block_size=16).compress(data)
        os.environ["REPRO_FASTPATH"] = "1"
        fast = SamcCodec.for_mips(block_size=16).compress(data)
    finally:
        if saved is None:
            os.environ.pop("REPRO_FASTPATH", None)
        else:
            os.environ["REPRO_FASTPATH"] = saved
    assert reference.blocks == fast.blocks
    assert SamcCodec.for_mips(block_size=16).decompress(fast) == data
