"""Tests for the structural IA-32 model (length decoding, grammar)."""

import pytest

from repro.isa.x86.formats import (
    X86DecodeError,
    X86Instruction,
    decode_all,
    decode_one,
    modrm_fields,
)


class TestDecodeOne:
    def test_single_byte_nop(self):
        instr = decode_one(b"\x90")
        assert instr.opcode == b"\x90"
        assert instr.length == 1
        assert instr.modrm is None

    def test_push_ebp_mov_ebp_esp(self):
        # The canonical prologue: 55 / 89 E5.
        code = b"\x55\x89\xe5"
        instrs = decode_all(code)
        assert [i.length for i in instrs] == [1, 2]
        assert instrs[1].modrm == 0xE5

    def test_mod01_disp8(self):
        # mov eax, [ebp-4]  => 8B 45 FC
        instr = decode_one(b"\x8b\x45\xfc")
        assert instr.modrm == 0x45
        assert instr.disp == b"\xfc"
        assert instr.length == 3

    def test_mod10_disp32(self):
        instr = decode_one(b"\x8b\x85\x00\x01\x00\x00")
        assert instr.disp == b"\x00\x01\x00\x00"
        assert instr.length == 6

    def test_mod00_rm101_disp32(self):
        # mov eax, [absolute]
        instr = decode_one(b"\x8b\x05\x44\x33\x22\x11")
        assert instr.disp == b"\x44\x33\x22\x11"

    def test_sib_byte(self):
        # mov eax, [esp]  => 8B 04 24
        instr = decode_one(b"\x8b\x04\x24")
        assert instr.sib == 0x24
        assert instr.length == 3

    def test_sib_base101_mod00_disp32(self):
        # SIB with base=101 and mod=00 forces disp32.
        instr = decode_one(b"\x8b\x04\x8d\x01\x02\x03\x04")
        assert instr.sib == 0x8D
        assert len(instr.disp) == 4

    def test_imm32(self):
        instr = decode_one(b"\xb8\x78\x56\x34\x12")  # mov eax, imm32
        assert instr.imm == b"\x78\x56\x34\x12"
        assert instr.length == 5

    def test_operand_size_prefix_shrinks_imm(self):
        instr = decode_one(b"\x66\xb8\x34\x12")  # mov ax, imm16
        assert instr.prefixes == b"\x66"
        assert instr.imm == b"\x34\x12"
        assert instr.length == 4

    def test_two_byte_opcode(self):
        instr = decode_one(b"\x0f\xb6\xc0")  # movzx eax, al
        assert instr.opcode == b"\x0f\xb6"
        assert instr.modrm == 0xC0

    def test_jcc_rel32(self):
        instr = decode_one(b"\x0f\x84\x00\x01\x00\x00")
        assert instr.imm == b"\x00\x01\x00\x00"

    def test_group3_test_has_imm(self):
        # F7 /0 = test r/m32, imm32
        instr = decode_one(b"\xf7\xc0\x01\x00\x00\x00")
        assert len(instr.imm) == 4

    def test_group3_neg_has_no_imm(self):
        # F7 /3 = neg r/m32
        instr = decode_one(b"\xf7\xd8")
        assert instr.imm == b""
        assert instr.length == 2

    def test_ret_imm16(self):
        instr = decode_one(b"\xc2\x08\x00")
        assert instr.imm == b"\x08\x00"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(X86DecodeError):
            decode_one(b"\xf4")  # hlt: not in the modelled subset

    def test_truncated_modrm_rejected(self):
        with pytest.raises(X86DecodeError):
            decode_one(b"\x8b")

    def test_truncated_imm_rejected(self):
        with pytest.raises(X86DecodeError):
            decode_one(b"\xb8\x01\x02")

    def test_offset_parameter(self):
        code = b"\x90\x55"
        assert decode_one(code, 1).opcode == b"\x55"


class TestEncode:
    def test_encode_inverts_decode(self):
        samples = [
            b"\x55", b"\x89\xe5", b"\x8b\x45\xfc", b"\x8b\x04\x24",
            b"\xb8\x01\x00\x00\x00", b"\x0f\xb6\xc0", b"\xc3",
            b"\x66\xb8\x34\x12", b"\x83\xec\x18",
        ]
        for raw in samples:
            assert decode_one(raw).encode() == raw

    def test_length_property(self):
        instr = X86Instruction(opcode=b"\x8b", modrm=0x45, disp=b"\xfc")
        assert instr.length == 3
        assert len(instr.encode()) == 3


def test_decode_all_covers_whole_image(x86_program):
    instrs = decode_all(x86_program)
    assert sum(i.length for i in instrs) == len(x86_program)
    assert b"".join(i.encode() for i in instrs) == x86_program


def test_modrm_fields():
    assert modrm_fields(0xE5) == (3, 4, 5)
    assert modrm_fields(0x45) == (1, 0, 5)
