"""Tests for x86 SADC: byte-string dictionary, streams, codec."""

import pytest

from repro.core.sadc.x86 import X86Dictionary, X86SadcCodec, parse_block
from repro.resilience.errors import CATEGORY_BUDGET, CorruptedStreamError
from repro.core.sadc.x86_reassemble import (
    reassemble_instruction,
    split_opcode_entry,
)


class TestSplitOpcodeEntry:
    def test_plain(self):
        assert split_opcode_entry(b"\x8b") == (b"", b"\x8b")

    def test_two_byte(self):
        assert split_opcode_entry(b"\x0f\xb6") == (b"", b"\x0f\xb6")

    def test_prefixed(self):
        assert split_opcode_entry(b"\x66\xb8") == (b"\x66", b"\xb8")

    def test_prefixed_two_byte(self):
        assert split_opcode_entry(b"\x66\x0f\xb7") == (b"\x66", b"\x0f\xb7")


class TestReassemble:
    def test_modrm_and_disp(self):
        modrm_queue = [0x45]
        imm_queue = [b"\xfc"]
        instruction = reassemble_instruction(
            b"\x8b", lambda: modrm_queue.pop(0),
            lambda n: imm_queue.pop(0)[:n],
        )
        assert instruction.encode() == b"\x8b\x45\xfc"

    def test_no_operand_instruction(self):
        instruction = reassemble_instruction(
            b"\xc3", lambda: pytest.fail("no ModRM expected"),
            lambda n: pytest.fail("no imm expected"),
        )
        assert instruction.encode() == b"\xc3"

    def test_sib_pull(self):
        queue = [0x04, 0x24]
        instruction = reassemble_instruction(
            b"\x8b", lambda: queue.pop(0), lambda n: b"",
        )
        assert instruction.encode() == b"\x8b\x04\x24"


class TestDictionary:
    def test_longest_match_first(self):
        dictionary = X86Dictionary()
        dictionary.add((b"\x55",))
        long = dictionary.add((b"\x55", b"\x89"))
        tokens = parse_block(dictionary, [b"\x55", b"\x89"])
        assert tokens == [long]

    def test_capacity(self):
        dictionary = X86Dictionary(max_entries=1)
        dictionary.add((b"\x90",))
        with pytest.raises(ValueError):
            dictionary.add((b"\xc3",))

    def test_parse_requires_singles(self):
        with pytest.raises(ValueError):
            parse_block(X86Dictionary(), [b"\x90"])


class TestCodec:
    def test_roundtrip(self, x86_program):
        codec = X86SadcCodec()
        image = codec.compress(x86_program)
        assert codec.decompress(image) == x86_program

    def test_roundtrip_large(self, x86_program_large):
        codec = X86SadcCodec()
        image = codec.compress(x86_program_large)
        assert codec.decompress(image) == x86_program_large

    def test_random_access_blocks(self, x86_program):
        codec = X86SadcCodec()
        image = codec.compress(x86_program)
        # Blocks contain whole instructions assigned by start address;
        # concatenating per-block output must reproduce the program.
        pieces = [
            codec.decompress_block(image, i)
            for i in range(image.block_count())
        ]
        assert b"".join(pieces) == x86_program
        counts = image.metadata["block_instruction_counts"]
        assert len(pieces) == len(counts)

    def test_forged_instruction_count_budget_checked(self, x86_program):
        # block_instruction_counts is wire data (a u16 per block in the
        # archive); a forged count must hit the budget check up front,
        # not churn the token loop until the reader runs dry.
        codec = X86SadcCodec()
        image = codec.compress(x86_program)
        counts = list(image.metadata["block_instruction_counts"])
        counts[0] = 50_000
        image.metadata["block_instruction_counts"] = counts
        with pytest.raises(CorruptedStreamError) as excinfo:
            codec.decompress_block(image, 0)
        assert excinfo.value.category == CATEGORY_BUDGET

    def test_dictionary_capped(self, x86_program_large):
        image = X86SadcCodec().compress(x86_program_large)
        assert len(image.metadata["dictionary"]) <= 256

    def test_compresses(self, x86_program_large):
        image = X86SadcCodec().compress(x86_program_large)
        assert image.payload_ratio < 0.8

    def test_groups_improve_over_singles(self, x86_program_large):
        rich = X86SadcCodec().compress(x86_program_large)
        plain = X86SadcCodec(max_cycles=0).compress(x86_program_large)
        assert rich.payload_ratio <= plain.payload_ratio

    def test_empty_program(self):
        codec = X86SadcCodec()
        image = codec.compress(b"")
        assert codec.decompress(image) == b""
