"""Tests for the standalone on-ROM image format."""

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.sadc import MipsSadcCodec, X86SadcCodec, sadc_decompress
from repro.core.samc import SamcCodec, samc_decompress
from repro.core.serialize import (
    SerializationError,
    deserialize_image,
    load_image,
    save_image,
    serialize_image,
)


class TestSamcRoundtrip:
    @pytest.mark.parametrize("mode", ["full", "full16", "pow2"])
    def test_all_probability_modes(self, mips_program, mode):
        codec = SamcCodec.for_mips(probability_mode=mode)
        image = codec.compress(mips_program)
        restored = deserialize_image(serialize_image(image))
        assert samc_decompress(restored) == mips_program

    def test_probability_tables_bit_exact(self, mips_program):
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        restored = deserialize_image(serialize_image(image))
        original_model = image.metadata["model"]
        restored_model = restored.metadata["model"]
        for a, b in zip(original_model.stream_models,
                        restored_model.stream_models):
            assert (a.frozen_table == b.frozen_table).all()

    def test_byte_mode(self, x86_program):
        codec = SamcCodec.for_bytes()
        image = codec.compress(x86_program)
        restored = deserialize_image(serialize_image(image))
        assert samc_decompress(restored) == x86_program

    def test_header_fields_preserved(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        restored = deserialize_image(serialize_image(image))
        assert restored.original_size == image.original_size
        assert restored.block_size == image.block_size
        assert restored.model_bytes == image.model_bytes
        assert restored.blocks == image.blocks
        assert restored.compression_ratio == image.compression_ratio


class TestSadcRoundtrip:
    def test_mips(self, mips_program):
        image = MipsSadcCodec().compress(mips_program)
        restored = deserialize_image(serialize_image(image))
        assert sadc_decompress(restored) == mips_program

    def test_mips_with_bindings(self, mips_program_large):
        image = MipsSadcCodec().compress(mips_program_large)
        has_bindings = any(
            e.bound_regs or e.bound_imm16 or e.bound_imm26
            for e in image.metadata["dictionary"].entries
        )
        assert has_bindings  # the serialiser must carry bindings
        restored = deserialize_image(serialize_image(image))
        assert sadc_decompress(restored) == mips_program_large

    def test_x86(self, x86_program):
        image = X86SadcCodec().compress(x86_program)
        restored = deserialize_image(serialize_image(image))
        assert sadc_decompress(restored) == x86_program


class TestByteHuffmanRoundtrip:
    def test_roundtrip(self, mips_program):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program)
        restored = deserialize_image(serialize_image(image))
        assert codec.decompress(restored) == mips_program


class TestFileIO:
    def test_save_and_load(self, mips_program, tmp_path):
        image = SamcCodec.for_mips().compress(mips_program)
        path = str(tmp_path / "program.rcc")
        written = save_image(image, path)
        assert written > 0
        restored = load_image(path)
        assert samc_decompress(restored) == mips_program

    def test_serialized_size_comparable_to_accounting(self, mips_program_large):
        # The real byte format should land near the idealised accounting
        # (payload + model + LAT) — within ~30%.
        image = SamcCodec.for_mips().compress(mips_program_large)
        data = serialize_image(image)
        assert len(data) < image.total_bytes * 1.3


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            deserialize_image(b"XXXX" + b"\x00" * 32)

    def test_truncated(self, mips_program):
        data = serialize_image(SamcCodec.for_mips().compress(mips_program))
        with pytest.raises(SerializationError):
            deserialize_image(data[: len(data) // 2])

    def test_unknown_algorithm_id(self):
        with pytest.raises(SerializationError):
            deserialize_image(b"RCC1" + b"\x09" + b"\x00" * 14)
