"""Tests for the experiment drivers and table formatting."""

import pytest

from repro.analysis.experiments import (
    average_ratios,
    compression_ratio,
    run_benchmark,
    run_suite,
)
from repro.analysis.tables import format_averages, format_mapping, format_suite
from repro.workloads.suite import generate_benchmark


class TestCompressionRatio:
    @pytest.mark.parametrize("algorithm", ["compress", "gzip", "huffman",
                                           "SAMC", "SADC"])
    def test_all_algorithms_run_mips(self, mips_program, algorithm):
        # The fixture program is tiny (~1.4 KB), so model tables can push
        # the honest total ratio above 1; only sanity-check the range.
        ratio = compression_ratio(mips_program, algorithm, "mips")
        assert 0.0 < ratio < 3.0

    @pytest.mark.parametrize("algorithm", ["huffman", "SAMC", "SADC"])
    def test_all_algorithms_run_x86(self, x86_program, algorithm):
        # Tiny fixture: model tables dominate, so only sanity-check range.
        ratio = compression_ratio(x86_program, algorithm, "x86")
        assert 0.0 < ratio < 3.0

    def test_unknown_algorithm(self, mips_program):
        with pytest.raises(ValueError):
            compression_ratio(mips_program, "zip", "mips")

    def test_empty_code(self):
        assert compression_ratio(b"", "SAMC", "mips") == 1.0


class TestSuite:
    def test_run_benchmark_row(self):
        program = generate_benchmark("compress", "mips", scale=0.2)
        row = run_benchmark(program, algorithms=("compress", "huffman"))
        assert row.benchmark == "compress"
        assert set(row.ratios) == {"compress", "huffman"}

    def test_run_suite_subset(self):
        rows = run_suite("mips", algorithms=("huffman",), scale=0.15,
                         names=("compress", "tomcatv"))
        assert [r.benchmark for r in rows] == ["compress", "tomcatv"]

    def test_average(self):
        rows = run_suite("mips", algorithms=("huffman",), scale=0.15,
                         names=("compress", "tomcatv"))
        averages = average_ratios(rows)
        manual = (rows[0].ratios["huffman"] + rows[1].ratios["huffman"]) / 2
        assert averages["huffman"] == pytest.approx(manual)

    def test_average_empty(self):
        assert average_ratios([]) == {}


class TestFormatting:
    def test_format_suite(self):
        rows = run_suite("mips", algorithms=("huffman",), scale=0.1,
                         names=("compress",))
        text = format_suite(rows, title="T")
        assert "T" in text and "compress" in text and "average" in text

    def test_format_suite_empty(self):
        assert format_suite([]) == "(no results)"

    def test_format_averages(self):
        text = format_averages({"mips": {"SAMC": 0.6}, "x86": {"SAMC": 0.7}})
        assert "SAMC" in text and "mips" in text and "0.600" in text

    def test_format_mapping(self):
        text = format_mapping({"ratio": 0.5, "name": "gcc"}, title="X")
        assert "0.5000" in text and "gcc" in text
