"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ratio_defaults(self):
        args = build_parser().parse_args(["ratio"])
        assert args.benchmark == "gcc"
        assert args.algorithm == "SAMC"

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig1"])


class TestCommands:
    def test_ratio(self, capsys):
        assert main(["ratio", "--benchmark", "compress", "--scale", "0.2",
                     "--algorithm", "huffman"]) == 0
        out = capsys.readouterr().out
        assert "compress/mips huffman" in out
        assert "ratio" in out

    def test_suite_subset(self, capsys):
        assert main(["suite", "--scale", "0.15", "--algorithms", "huffman",
                     "--benchmarks", "compress", "tomcatv"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "tomcatv" in out and "average" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--benchmark", "compress", "--scale", "0.3",
                     "--algorithm", "SAMC", "--fetches", "5000"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_compress_decompress_file(self, capsys, tmp_path):
        source = tmp_path / "firmware.bin"
        packed = tmp_path / "firmware.rcc"
        restored = tmp_path / "restored.bin"
        payload = bytes(range(256)) * 40
        source.write_bytes(payload)
        assert main(["compress-file", str(source), str(packed)]) == 0
        assert main(["decompress-file", str(packed), str(restored)]) == 0
        assert restored.read_bytes() == payload
        out = capsys.readouterr().out
        assert "restored" in out

    def test_figure_fig9_small(self, capsys, monkeypatch):
        # Shrink the suite so the smoke test stays fast.
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "run_suite_with_report",
            lambda isa, algorithms, **kw: _tiny_suite(isa, algorithms),
        )
        assert main(["figure", "fig9"]) == 0
        assert "Figure 9" in capsys.readouterr().out


def _tiny_suite(isa, algorithms):
    from repro.analysis.experiments import run_suite_with_report

    return run_suite_with_report(isa, algorithms, scale=0.1, names=("compress",))
