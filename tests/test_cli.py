"""Smoke tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ratio_defaults(self):
        args = build_parser().parse_args(["ratio"])
        assert args.benchmark == "gcc"
        assert args.algorithm == "SAMC"

    def test_figure_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig1"])


class TestCommands:
    def test_ratio(self, capsys):
        assert main(["ratio", "--benchmark", "compress", "--scale", "0.2",
                     "--algorithm", "huffman"]) == 0
        out = capsys.readouterr().out
        assert "compress/mips huffman" in out
        assert "ratio" in out

    def test_suite_subset(self, capsys):
        assert main(["suite", "--scale", "0.15", "--algorithms", "huffman",
                     "--benchmarks", "compress", "tomcatv"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "tomcatv" in out and "average" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--benchmark", "compress", "--scale", "0.3",
                     "--algorithm", "SAMC", "--fetches", "5000"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_compress_decompress_file(self, capsys, tmp_path):
        source = tmp_path / "firmware.bin"
        packed = tmp_path / "firmware.rcc"
        restored = tmp_path / "restored.bin"
        payload = bytes(range(256)) * 40
        source.write_bytes(payload)
        assert main(["compress-file", str(source), str(packed)]) == 0
        assert main(["decompress-file", str(packed), str(restored)]) == 0
        assert restored.read_bytes() == payload
        out = capsys.readouterr().out
        assert "restored" in out

    def test_suite_obs_flag_keeps_stdout_clean(self, capsys):
        args = ["suite", "--scale", "0.15", "--algorithms", "huffman",
                "--benchmarks", "compress"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--obs"]) == 0
        captured = capsys.readouterr()
        # Figure output is unchanged; the telemetry summary goes to stderr.
        assert captured.out == plain
        assert "category" in captured.err
        assert "pipeline.run" in captured.err

    def test_figure_fig9_small(self, capsys, monkeypatch):
        # Shrink the suite so the smoke test stays fast.
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "run_suite_with_report",
            lambda isa, algorithms, **kw: _tiny_suite(isa, algorithms),
        )
        assert main(["figure", "fig9"]) == 0
        assert "Figure 9" in capsys.readouterr().out


def _tiny_suite(isa, algorithms):
    from repro.analysis.experiments import run_suite_with_report

    return run_suite_with_report(isa, algorithms, scale=0.1, names=("compress",))


class TestStatsCommand:
    ARGS = ["stats", "--scale", "0.15", "--algorithms", "huffman", "compress",
            "--benchmarks", "compress"]

    def test_text_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "compress/mips/huffman" in out
        assert "compress/mips/compress" in out
        assert "total" in out
        assert "pipeline.run" in out  # span tree follows the bit tables

    def test_json_schema_and_accounting(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1
        cell = document["benchmarks"]["compress/mips/huffman"]
        assert cell["total_bits"] == sum(cell["categories"].values())
        assert cell["total_bytes"] == (cell["total_bits"] + 7) // 8
        assert any(path.startswith("pipeline.run") for path in document["spans"])


class TestBenchDiff:
    @staticmethod
    def _snapshot(path, results):
        path.write_text(json.dumps({"results": results}))
        return str(path)

    def test_missing_benchmark_fails(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json",
                             {"a": {"median_ns": 100}, "b": {"median_ns": 100}})
        new = self._snapshot(tmp_path / "new.json", {"a": {"median_ns": 100}})
        assert main(["bench-diff", old, new]) == 1
        captured = capsys.readouterr()
        assert "<-- MISSING" in captured.out
        assert "missing" in captured.err

    def test_regression_fails(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json", {"a": {"median_ns": 100}})
        new = self._snapshot(tmp_path / "new.json", {"a": {"median_ns": 200}})
        assert main(["bench-diff", old, new]) == 1
        assert "<-- REGRESSION" in capsys.readouterr().out

    def test_clean_diff_passes(self, tmp_path, capsys):
        old = self._snapshot(tmp_path / "old.json", {"a": {"median_ns": 100}})
        new = self._snapshot(tmp_path / "new.json",
                             {"a": {"median_ns": 101}, "extra": {"median_ns": 5}})
        assert main(["bench-diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "only in" in out
