"""Golden compressed-output vectors: bit-exactness pinned forever.

The hex blobs and digests below were produced by the *reference*
implementations (``REPRO_FASTPATH=0``) on a fixed-seed workload
(``generate_benchmark("compress", "mips", scale=0.1, seed=1998)``).
Every test asserts against them under **both** ``REPRO_FASTPATH``
settings, so three properties are pinned at once:

1. the reference coders never drift from their historical output,
2. the fastpath kernels never drift from the reference,
3. the workload generator stays deterministic.

If an intentional format change ever breaks these, regenerate the
vectors with the reference path *and* bump
:data:`repro.fastpath.FASTPATH_VERSION` (or ``CODEC_SCHEMA_VERSION``)
so cached pipeline results are invalidated alongside.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.baselines.gzipish import gzipish_compress
from repro.baselines.lzw import lzw_compress
from repro.core.sadc import sadc_compress
from repro.core.samc import SamcCodec
from repro.workloads.suite import generate_benchmark

# -- the fixed-seed workload ------------------------------------------------

WORKLOAD_BYTES = 512

# First 128 bytes of the workload: small enough to check in the full
# compressed payload, byte for byte.
TINY_BYTES = 128

SAMC_TINY = (
    "3e2281d20c50ec64dee2594608b5686609f7f71f0c684f2a5ed0076868acfab9"
    "cb3519bc9f94cc2125fe63"
)
SAMC_BLOCK_LENGTHS = (10, 10, 12, 11)

SADC_TINY = (
    "475f2b8977010455e8bb80822ae1ec3f99002ae109dca867b91e7cf871ecfaee"
    "78208aa86e18"
)
SADC_BLOCK_LENGTHS = (9, 9, 10, 10)

GZIPISH_TINY = (
    "1800628000280003000030000000000000000000018000000530000300003000"
    "0000000000030000000c00180030000000000000000000000003000000000000"
    "0000000300000000000000000000000000000000000000001804000000000000"
    "0000000000000018000000000004318000000000000010060000000000000000"
    "0000300000000000000000003000000000300000000030000000000000000006"
    "30c0601800300003140000000000000000000000000001806018c20000000000"
    "000000000008375b2ea295cc518de26461819b85dc4e675c6aedff5a1fe84783"
    "0aa4dc3cafc95e538deba07783e5ef3b3e6fb0"
)

LZW_TINY = (
    "0000008013af5fed057afc002c57ac0002846970001047af4006c84800080024"
    "3a04311000f21b0f8e45215178cc6e251e22c8225228b462351c1e23e142847c"
    "185901000c006e00002202ff78414000c8a8215eb18b47e20a589c562e4297c9"
    "e940"
)

# SHA-256 of the compressed output over the full 512-byte workload.
SAMC_FULL_DIGEST = "e24723678ed1e0869ddf1abd6a2477184b27152d765734e1fe4a259620d9f4b3"
SADC_FULL_DIGEST = "91543f6a4466122ec12fd3f25b45ddc1013e52728cbdd85c7d14418f0b6bb61e"
GZIPISH_FULL_DIGEST = "d8d66e0e684b06c525d9ff98298ba36ada0f67c59b728cc261611927391bf2cb"
LZW_FULL_DIGEST = "2e8da66834854a434ca37ee3d0a2531ea6ec95e4cb91237f0af8370e64160e8a"


@pytest.fixture(scope="module")
def workload() -> bytes:
    code = generate_benchmark("compress", "mips", scale=0.1, seed=1998).code
    assert len(code) == WORKLOAD_BYTES, "workload generator drifted"
    return code


@pytest.fixture(params=["0", "1"], ids=["reference", "fastpath"])
def coding_path(request, monkeypatch) -> str:
    """Run each golden check under both REPRO_FASTPATH settings."""
    monkeypatch.setenv("REPRO_FASTPATH", request.param)
    return request.param


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def test_samc_golden(coding_path, workload):
    tiny = workload[:TINY_BYTES]
    image = SamcCodec.for_mips().compress(tiny)
    assert tuple(len(block) for block in image.blocks) == SAMC_BLOCK_LENGTHS
    assert b"".join(image.blocks).hex() == SAMC_TINY
    full = SamcCodec.for_mips().compress(workload)
    assert _sha256(b"".join(full.blocks)) == SAMC_FULL_DIGEST
    assert SamcCodec.for_mips().decompress(full) == workload


def test_samc_golden_batch(coding_path, workload, monkeypatch):
    """Batch decode reproduces the pinned vectors under both paths.

    ``REPRO_BATCH_MIN=1`` forces the lockstep vectorised decoder even
    at this tiny block count, so the golden digests pin the batch
    engine too (under ``REPRO_FASTPATH=0`` the batch API is the
    reference per-block loop).
    """
    monkeypatch.setenv("REPRO_BATCH_MIN", "1")
    codec = SamcCodec.for_mips()
    full = codec.compress(workload)
    assert _sha256(b"".join(full.blocks)) == SAMC_FULL_DIGEST
    decoded = codec.decompress_blocks(full, range(full.block_count()))
    assert b"".join(decoded) == workload


def test_sadc_golden(coding_path, workload):
    tiny = workload[:TINY_BYTES]
    image = sadc_compress(tiny, isa="mips")
    assert tuple(len(block) for block in image.blocks) == SADC_BLOCK_LENGTHS
    assert b"".join(image.blocks).hex() == SADC_TINY
    full = sadc_compress(workload, isa="mips")
    assert _sha256(b"".join(full.blocks)) == SADC_FULL_DIGEST


def test_gzipish_golden(coding_path, workload):
    assert gzipish_compress(workload[:TINY_BYTES]).hex() == GZIPISH_TINY
    assert _sha256(gzipish_compress(workload)) == GZIPISH_FULL_DIGEST


def test_lzw_golden(coding_path, workload):
    assert lzw_compress(workload[:TINY_BYTES]).hex() == LZW_TINY
    assert _sha256(lzw_compress(workload)) == LZW_FULL_DIGEST
