"""Tests for the x86 three-stream split (opcode / ModRM+SIB / imm+disp)."""

from repro.isa.x86.formats import decode_all
from repro.isa.x86.streams import merge_streams, split_streams


def test_stream_partition_accounts_every_byte(x86_program):
    streams = split_streams(x86_program)
    total = (
        len(streams.opcodes) + len(streams.modrm_sib) + len(streams.imm_disp)
    )
    assert total == len(x86_program)


def test_merge_inverts_split(x86_program):
    assert merge_streams(split_streams(x86_program)) == x86_program


def test_merge_inverts_split_large(x86_program_large):
    assert merge_streams(split_streams(x86_program_large)) == x86_program_large


def test_handcrafted_sequence():
    code = (
        b"\x55"                      # push ebp
        b"\x89\xe5"                  # mov ebp, esp
        b"\x83\xec\x18"              # sub esp, 24
        b"\x8b\x45\xfc"              # mov eax, [ebp-4]
        b"\x8b\x04\x24"              # mov eax, [esp] (SIB)
        b"\x0f\xb6\xc0"              # movzx eax, al
        b"\xe8\x10\x00\x00\x00"      # call rel32
        b"\xc9"                      # leave
        b"\xc3"                      # ret
    )
    streams = split_streams(code)
    # opcode entries: one per instruction (no prefixes here).
    assert len(streams.opcode_lengths) == 9
    assert streams.opcode_lengths[5] == 2  # the 0F B6 two-byte opcode
    # ModRM+SIB: 89/83/8b/8b(+sib)/0fb6 -> 1+1+1+2+1 = 6 bytes.
    assert len(streams.modrm_sib) == 6
    # imm+disp: imm8 + disp8 + imm32 = 1 + 1 + 4 = 6 bytes.
    assert len(streams.imm_disp) == 6
    assert merge_streams(streams) == code


def test_prefixed_instruction_roundtrip():
    code = b"\x66\xb8\x34\x12" + b"\x90"
    streams = split_streams(code)
    assert streams.opcode_lengths[0] == 2  # prefix + opcode
    assert merge_streams(streams) == code


def test_bit_sizes(x86_program):
    streams = split_streams(x86_program)
    sizes = streams.bit_sizes()
    assert sizes["opcodes"] == 8 * len(streams.opcodes)
    assert streams.total_bits() == 8 * len(x86_program)


def test_empty_image():
    streams = split_streams(b"")
    assert merge_streams(streams) == b""


def test_opcode_stream_dominates(x86_program):
    # Sanity on stream proportions: opcode bytes are the most numerous
    # single stream for typical integer code.
    streams = split_streams(x86_program)
    n_instr = len(decode_all(x86_program))
    assert len(streams.opcode_lengths) == n_instr
    assert len(streams.opcodes) >= n_instr  # at least one byte each
