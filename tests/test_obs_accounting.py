"""Bit-accounting invariants and the free-when-off contract.

Two properties, both acceptance criteria for the telemetry layer:

1. **Exact accounting** — for every codec, the sum of the bit categories
   a compression attributes equals the compressed size in bits exactly
   (``total_bytes * 8`` for block codecs, ``len(payload) * 8`` for the
   file codecs).  No bit is unattributed, none is double-counted.
2. **Byte identity** — enabling telemetry never changes compressed
   output, on both the reference and fastpath coder paths.
"""

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
from repro.baselines.lzw import lzw_compress, lzw_decompress
from repro.core.samc.codec import samc_compress
from repro.core.sadc.mips import MipsSadcCodec
from repro.core.sadc.x86 import X86SadcCodec
from repro.obs import obs_session
from repro.pipeline import ExperimentJob, NullCache, run_pipeline
from repro.workloads.suite import generate_benchmark


@pytest.fixture(scope="module")
def mips_code():
    return generate_benchmark("compress", "mips", scale=0.15, seed=3).code


@pytest.fixture(scope="module")
def x86_code():
    return generate_benchmark("compress", "x86", scale=0.15, seed=3).code


def _scope_bits(recorder, scope=""):
    categories = recorder.snapshot()["bits"][scope]
    return categories, sum(categories.values())


class TestExactAccounting:
    """Per-scope totals equal the compressed size in bits."""

    def test_samc_total_matches_image(self, mips_code):
        with obs_session() as rec:
            image = samc_compress(mips_code)
            categories, total = _scope_bits(rec)
        assert total == image.total_bytes * 8
        # Per-stream payload bits plus the structural categories.
        assert {"model", "lat", "flush"} <= set(categories)
        assert any(name.startswith("stream") for name in categories)

    def test_sadc_mips_total_matches_image(self, mips_code):
        with obs_session() as rec:
            image = MipsSadcCodec().compress(mips_code)
            categories, total = _scope_bits(rec)
        assert total == image.total_bytes * 8
        assert {"tokens", "model.dictionary", "model.tables", "lat"} <= set(
            categories
        )

    def test_sadc_x86_total_matches_image(self, x86_code):
        with obs_session() as rec:
            image = X86SadcCodec().compress(x86_code)
            categories, total = _scope_bits(rec)
        assert total == image.total_bytes * 8
        assert {"tokens", "model.dictionary", "lat"} <= set(categories)

    def test_byte_huffman_total_matches_image(self, mips_code):
        with obs_session() as rec:
            image = ByteHuffmanCodec().compress(mips_code)
            _, total = _scope_bits(rec)
        assert total == image.total_bytes * 8

    def test_gzipish_total_matches_payload(self, mips_code):
        with obs_session() as rec:
            payload = gzipish_compress(mips_code)
            categories, total = _scope_bits(rec)
        assert total == len(payload) * 8
        assert {"tables", "literals", "eob"} <= set(categories)

    def test_lzw_total_matches_payload(self, mips_code):
        with obs_session() as rec:
            payload = lzw_compress(mips_code)
            categories, total = _scope_bits(rec)
        assert total == len(payload) * 8
        assert categories["header"] == 32

    def test_pipeline_scope_totals_match_bytes_out(self):
        jobs = [
            ExperimentJob("compress", "mips", algorithm, scale=0.15, seed=3)
            for algorithm in ("compress", "gzip", "huffman", "SAMC")
        ]
        with obs_session() as rec:
            report = run_pipeline(jobs, cache=NullCache())
            bits = rec.snapshot()["bits"]
        assert report.telemetry is not None
        for result in report.results:
            job = result.job
            scope = f"{job.benchmark}/{job.isa}/{job.algorithm}"
            assert sum(bits[scope].values()) == result.bytes_out * 8


@pytest.mark.parametrize("fastpath", ["0", "1"])
class TestByteIdentity:
    """Telemetry on vs off produces bit-identical compressed output."""

    @pytest.fixture(autouse=True)
    def _pin_fastpath(self, monkeypatch, fastpath):
        monkeypatch.setenv("REPRO_FASTPATH", fastpath)

    @staticmethod
    def _image_state(image):
        return (image.blocks, image.model_bytes, image.original_size)

    def test_samc(self, mips_code):
        plain = samc_compress(mips_code)
        with obs_session():
            instrumented = samc_compress(mips_code)
        assert self._image_state(plain) == self._image_state(instrumented)

    def test_sadc_mips(self, mips_code):
        plain = MipsSadcCodec().compress(mips_code)
        with obs_session():
            instrumented = MipsSadcCodec().compress(mips_code)
        assert self._image_state(plain) == self._image_state(instrumented)

    def test_sadc_x86(self, x86_code):
        plain = X86SadcCodec().compress(x86_code)
        with obs_session():
            instrumented = X86SadcCodec().compress(x86_code)
        assert self._image_state(plain) == self._image_state(instrumented)

    def test_byte_huffman(self, mips_code):
        plain = ByteHuffmanCodec().compress(mips_code)
        with obs_session():
            instrumented = ByteHuffmanCodec().compress(mips_code)
        assert self._image_state(plain) == self._image_state(instrumented)

    def test_gzipish_round_trip(self, mips_code):
        plain = gzipish_compress(mips_code)
        with obs_session():
            instrumented = gzipish_compress(mips_code)
        assert plain == instrumented
        assert gzipish_decompress(instrumented) == mips_code

    def test_lzw_round_trip(self, mips_code):
        plain = lzw_compress(mips_code)
        with obs_session():
            instrumented = lzw_compress(mips_code)
        assert plain == instrumented
        assert lzw_decompress(instrumented) == mips_code
