"""Tests for the decoder gate/storage cost models."""

from repro.hw.cost import SadcDecoderCost, SamcDecoderCost, compare_decoders


class TestSamcCost:
    def _cost(self, **kwargs):
        kwargs.setdefault("probability_count", 4 * 255 * 2)
        return SamcDecoderCost(**kwargs)

    def test_fifteen_midpoint_units_for_nibble(self):
        assert self._cost(bits_per_cycle=4).midpoint_units == 15

    def test_probability_memory(self):
        cost = self._cost(probability_bits=8)
        assert cost.probability_memory_bits == 4 * 255 * 2 * 8

    def test_multiplier_free_smaller(self):
        full = self._cost(multiplier_free=False)
        shift = self._cost(multiplier_free=True)
        assert shift.logic_gates < full.logic_gates

    def test_wider_nibble_costs_more_logic(self):
        narrow = self._cost(bits_per_cycle=2)
        wide = self._cost(bits_per_cycle=4)
        assert wide.logic_gates > narrow.logic_gates

    def test_cycles_per_block(self):
        cost = self._cost(bits_per_cycle=4)
        assert cost.cycles_per_block(32) == 64

    def test_total_is_sum(self):
        cost = self._cost()
        assert cost.total_gates == cost.logic_gates + cost.memory_gates


class TestSadcCost:
    def _cost(self, **kwargs):
        kwargs.setdefault("dictionary_bits", 256 * 24)
        return SadcDecoderCost(**kwargs)

    def test_table_memory_includes_side_tables(self):
        cost = self._cost()
        assert cost.table_memory_bits > cost.dictionary_bits

    def test_instruction_generator_cost_optional(self):
        mips = self._cost(needs_instruction_generator=True)
        x86 = self._cost(needs_instruction_generator=False)
        assert mips.logic_gates > x86.logic_gates

    def test_cycles_per_block(self):
        cost = self._cost()
        assert cost.cycles_per_block(32) == 16  # 8 instructions x 2


class TestComparison:
    def test_compare_structure(self):
        table = compare_decoders(
            SamcDecoderCost(probability_count=2040),
            SadcDecoderCost(dictionary_bits=256 * 24),
        )
        assert set(table) == {"SAMC", "SADC"}
        for row in table.values():
            assert {"memory_bits", "logic_gates", "total_gates",
                    "cycles_per_32B_block"} <= set(row)

    def test_sadc_decoder_faster_per_block(self):
        table = compare_decoders(
            SamcDecoderCost(probability_count=2040),
            SadcDecoderCost(dictionary_bits=256 * 24),
        )
        assert (table["SADC"]["cycles_per_32B_block"]
                < table["SAMC"]["cycles_per_32B_block"])
