"""Service-level tests: the daemon, the wire contract, backpressure.

Everything runs against a real server — :class:`ServerThread` on an
ephemeral port — talking through real sockets, because the properties
under test (framing, interleaving, reply-before-close, busy signalling)
only exist on the wire.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.resilience.frame import wrap_frame
from repro.service import (
    STATUS_BUSY,
    STATUS_ERROR,
    STATUS_OK,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.client import recv_response
from repro.service.protocol import (
    OP_COMPRESS,
    Request,
    encode_request,
    pack_message,
)


@pytest.fixture(scope="module")
def service():
    """One daemon shared by the module; yields its (host, port)."""
    with ServerThread(ServiceConfig(port=0)) as address:
        yield address


@pytest.fixture()
def client(service):
    with ServiceClient(*service) as c:
        yield c


class TestRoundTrips:
    """Every wire codec round-trips through a real socket."""

    @pytest.mark.parametrize("codec", [
        "samc-mips", "sadc-mips", "samc-bytes",
        "byte-huffman", "lzw", "gzipish",
    ])
    def test_mips_payload(self, client, codec, mips_program):
        blob = client.compress(codec, mips_program)
        assert client.decompress(codec, blob) == mips_program

    def test_sadc_x86(self, client, x86_program):
        blob = client.compress("sadc-x86", x86_program)
        assert client.decompress("sadc-x86", blob) == x86_program

    def test_image_codec_output_is_an_archive(self, client, mips_program):
        # The service serves the on-ROM serialisation, not an ad-hoc one.
        blob = client.compress("samc-bytes", mips_program)
        from repro.core import decompress_image
        from repro.core.serialize import deserialize_image

        assert decompress_image(deserialize_image(blob)) == mips_program

    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_stats_schema(self, client, mips_program):
        client.compress("gzipish", mips_program)
        doc = client.stats()
        assert set(doc) == {
            "schema_version", "uptime_seconds", "codecs", "counters",
            "latency_us", "batch", "queue", "registry",
        }
        assert doc["schema_version"] == 3
        assert "gzipish" in doc["codecs"]
        assert doc["counters"]["service.requests.compress"] >= 1
        cell = doc["latency_us"]["compress"]
        assert set(cell) == {
            "count", "mean", "p50", "p95", "p99", "saturated",
        }
        assert 0 < cell["p50"] <= cell["p99"]
        assert cell["saturated"] is False
        assert doc["queue"]["capacity"] == 256
        assert doc["queue"]["inflight"] >= 0
        assert doc["registry"]["max_entries"] == 32


class TestErrors:
    """Malformed input earns a structured reply — never silence."""

    def test_unknown_codec(self, client):
        with pytest.raises(ServiceError) as info:
            client.compress("brotli", b"data")
        assert info.value.category == "invalid"
        assert "brotli" in str(info.value)
        # The connection survives a body-level error.
        assert client.health() == {"status": "ok"}

    def test_invalid_compress_input(self, client):
        # samc-mips requires word-aligned code; 3 bytes is not.
        with pytest.raises(ServiceError) as info:
            client.compress("samc-mips", b"\x01\x02\x03")
        assert info.value.status == STATUS_ERROR
        assert client.health() == {"status": "ok"}

    def test_corrupted_archive_decompress(self, client, mips_program):
        # Truncation is always detectable (unlike a mid-stream bit
        # flip, which an unframed archive may decode to wrong bytes).
        blob = client.compress("samc-bytes", mips_program)
        with pytest.raises(ServiceError) as info:
            client.decompress("samc-bytes", blob[: len(blob) // 2])
        assert info.value.status == STATUS_ERROR
        assert info.value.category != "internal"  # no leaked exception

    def _raw(self, service, data):
        """Send raw bytes, half-close, read one reply."""
        sock = socket.create_connection(service, timeout=10)
        try:
            sock.sendall(data)
            sock.shutdown(socket.SHUT_WR)
            return recv_response(sock)
        finally:
            sock.close()

    def test_garbage_bytes(self, service):
        response = self._raw(service, b"\xde\xad\xbe\xef" * 8)
        assert response.status == STATUS_ERROR

    def test_truncated_message(self, service):
        message = pack_message(encode_request(Request(
            op=OP_COMPRESS, request_id=9, codec="gzipish", payload=b"abc",
        )))
        response = self._raw(service, message[:-5])
        assert response.status == STATUS_ERROR
        assert response.category == "truncated"

    def test_oversized_length(self, service):
        response = self._raw(service, struct.pack(">I", 1 << 31) + b"\x00" * 8)
        assert response.status == STATUS_ERROR

    def test_bad_crc(self, service):
        message = bytearray(pack_message(encode_request(Request(
            op=OP_COMPRESS, request_id=9, codec="gzipish", payload=b"abc",
        ))))
        message[-1] ^= 0x01
        response = self._raw(service, bytes(message))
        assert response.status == STATUS_ERROR
        assert response.category == "checksum"

    def test_unknown_op(self, service):
        body = bytearray(encode_request(Request(
            op=OP_COMPRESS, request_id=9, codec="gzipish", payload=b"x",
        )))
        body[0] = 99
        response = self._raw(service, pack_message(bytes(body)))
        assert response.status == STATUS_ERROR
        assert response.category == "structure"

    def test_valid_frame_wrong_body(self, service):
        # A perfectly framed message whose body is not a request.
        data = struct.pack(">I", 14 + 3) + wrap_frame(b"zzz")
        response = self._raw(service, data)
        assert response.status == STATUS_ERROR


class TestConcurrency:
    """Interleaved clients each get their own answers."""

    def test_concurrent_clients(self, service, mips_program):
        errors = []

        def hammer(index: int) -> None:
            payload = mips_program[: 256 + 4 * index]
            try:
                with ServiceClient(*service) as c:
                    for _ in range(5):
                        blob = c.compress("gzipish", payload)
                        assert c.decompress("gzipish", blob) == payload
            except Exception as error:  # collected, not swallowed
                errors.append(f"client {index}: {error!r}")

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

    def test_pipelined_requests_one_connection(self, service):
        # Many requests written before any reply is read; every reply
        # must come back, matched by request id.
        sock = socket.create_connection(service, timeout=30)
        try:
            ids = list(range(1, 11))
            for request_id in ids:
                sock.sendall(pack_message(encode_request(Request(
                    op=OP_COMPRESS, request_id=request_id,
                    codec="gzipish", payload=b"payload-%d" % request_id,
                ))))
            seen = sorted(
                recv_response(sock).request_id for _ in ids
            )
            assert seen == ids
        finally:
            sock.close()


class TestBackpressure:
    """An overloaded server says `busy` instead of queueing unboundedly."""

    def test_inflight_cap_answers_busy(self, mips_program):
        config = ServiceConfig(port=0, max_inflight=1, workers=1)
        with ServerThread(config) as address:
            sock = socket.create_connection(address, timeout=30)
            try:
                # Pipeline many slow requests (each trains a distinct
                # SAMC model) so the first is still in flight when the
                # rest are read.
                count = 8
                for index in range(count):
                    payload = bytes([index]) * 4 + mips_program[:1024]
                    sock.sendall(pack_message(encode_request(Request(
                        op=OP_COMPRESS, request_id=index + 1,
                        codec="samc-bytes", payload=payload,
                    ))))
                statuses = [recv_response(sock).status for _ in range(count)]
            finally:
                sock.close()
            # Every request was answered; the cap turned the excess
            # into explicit busy replies, not silence.
            assert len(statuses) == count
            assert set(statuses) <= {STATUS_OK, STATUS_BUSY}
            assert STATUS_BUSY in statuses
            assert STATUS_OK in statuses

    def test_busy_reply_carries_category(self):
        config = ServiceConfig(port=0, max_inflight=1, workers=1)
        with ServerThread(config) as address:
            sock = socket.create_connection(address, timeout=30)
            try:
                for request_id in (1, 2, 3, 4):
                    sock.sendall(pack_message(encode_request(Request(
                        op=OP_COMPRESS, request_id=request_id,
                        codec="samc-bytes", payload=bytes(range(256)) * 8,
                    ))))
                responses = [recv_response(sock) for _ in range(4)]
            finally:
                sock.close()
            busy = [r for r in responses if r.status == STATUS_BUSY]
            assert busy
            assert all(r.category == "busy" for r in busy)


class TestReplyBeforeClose:
    def test_half_close_still_gets_reply(self, service, mips_program):
        # The client sends one request and immediately half-closes; the
        # server must still deliver the computed reply.
        sock = socket.create_connection(service, timeout=30)
        try:
            sock.sendall(pack_message(encode_request(Request(
                op=OP_COMPRESS, request_id=42,
                codec="samc-bytes", payload=mips_program[:1024],
            ))))
            sock.shutdown(socket.SHUT_WR)
            response = recv_response(sock)
            assert response.status == STATUS_OK
            assert response.request_id == 42
        finally:
            sock.close()


class TestVectorGrouping:
    """The dispatcher merges identical drained requests into one group."""

    def test_execute_group_replicates_ok_responses(self, mips_program):
        from repro.service.server import CodecService, _WorkItem

        service = CodecService()
        requests = [
            Request(op=OP_COMPRESS, request_id=index, codec="lzw",
                    payload=mips_program[:256])
            for index in range(1, 5)
        ]
        items = [
            _WorkItem(conn=None, request=request, accepted_ns=0)
            for request in requests
        ]
        responses = service._execute_group(items)
        assert [r.request_id for r in responses] == [1, 2, 3, 4]
        assert all(r.status == STATUS_OK for r in responses)
        # Identical requests, identical answers — and exactly the
        # scalar path's answer.
        solo = service._execute_group(items[:1])[0]
        assert {r.payload for r in responses} == {solo.payload}

    def test_execute_group_replicates_errors(self):
        from repro.service.protocol import OP_DECOMPRESS
        from repro.service.server import CodecService, _WorkItem

        service = CodecService()
        items = [
            _WorkItem(conn=None, accepted_ns=0, request=Request(
                op=OP_DECOMPRESS, request_id=index, codec="lzw",
                payload=b"\xff" * 40,
            ))
            for index in (7, 8, 9)
        ]
        responses = service._execute_group(items)
        assert [r.request_id for r in responses] == [7, 8, 9]
        assert len({(r.status, r.category) for r in responses}) == 1
        assert not responses[0].ok

    def test_execute_group_unknown_codec(self):
        from repro.service.server import CodecService, _WorkItem

        service = CodecService()
        items = [
            _WorkItem(conn=None, accepted_ns=0, request=Request(
                op=OP_COMPRESS, request_id=index, codec="nope",
                payload=b"x",
            ))
            for index in (1, 2)
        ]
        responses = service._execute_group(items)
        assert [r.request_id for r in responses] == [1, 2]
        assert all(r.category == "invalid" for r in responses)

    def test_identical_burst_forms_groups(self, mips_program):
        # One worker + one dispatcher: while the first request executes,
        # the rest of the burst accumulates in the queue, so the next
        # drain must group the identical payloads.
        config = ServiceConfig(
            port=0, dispatchers=1, workers=1, batch_max=16,
        )
        payload = mips_program[:2048]
        with ServerThread(config) as address:
            # The recorder is process-global and may be shared with other
            # daemons in this module; assert on deltas, not totals.
            with ServiceClient(*address) as c:
                before = c.stats()["counters"]
            errors = []

            def hammer() -> None:
                try:
                    with ServiceClient(*address) as c:
                        for _ in range(4):
                            c.compress("gzipish", payload)
                except Exception as error:
                    errors.append(repr(error))

            threads = [
                threading.Thread(target=hammer) for _ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            with ServiceClient(*address) as c:
                stats = c.stats()
        counters = stats["counters"]
        grouped = (counters.get("service.batch_grouped", 0)
                   - before.get("service.batch_grouped", 0))
        assert grouped > 0
        # Counter parity: per-request codec counters still count requests.
        assert (counters["service.codec.gzipish"]
                - before.get("service.codec.gzipish", 0)) == 32
