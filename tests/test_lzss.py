"""Tests for the LZSS sliding-window matcher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lzss import (
    MAX_MATCH,
    MIN_MATCH,
    WINDOW_SIZE,
    Literal,
    Match,
    detokenize,
    tokenize,
)


class TestTokenize:
    def test_empty(self):
        assert tokenize(b"") == []

    def test_no_matches_all_literals(self):
        tokens = tokenize(b"abcdef")
        assert all(isinstance(t, Literal) for t in tokens)

    def test_simple_repeat_found(self):
        tokens = tokenize(b"abcdabcd")
        matches = [t for t in tokens if isinstance(t, Match)]
        assert matches and matches[0].length == 4 and matches[0].distance == 4

    def test_overlapping_match(self):
        # 'aaaa...' matches itself with distance 1 (RLE-style).
        tokens = tokenize(b"a" * 50)
        matches = [t for t in tokens if isinstance(t, Match)]
        assert matches and matches[0].distance == 1
        assert matches[0].length <= MAX_MATCH

    def test_min_match_respected(self):
        for token in tokenize(b"ababab"):
            if isinstance(token, Match):
                assert token.length >= MIN_MATCH

    def test_max_match_capped(self):
        tokens = tokenize(b"x" * 1000)
        assert all(
            t.length <= MAX_MATCH for t in tokens if isinstance(t, Match)
        )

    def test_window_limit(self):
        # A repeat farther back than the window must not be referenced.
        unique = bytes((i * 7 + i // 251) % 256 for i in range(WINDOW_SIZE + 200))
        data = b"NEEDLE!!" + unique + b"NEEDLE!!"
        for token in tokenize(data):
            if isinstance(token, Match):
                assert token.distance <= WINDOW_SIZE


class TestDetokenize:
    def test_inverts(self):
        data = b"compression compression compression"
        assert detokenize(iter(tokenize(data))) == data

    def test_bad_distance_rejected(self):
        with pytest.raises(ValueError):
            detokenize(iter([Match(3, 5)]))

    def test_self_overlap_expansion(self):
        tokens = [Literal(ord("z")), Match(7, 1)]
        assert detokenize(iter(tokens)) == b"z" * 8


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert detokenize(iter(tokenize(data))) == data


@settings(max_examples=20, deadline=None)
@given(st.text(alphabet="ab", max_size=800))
def test_roundtrip_low_alphabet(text):
    data = text.encode()
    assert detokenize(iter(tokenize(data))) == data


def test_roundtrip_program(mips_program):
    assert detokenize(iter(tokenize(mips_program))) == mips_program


def test_matches_reduce_token_count(mips_program_large):
    tokens = tokenize(mips_program_large)
    assert len(tokens) < len(mips_program_large) // 2  # code is repetitive
