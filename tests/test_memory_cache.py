"""Tests for the instruction cache model."""

import pytest

from repro.memory.cache import InstructionCache


class TestGeometry:
    def test_sets_computed(self):
        cache = InstructionCache(4096, 32, 2)
        assert cache.n_sets == 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            InstructionCache(1000, 32, 2)

    def test_block_index(self):
        cache = InstructionCache(4096, 32, 2)
        assert cache.block_index(0) == 0
        assert cache.block_index(31) == 0
        assert cache.block_index(32) == 1


class TestBehaviour:
    def test_first_access_misses(self):
        cache = InstructionCache()
        assert cache.access(0) is False
        assert cache.stats.misses == 1

    def test_second_access_hits(self):
        cache = InstructionCache()
        cache.access(0)
        assert cache.access(4) is True  # same 32-byte block
        assert cache.stats.hits == 1

    def test_lru_eviction(self):
        cache = InstructionCache(64, 32, 1)  # 2 sets, direct-mapped
        cache.access(0)       # set 0
        cache.access(64)      # set 0, evicts block 0
        assert cache.access(0) is False

    def test_associativity_retains_both(self):
        cache = InstructionCache(128, 32, 2)  # 2 sets, 2-way
        cache.access(0)
        cache.access(64)      # same set, second way
        assert cache.access(0) is True
        assert cache.access(64) is True

    def test_lru_order(self):
        cache = InstructionCache(64, 32, 2)  # 1 set, 2-way
        cache.access(0)
        cache.access(32)
        cache.access(0)       # refresh block 0
        cache.access(64)      # evicts block 1 (LRU), not block 0
        assert cache.access(0) is True
        assert cache.access(32) is False

    def test_flush(self):
        cache = InstructionCache()
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_contains_does_not_mutate(self):
        cache = InstructionCache()
        cache.access(0)
        accesses = cache.stats.accesses
        assert cache.contains(0) is True
        assert cache.stats.accesses == accesses

    def test_hit_ratio(self):
        cache = InstructionCache()
        for _ in range(4):
            cache.access(0)
        assert cache.stats.hit_ratio == pytest.approx(0.75)

    def test_empty_stats(self):
        cache = InstructionCache()
        assert cache.stats.hit_ratio == 0.0
        assert cache.stats.miss_ratio == 0.0
