"""Tests for SAMC's Markov model (trees, connection, walks, storage)."""

import pytest

from repro.bitstream.fields import chunk_words
from repro.core.samc.model import SamcModel, StreamModel, StreamSpec, node_index
from repro.entropy.arith import quantize_probability


class TestNodeIndex:
    def test_root(self):
        assert node_index(0, 0) == 0

    def test_depth_one(self):
        assert node_index(1, 0) == 1
        assert node_index(1, 1) == 2

    def test_depth_two(self):
        assert [node_index(2, p) for p in range(4)] == [3, 4, 5, 6]

    def test_tree_size_matches_paper_formula(self):
        # (2^(k+1) - 2) / 2 == 2^k - 1 stored probabilities for k bits.
        for k in (1, 2, 4, 8):
            assert node_index(k - 1, (1 << (k - 1)) - 1) == (1 << k) - 2


class TestStreamModel:
    def test_node_count(self):
        model = StreamModel(StreamSpec((0, 1, 2)), contexts=1)
        assert model.node_count == 7

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            StreamModel(StreamSpec(()), contexts=1)

    def test_probabilities_reflect_counts(self):
        model = StreamModel(StreamSpec((0,)), contexts=1)
        for _ in range(99):
            model.observe(0, 0, 0)
        model.observe(0, 0, 1)
        model.freeze()
        p = model.p0_quantized(0, 0) / (1 << 16)
        assert p > 0.95

    def test_unseen_node_gets_half(self):
        model = StreamModel(StreamSpec((0, 1)), contexts=1)
        model.freeze()
        assert model.p0_quantized(0, 0) == quantize_probability(0.5)

    def test_freeze_required_before_lookup(self):
        model = StreamModel(StreamSpec((0,)), contexts=1)
        with pytest.raises(RuntimeError):
            model.p0_quantized(0, 0)

    def test_no_training_after_freeze(self):
        model = StreamModel(StreamSpec((0,)), contexts=1)
        model.freeze()
        with pytest.raises(RuntimeError):
            model.observe(0, 0, 0)


class TestSamcModel:
    def test_streams_must_partition_word(self):
        with pytest.raises(ValueError):
            SamcModel(8, [(0, 1, 2)])  # misses positions 3..7
        with pytest.raises(ValueError):
            SamcModel(8, [(0, 1, 2, 3), (3, 4, 5, 6)])  # duplicate 3

    def test_probability_count(self):
        model = SamcModel(32, [range(0, 8), range(8, 16),
                               range(16, 24), range(24, 32)], connect_bits=0)
        assert model.probability_count() == 4 * 255
        connected = SamcModel(32, [range(0, 8), range(8, 16),
                                   range(16, 24), range(24, 32)], connect_bits=1)
        assert connected.probability_count() == 4 * 255 * 2

    def test_storage_bytes_scales_with_precision(self):
        model = SamcModel(8, [range(8)], connect_bits=0)
        assert model.storage_bytes(8) < model.storage_bytes(16)

    def test_walk_encode_decode_symmetry(self):
        model = SamcModel(8, [range(8)], connect_bits=1)
        words = [0x12, 0x12, 0x34, 0x12, 0x56, 0x12]
        model.train_block(words)
        model.freeze()

        emitted = []
        model.walk_encode(words, lambda bit, p: emitted.append((bit, p)))
        assert len(emitted) == 8 * len(words)

        # Feed the recorded bits back through the decode walk; the
        # probability sequence must be identical (proof the two walks
        # consult the model in the same order and state).
        queue = list(emitted)

        def next_bit(p0_q):
            bit, expected_p = queue.pop(0)
            assert p0_q == expected_p
            return bit

        decoded = model.walk_decode(len(words), next_bit)
        assert decoded == words

    def test_block_reset_makes_blocks_independent(self):
        # Identical blocks must produce identical (bit, prob) traces even
        # when preceded by different history.
        model = SamcModel(8, [range(8)], connect_bits=2)
        block_a = [0xAA, 0xBB, 0xCC]
        block_b = [0x01, 0x02, 0x03]
        model.train_block(block_a)
        model.train_block(block_b)
        model.freeze()

        def trace(block):
            out = []
            model.walk_encode(block, lambda b, p: out.append((b, p)))
            return out

        assert trace(block_a) == trace(block_a)  # deterministic
        first = trace(block_a)
        trace(block_b)  # interleave other work
        assert trace(block_a) == first

    def test_negative_connect_rejected(self):
        with pytest.raises(ValueError):
            SamcModel(8, [range(8)], connect_bits=-1)

    def test_train_after_freeze_rejected(self):
        model = SamcModel(8, [range(8)])
        model.freeze()
        with pytest.raises(RuntimeError):
            model.train_block([0])


def test_model_on_real_program(mips_program):
    words = chunk_words(mips_program, 4)
    model = SamcModel(32, [range(0, 8), range(8, 16),
                           range(16, 24), range(24, 32)])
    model.train_block(words)
    model.freeze()
    decoded_bits = []
    model.walk_encode(words[:16], lambda b, p: decoded_bits.append(b))
    assert len(decoded_bits) == 512
