"""Failure injection: corrupted images must fail safely.

A decompressor in a refill engine must never hang or crash the host on a
corrupted block — it either raises a clean error or produces (wrong)
bytes of the expected length.  We flip bits across compressed payloads
and truncate blocks, and check every outcome is one of those two.
"""

import random

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.lat import CompressedImage
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec

ACCEPTABLE = (ValueError, KeyError, EOFError, IndexError)


def _flip_bit(block: bytes, bit_index: int) -> bytes:
    data = bytearray(block)
    data[bit_index // 8] ^= 1 << (bit_index % 8)
    return bytes(data)


def _corrupt(image: CompressedImage, block_index: int, bit_index: int):
    blocks = list(image.blocks)
    blocks[block_index] = _flip_bit(blocks[block_index], bit_index)
    return CompressedImage(
        algorithm=image.algorithm,
        original_size=image.original_size,
        block_size=image.block_size,
        blocks=blocks,
        model_bytes=image.model_bytes,
        metadata=image.metadata,
    )


class TestBitFlips:
    def _assault(self, codec, image, original, n_trials=60):
        rng = random.Random(99)
        wrong_output = 0
        clean_errors = 0
        for _ in range(n_trials):
            block_index = rng.randrange(image.block_count())
            block = image.blocks[block_index]
            if not block:
                continue
            bit = rng.randrange(8 * len(block))
            corrupted = _corrupt(image, block_index, bit)
            try:
                out = codec.decompress_block(corrupted, block_index)
            except ACCEPTABLE:
                clean_errors += 1
                continue
            want = original[
                block_index * image.block_size :
                block_index * image.block_size + image.block_size
            ]
            assert len(out) == len(want), "corruption changed block length"
            if out != want:
                wrong_output += 1
        # Most flips must be *observable* (error or wrong bytes) — a
        # decoder that silently shrugs them all off is not decoding.
        assert wrong_output + clean_errors > n_trials // 2

    def test_samc(self, mips_program):
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        self._assault(codec, image, mips_program)

    def test_byte_huffman(self, mips_program):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program)
        self._assault(codec, image, mips_program)

    def test_sadc_never_hangs(self, mips_program):
        # SADC's decoder reconstructs instructions; corrupt tokens may
        # raise on re-encode or produce wrong words — both acceptable,
        # hanging or non-library exceptions are not.
        codec = MipsSadcCodec()
        image = codec.compress(mips_program)
        rng = random.Random(7)
        for _ in range(60):
            block_index = rng.randrange(image.block_count())
            block = image.blocks[block_index]
            if not block:
                continue
            bit = rng.randrange(8 * len(block))
            corrupted = _corrupt(image, block_index, bit)
            try:
                codec.decompress_block(corrupted, block_index)
            except ACCEPTABLE:
                pass


class TestTruncation:
    def test_samc_truncated_block_decodes_something(self, mips_program):
        # The arithmetic decoder zero-pads past the end: truncation gives
        # wrong trailing words, never a hang.
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        blocks = list(image.blocks)
        blocks[0] = blocks[0][: max(1, len(blocks[0]) // 2)]
        truncated = CompressedImage(
            "SAMC", image.original_size, image.block_size, blocks,
            image.model_bytes, image.metadata,
        )
        out = codec.decompress_block(truncated, 0)
        assert len(out) == image.block_size

    def test_sadc_truncated_block_raises(self, mips_program):
        codec = MipsSadcCodec()
        image = codec.compress(mips_program)
        blocks = list(image.blocks)
        blocks[0] = blocks[0][:1]
        truncated = CompressedImage(
            "SADC", image.original_size, image.block_size, blocks,
            image.model_bytes, image.metadata,
        )
        with pytest.raises(ACCEPTABLE):
            codec.decompress_block(truncated, 0)


class TestWrongModel:
    def test_samc_foreign_model_decodes_wrong_but_safely(
        self, mips_program, mips_program_large
    ):
        codec = SamcCodec.for_mips()
        image_a = codec.compress(mips_program)
        image_b = codec.compress(mips_program_large)
        # Splice program B's model into program A's image.
        hybrid = CompressedImage(
            "SAMC", image_a.original_size, image_a.block_size,
            list(image_a.blocks), image_a.model_bytes, image_b.metadata,
        )
        out = codec.decompress_block(hybrid, 0)
        assert len(out) == image_a.block_size
        assert out != mips_program[:32]  # wrong model -> wrong bytes
