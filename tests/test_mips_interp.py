"""Tests for the MIPS interpreter."""

import pytest

from repro.isa.mips.asm import assemble_to_bytes
from repro.isa.mips.interp import MachineError, MipsMachine


def run(source, setup=None, max_instructions=100_000):
    machine = MipsMachine(memory_size=1 << 16)
    machine.load_code(assemble_to_bytes(source))
    if setup:
        setup(machine)
    machine.run(max_instructions=max_instructions)
    return machine


class TestAlu:
    def test_addiu_and_addu(self):
        m = run(["addiu $t0, $zero, 5",
                 "addiu $t1, $zero, 7",
                 "addu $v0, $t0, $t1",
                 "syscall"])
        assert m.reg(2) == 12

    def test_negative_immediates_wrap(self):
        m = run(["addiu $t0, $zero, -1", "syscall"])
        assert m.reg(8) == 0xFFFFFFFF

    def test_register_zero_immutable(self):
        m = run(["addiu $zero, $zero, 5", "syscall"])
        assert m.reg(0) == 0

    def test_logical_ops(self):
        m = run(["addiu $t0, $zero, 0xF0",
                 "addiu $t1, $zero, 0x0F",
                 "or  $t2, $t0, $t1",
                 "and $t3, $t0, $t1",
                 "xor $t4, $t0, $t1",
                 "nor $t5, $t0, $t1",
                 "syscall"])
        assert m.reg(10) == 0xFF
        assert m.reg(11) == 0x00
        assert m.reg(12) == 0xFF
        assert m.reg(13) == 0xFFFFFF00

    def test_shifts(self):
        m = run(["addiu $t0, $zero, -8",
                 "sll $t1, $t0, 1",
                 "srl $t2, $t0, 1",
                 "sra $t3, $t0, 1",
                 "syscall"])
        assert m.reg(9) == 0xFFFFFFF0
        assert m.reg(10) == 0x7FFFFFFC
        assert m.reg(11) == 0xFFFFFFFC

    def test_slt_signed_vs_unsigned(self):
        m = run(["addiu $t0, $zero, -1",
                 "addiu $t1, $zero, 1",
                 "slt  $t2, $t0, $t1",
                 "sltu $t3, $t0, $t1",
                 "syscall"])
        assert m.reg(10) == 1  # -1 < 1 signed
        assert m.reg(11) == 0  # 0xFFFFFFFF > 1 unsigned

    def test_lui_ori_pair(self):
        m = run(["lui $t0, 0x1234", "ori $t0, $t0, 0x5678", "syscall"])
        assert m.reg(8) == 0x12345678


class TestMultDiv:
    def test_mult_signed(self):
        m = run(["addiu $t0, $zero, -3",
                 "addiu $t1, $zero, 7",
                 "mult $t0, $t1",
                 "mflo $v0",
                 "syscall"])
        assert m.reg(2) == (-21) & 0xFFFFFFFF

    def test_div(self):
        m = run(["addiu $t0, $zero, 17",
                 "addiu $t1, $zero, 5",
                 "div $t0, $t1",
                 "mflo $v0",
                 "mfhi $v1",
                 "syscall"])
        assert m.reg(2) == 3
        assert m.reg(3) == 2

    def test_div_by_zero_pins_zero(self):
        m = run(["addiu $t0, $zero, 9",
                 "div $t0, $zero",
                 "mflo $v0",
                 "syscall"])
        assert m.reg(2) == 0


class TestMemory:
    def test_word_roundtrip(self):
        m = run(["addiu $t0, $zero, 0x100",
                 "addiu $t1, $zero, 0x77",
                 "sw $t1, 0($t0)",
                 "lw $v0, 0($t0)",
                 "syscall"])
        assert m.reg(2) == 0x77

    def test_byte_sign_extension(self):
        def setup(machine):
            machine.write_byte(0x200, 0x80)

        m = run(["addiu $t0, $zero, 0x200",
                 "lb  $v0, 0($t0)",
                 "lbu $v1, 0($t0)",
                 "syscall"], setup=setup)
        assert m.reg(2) == 0xFFFFFF80
        assert m.reg(3) == 0x80

    def test_halfword(self):
        m = run(["addiu $t0, $zero, 0x300",
                 "lui  $t1, 0x1",          # t1 = 0x10000 -> stores as 0
                 "ori  $t1, $t1, 0x8001",
                 "sh   $t1, 0($t0)",
                 "lhu  $v0, 0($t0)",
                 "lh   $v1, 0($t0)",
                 "syscall"])
        assert m.reg(2) == 0x8001
        assert m.reg(3) == 0xFFFF8001

    def test_misaligned_word_raises(self):
        with pytest.raises(MachineError):
            run(["addiu $t0, $zero, 0x101", "lw $v0, 0($t0)", "syscall"])

    def test_out_of_range_raises(self):
        with pytest.raises(MachineError):
            machine = MipsMachine(memory_size=64)
            machine.read_word(128)


class TestControlFlow:
    def test_forward_branch_taken(self):
        m = run(["beq $zero, $zero, skip",
                 "addiu $v0, $zero, 1",
                 "skip:",
                 "addiu $v1, $zero, 2",
                 "syscall"])
        assert m.reg(2) == 0
        assert m.reg(3) == 2

    def test_backward_branch_loop(self):
        m = run(["addiu $t0, $zero, 5",
                 "addiu $v0, $zero, 0",
                 "loop:",
                 "blez $t0, done",
                 "addu $v0, $v0, $t0",
                 "addiu $t0, $t0, -1",
                 "j loop",
                 "done:",
                 "syscall"])
        assert m.reg(2) == 15

    def test_jal_jr_call_return(self):
        m = run(["jal func",
                 "addiu $v1, $zero, 9",
                 "syscall",
                 "func:",
                 "addiu $v0, $zero, 42",
                 "jr $ra"])
        assert m.reg(2) == 42
        assert m.reg(3) == 9

    def test_instruction_budget(self):
        with pytest.raises(MachineError):
            run(["loop:", "j loop"], max_instructions=100)

    def test_step_after_halt_raises(self):
        m = run(["syscall"])
        with pytest.raises(MachineError):
            m.step()


class TestFloatingPoint:
    def test_double_arithmetic(self):
        def setup(machine):
            machine.write_double(0x400, 2.5)
            machine.write_double(0x408, 4.0)

        m = run(["addiu $t0, $zero, 0x400",
                 "ldc1 $f0, 0($t0)",
                 "ldc1 $f2, 8($t0)",
                 "add.d $f4, $f0, $f2",
                 "mul.d $f6, $f0, $f2",
                 "sdc1 $f4, 16($t0)",
                 "sdc1 $f6, 24($t0)",
                 "syscall"], setup=setup)
        assert m.read_double(0x410) == 6.5
        assert m.read_double(0x418) == 10.0


class TestLabels:
    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError):
            assemble_to_bytes(["x:", "syscall", "x:", "syscall"])

    def test_label_on_same_line_as_instruction(self):
        code = assemble_to_bytes(["start: addiu $v0, $zero, 3", "syscall"])
        assert len(code) == 8

    def test_numeric_offsets_still_work(self):
        code = assemble_to_bytes(["bne $v0, $zero, -2", "syscall"])
        assert len(code) == 8
