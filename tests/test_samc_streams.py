"""Tests for SAMC stream assignment (contiguous / correlation / search)."""

import pytest

from repro.bitstream.fields import chunk_words
from repro.core.samc.streams import (
    contiguous_streams,
    correlation_streams,
    optimize_streams,
    total_model_entropy,
)


class TestContiguous:
    def test_four_by_eight(self):
        streams = contiguous_streams(32, 4)
        assert streams[0] == tuple(range(8))
        assert streams[3] == tuple(range(24, 32))

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            contiguous_streams(32, 5)

    def test_single_stream(self):
        assert contiguous_streams(8, 1) == [tuple(range(8))]


class TestCorrelationStreams:
    def _words(self):
        # Bits 0 and 4 identical, bits 1 and 5 identical: correlation
        # grouping should pair them.
        import random

        rng = random.Random(0)
        words = []
        for _ in range(300):
            a, b = rng.randrange(2), rng.randrange(2)
            c, d = rng.randrange(2), rng.randrange(2)
            word = (a << 7) | (b << 6) | (c << 5) | (d << 4) \
                 | (a << 3) | (b << 2) | (rng.randrange(2) << 1) | rng.randrange(2)
            words.append(word)
        return words

    def test_partition_property(self):
        streams = correlation_streams(self._words(), 8, 4)
        positions = sorted(p for s in streams for p in s)
        assert positions == list(range(8))

    def test_groups_correlated_bits(self):
        streams = correlation_streams(self._words(), 8, 4)
        by_bit = {p: i for i, s in enumerate(streams) for p in s}
        assert by_bit[0] == by_bit[4]  # the duplicated pairs end up together
        assert by_bit[1] == by_bit[5]

    def test_uneven_rejected(self):
        with pytest.raises(ValueError):
            correlation_streams([0], 8, 3)


class TestOptimize:
    def test_never_worse_than_initial(self, mips_program):
        words = chunk_words(mips_program, 4)[:400]
        initial = contiguous_streams(32, 4)
        base = total_model_entropy(words, initial, 32)
        _streams, best = optimize_streams(
            words, 32, 4, iterations=60, initial=initial
        )
        assert best <= base + 1e-9

    def test_result_is_partition(self, mips_program):
        words = chunk_words(mips_program, 4)[:200]
        streams, _ = optimize_streams(words, 32, 4, iterations=30)
        assert sorted(p for s in streams for p in s) == list(range(32))

    def test_deterministic_for_seed(self, mips_program):
        words = chunk_words(mips_program, 4)[:200]
        a = optimize_streams(words, 32, 4, iterations=25, seed=5)
        b = optimize_streams(words, 32, 4, iterations=25, seed=5)
        assert a == b


class TestTotalEntropy:
    def test_zero_for_constant_words(self):
        words = [0xAB] * 50
        assert total_model_entropy(words, [tuple(range(8))], 8) == 0.0

    def test_weighted_by_stream_size(self):
        # Splitting a word into two streams cannot *reduce* total beyond
        # the one-stream first-order model... but it can't exceed the
        # word width either.
        import random

        rng = random.Random(4)
        words = [rng.randrange(256) for _ in range(500)]
        total = total_model_entropy(words, contiguous_streams(8, 2), 8)
        assert 0.0 <= total <= 8.0
