"""Tests for Huffman coding: optimality, canonical form, codec."""

import math
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.io import BitReader, BitWriter
from repro.entropy.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
    build_code_from_symbols,
    canonical_codewords,
    code_lengths,
)
from repro.entropy.stats import entropy_bits


class TestCodeLengths:
    def test_empty(self):
        assert code_lengths({}) == {}

    def test_single_symbol_gets_one_bit(self):
        assert code_lengths({42: 100}) == {42: 1}

    def test_two_symbols(self):
        assert code_lengths({0: 9, 1: 1}) == {0: 1, 1: 1}

    def test_uniform_four_symbols(self):
        lengths = code_lengths({i: 5 for i in range(4)})
        assert all(length == 2 for length in lengths.values())

    def test_skewed_lengths(self):
        lengths = code_lengths({0: 8, 1: 4, 2: 2, 3: 1, 4: 1})
        assert lengths[0] == 1
        assert lengths[1] == 2
        assert lengths[3] == 4 and lengths[4] == 4

    def test_zero_counts_excluded(self):
        lengths = code_lengths({0: 10, 1: 0})
        assert 1 not in lengths

    def test_deterministic(self):
        counts = {i: (i * 7) % 5 + 1 for i in range(20)}
        assert code_lengths(counts) == code_lengths(dict(counts))


@given(st.dictionaries(st.integers(0, 63), st.integers(1, 500),
                       min_size=2, max_size=32))
def test_kraft_equality(counts):
    # Huffman codes are complete: Kraft sum is exactly 1.
    lengths = code_lengths(counts)
    assert sum(2.0 ** -l for l in lengths.values()) == pytest.approx(1.0)


@given(st.dictionaries(st.integers(0, 63), st.integers(1, 500),
                       min_size=2, max_size=32))
def test_huffman_within_one_bit_of_entropy(counts):
    code = build_code(counts)
    mean = code.mean_length(counts)
    h = entropy_bits(counts)
    assert h - 1e-9 <= mean <= h + 1.0


class TestCanonical:
    def test_prefix_free(self):
        counts = {i: (i % 7) + 1 for i in range(30)}
        code = build_code(counts)
        words = [
            format(code.codewords[s], f"0{code.lengths[s]}b")
            for s in code.lengths
        ]
        for a in words:
            for b in words:
                if a is not b:
                    assert not b.startswith(a)

    def test_sorted_by_length_then_symbol(self):
        lengths = {0: 2, 1: 1, 2: 3, 3: 3}
        codewords = canonical_codewords(lengths)
        assert codewords[1] == 0b0
        assert codewords[0] == 0b10
        assert codewords[2] == 0b110
        assert codewords[3] == 0b111


class TestCodec:
    def test_roundtrip(self):
        symbols = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        code = build_code_from_symbols(symbols)
        encoder = HuffmanEncoder(code)
        decoder = HuffmanDecoder(code)
        assert decoder.decode(encoder.encode(symbols), len(symbols)) == symbols

    def test_encoded_bits_exact(self):
        symbols = [0, 0, 0, 1]
        code = build_code_from_symbols(symbols)
        encoder = HuffmanEncoder(code)
        assert encoder.encoded_bits(symbols) == 4  # 3*1 + 1*1

    def test_unknown_symbol_rejected(self):
        code = build_code({0: 1, 1: 1})
        with pytest.raises(KeyError):
            HuffmanEncoder(code).encode([2])

    def test_invalid_bits_rejected(self):
        code = build_code({0: 3, 1: 2, 2: 1})
        decoder = HuffmanDecoder(code)
        # An all-ones stream longer than the max code length that maps to
        # nothing must raise rather than loop.
        max_len = max(code.lengths.values())
        bad = int("1" * (max_len + 2), 2)
        writer = BitWriter()
        writer.write_bits(bad, max_len + 2)
        reader = BitReader(writer.getvalue(), pad=True)
        try:
            decoder.decode_from(reader, 4)
        except (ValueError, EOFError):
            pass  # either is acceptable termination

    def test_shared_writer_interleaving(self):
        # SADC interleaves several Huffman streams in one writer.
        code_a = build_code({0: 3, 1: 1})
        code_b = build_code({7: 1, 9: 1})
        writer = BitWriter()
        HuffmanEncoder(code_a).encode_to(writer, [0, 1])
        HuffmanEncoder(code_b).encode_to(writer, [9])
        reader = BitReader(writer.getvalue())
        assert HuffmanDecoder(code_a).decode_from(reader, 2) == [0, 1]
        assert HuffmanDecoder(code_b).decode_from(reader, 1) == [9]


@given(st.lists(st.integers(0, 15), min_size=1, max_size=300))
def test_codec_roundtrip_property(symbols):
    code = build_code_from_symbols(symbols)
    encoded = HuffmanEncoder(code).encode(symbols)
    assert HuffmanDecoder(code).decode(encoded, len(symbols)) == symbols


def test_table_bits_accounting():
    code = build_code({0: 1, 1: 2, 2: 4})
    assert code.table_bits(8) == 3 * 13


def test_mean_length_empty_counts():
    code = build_code({0: 1})
    assert code.mean_length({}) == 0.0
