"""End-to-end tests for the SAMC codec."""

import pytest

from repro.core.samc.codec import SamcCodec, samc_compress, samc_decompress


class TestConfiguration:
    def test_bad_word_bits(self):
        with pytest.raises(ValueError):
            SamcCodec(word_bits=12)

    def test_block_must_hold_whole_words(self):
        with pytest.raises(ValueError):
            SamcCodec(word_bits=32, block_size=30)

    def test_bad_probability_mode(self):
        with pytest.raises(ValueError):
            SamcCodec(probability_mode="approximate")

    def test_default_streams_mips(self):
        codec = SamcCodec.for_mips()
        assert len(codec.streams) == 4
        assert all(len(s) == 8 for s in codec.streams)

    def test_default_streams_bytes(self):
        codec = SamcCodec.for_bytes()
        assert codec.word_bits == 8
        assert len(codec.streams) == 1


class TestRoundtrip:
    def test_mips(self, mips_program):
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_byte_mode_on_x86(self, x86_program):
        codec = SamcCodec.for_bytes()
        # Byte mode accepts any length; pad to blocks not required.
        image = codec.compress(x86_program)
        assert codec.decompress(image) == x86_program

    def test_pow2_mode(self, mips_program):
        codec = SamcCodec.for_mips(probability_mode="pow2")
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_full16_mode(self, mips_program):
        codec = SamcCodec.for_mips(probability_mode="full16")
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_unconnected_trees(self, mips_program):
        codec = SamcCodec.for_mips(connect_bits=0)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_optimized_streams(self, mips_program):
        codec = SamcCodec.for_mips(optimize=True, optimize_iterations=20)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_module_level_helpers(self, mips_program):
        image = samc_compress(mips_program)
        assert samc_decompress(image) == mips_program

    def test_misaligned_input_rejected(self):
        codec = SamcCodec.for_mips()
        with pytest.raises(ValueError):
            codec.compress(b"\x00" * 6)

    @pytest.mark.parametrize("block_size", [16, 32, 64, 128])
    def test_block_sizes(self, mips_program, block_size):
        codec = SamcCodec.for_mips(block_size=block_size)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program


class TestRandomAccess:
    def test_every_block_independently(self, mips_program):
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        for index in range(image.block_count()):
            want = mips_program[index * 32 : (index + 1) * 32]
            assert codec.decompress_block(image, index) == want

    def test_out_of_order_access(self, mips_program):
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        last = image.block_count() - 1
        # Access in reverse: state from one block must not leak into another.
        assert codec.decompress_block(image, last) == \
            mips_program[last * 32 : (last + 1) * 32]
        assert codec.decompress_block(image, 0) == mips_program[:32]

    def test_block_index_out_of_range(self, mips_program):
        codec = SamcCodec.for_mips()
        image = codec.compress(mips_program)
        with pytest.raises(IndexError):
            codec.decompress_block(image, image.block_count())


class TestCompressionQuality:
    def test_compresses_real_code(self, mips_program_large):
        image = SamcCodec.for_mips().compress(mips_program_large)
        assert image.payload_ratio < 0.75

    def test_connected_trees_improve_payload(self, mips_program_large):
        flat = SamcCodec.for_mips(connect_bits=0).compress(mips_program_large)
        conn = SamcCodec.for_mips(connect_bits=1).compress(mips_program_large)
        assert conn.payload_ratio < flat.payload_ratio

    def test_pow2_costs_bounded(self, mips_program_large):
        # Witten et al.: worst-case efficiency ~95% under the power-of-two
        # constraint; allow a 12% band for model/quantisation interplay.
        full = SamcCodec.for_mips().compress(mips_program_large)
        pow2 = SamcCodec.for_mips(probability_mode="pow2").compress(
            mips_program_large
        )
        assert pow2.payload_ratio <= full.payload_ratio * 1.12

    def test_image_metadata_complete(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        assert image.algorithm == "SAMC"
        assert image.metadata["word_bits"] == 32
        assert image.block_count() == (len(mips_program) + 31) // 32

    def test_model_bytes_positive(self, mips_program):
        image = SamcCodec.for_mips().compress(mips_program)
        assert image.model_bytes > 0
        # 4 streams x 2 contexts x 255 nodes x 1 byte, plus position map.
        assert image.model_bytes == pytest.approx(2040, abs=32)
