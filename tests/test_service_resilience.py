"""Failure-semantics tests: deadlines, retries, drain, chaos, soak.

The serving stack's robustness contract, exercised at every layer:
wire-level deadline framing (and byte-identity for unstamped frames),
the seeded retry policy and circuit breaker, client timeouts against
stalled peers, server-side deadline shedding and graceful drain, the
seeded TCP fault proxy, and a short end-to-end chaos soak.
"""

from __future__ import annotations

import asyncio
import itertools
import struct

import pytest

from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.chaos import ChaosProxy, FaultPlan
from repro.service.client import (
    AsyncServiceClient,
    wait_for_service,
)
from repro.service.protocol import (
    FLAG_DEADLINE,
    OP_COMPRESS,
    OP_HEALTH,
    STATUS_BUSY,
    STATUS_DEADLINE,
    STATUS_OK,
    Request,
    WireError,
    decode_request,
    encode_request,
    pack_message,
)
from repro.service.retry import (
    FATAL,
    RETRYABLE,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
)


class TestDeadlineProtocol:
    """Wire-level encode/decode of the deadline extension."""

    def test_deadline_round_trip(self):
        request = Request(
            op=OP_COMPRESS, request_id=9, codec="gzipish",
            payload=b"abc", deadline_us=1_500_000,
        )
        decoded = decode_request(encode_request(request))
        assert decoded.deadline_us == 1_500_000
        assert decoded.payload == b"abc"
        assert decoded.request_id == 9

    def test_deadline_and_trace_compose(self):
        request = Request(
            op=OP_COMPRESS, request_id=4, codec="lzw", payload=b"z",
            traced=True, trace_id=(1 << 64) - 1,
            deadline_us=0xFFFFFFFF,
        )
        decoded = decode_request(encode_request(request))
        assert decoded.traced and decoded.trace_id == (1 << 64) - 1
        assert decoded.deadline_us == 0xFFFFFFFF

    def test_unstamped_frame_is_byte_identical_to_legacy_layout(self):
        # The exact pre-deadline wire bytes: op | request_id u32 |
        # codec_len u8 | codec | payload_len u32 | payload.  A request
        # with no deadline and no trace must keep producing them.
        body = encode_request(Request(
            op=OP_COMPRESS, request_id=7, codec="lzw", payload=b"xy"
        ))
        legacy = (
            bytes([OP_COMPRESS])
            + struct.pack(">IB", 7, 3) + b"lzw"
            + struct.pack(">I", 2) + b"xy"
        )
        assert body == legacy

    def test_deadline_out_of_range_rejected(self):
        for bad in (-1, 1 << 32):
            with pytest.raises(ValueError):
                encode_request(Request(
                    op=OP_COMPRESS, request_id=1, codec="lzw",
                    payload=b"", deadline_us=bad,
                ))

    def test_truncated_deadline_header_rejected(self):
        stub = bytes([OP_COMPRESS | FLAG_DEADLINE]) + b"\x00" * 5
        with pytest.raises(WireError):
            decode_request(stub)

    def test_deadline_flag_on_unstamped_frame_rejected(self):
        body = bytearray(encode_request(Request(
            op=OP_COMPRESS, request_id=1, codec="gzipish", payload=b"x"
        )))
        body[0] |= FLAG_DEADLINE
        with pytest.raises(WireError):
            decode_request(bytes(body))


class TestRetryPolicy:
    """Seeded backoff: deterministic, bounded, validated."""

    def test_same_seed_same_delays(self):
        first = list(RetryPolicy(max_attempts=6, seed=11).delays())
        second = list(RetryPolicy(max_attempts=6, seed=11).delays())
        assert first == second
        assert len(first) == 5  # N attempts sleep N-1 times

    def test_different_seed_different_jitter(self):
        a = list(RetryPolicy(max_attempts=6, seed=1).delays())
        b = list(RetryPolicy(max_attempts=6, seed=2).delays())
        assert a != b

    def test_delays_respect_jitter_band_and_cap(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0,
            max_delay=0.4, jitter=0.5, seed=3,
        )
        for index, delay in enumerate(policy.delays()):
            base = min(0.4, 0.1 * 2.0 ** index)
            assert base * 0.5 <= delay <= base * 1.5

    def test_unbounded_policy_keeps_yielding(self):
        policy = RetryPolicy(max_attempts=None, seed=0)
        delays = list(itertools.islice(policy.delays(), 50))
        assert len(delays) == 50

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestFailureTaxonomy:
    """classify_failure: retryable transport faults vs fatal errors."""

    def test_transport_faults_are_retryable(self):
        for error in (
            ConnectionResetError("reset"),
            OSError("unreachable"),
            TimeoutError("slow"),
            asyncio.TimeoutError(),
            WireError("desync", fatal=True),
        ):
            assert classify_failure(error) == RETRYABLE

    def test_shed_replies_are_retryable(self):
        from repro.service.protocol import Response

        for status in (STATUS_BUSY, STATUS_DEADLINE):
            error = ServiceError(Response(
                op=OP_COMPRESS, status=status, request_id=1,
                payload=b"", category="busy", message="shed",
            ))
            assert classify_failure(error) == RETRYABLE

    def test_structured_errors_are_fatal(self):
        from repro.service.protocol import STATUS_ERROR, Response

        error = ServiceError(Response(
            op=OP_COMPRESS, status=STATUS_ERROR, request_id=1,
            payload=b"", category="invalid", message="bad input",
        ))
        assert classify_failure(error) == FATAL
        assert classify_failure(ValueError("local bug")) == FATAL


class TestCircuitBreaker:
    """The closed -> open -> half-open -> closed state machine."""

    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            recovery_time=kwargs.pop("recovery_time", 10.0),
            clock=lambda: clock["now"],
            **kwargs,
        )
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()
        assert breaker.opened == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_probe_closes_on_success(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == STATE_HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.reclosed == 1

    def test_half_open_probe_reopens_on_failure(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock["now"] = 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()  # recovery clock restarted
        clock["now"] = 20.0
        assert breaker.allow()


class TestClientTimeouts:
    """Stalled peers surface as timeouts, never as hangs."""

    def test_async_request_times_out_against_never_replying_server(self):
        async def scenario():
            async def swallow(reader, writer):
                await reader.read(1 << 16)  # accept bytes, never reply

            server = await asyncio.start_server(swallow, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await AsyncServiceClient.connect(
                "127.0.0.1", port, timeout=2.0
            )
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await client.request(OP_HEALTH, timeout=0.3)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_wait_for_service_gives_up_within_its_timeout(self):
        from repro.obs.clock import perf_seconds

        started = perf_seconds()
        # A port from the ephemeral range with nothing bound to it.
        assert wait_for_service("127.0.0.1", 1, timeout=0.4) is False
        assert perf_seconds() - started < 5.0

    def test_wait_for_service_finds_a_live_daemon(self):
        with ServerThread(ServiceConfig(port=0)) as (host, port):
            assert wait_for_service(host, port, timeout=5.0) is True


class TestDeadlineShedding:
    """Client-stamped budgets shed queue-expired work, typed."""

    def test_lapsed_deadline_is_shed_with_typed_status(self):
        with ServerThread(ServiceConfig(port=0)) as (host, port):
            with ServiceClient(host, port) as client:
                response = client.request(
                    OP_COMPRESS, "gzipish", b"payload" * 64,
                    deadline=1e-6,
                )
        assert response.status == STATUS_DEADLINE
        assert response.category == "deadline"

    def test_generous_deadline_executes_normally(self):
        with ServerThread(ServiceConfig(port=0)) as (host, port):
            with ServiceClient(host, port) as client:
                response = client.request(
                    OP_COMPRESS, "gzipish", b"payload" * 64,
                    deadline=30.0,
                )
        assert response.status == STATUS_OK

    def test_shed_requests_appear_in_flight_recorder(self):
        server = ServerThread(ServiceConfig(port=0))
        host, port = server.start()
        try:
            with ServiceClient(host, port) as client:
                client.request(
                    OP_COMPRESS, "gzipish", b"x" * 256, deadline=1e-6
                )
            kinds = server.service.flightrec.counts_by_kind()
            assert kinds.get("shed", 0) >= 1
        finally:
            server.stop()


class TestGracefulDrain:
    """stop()/SIGTERM answers everything accepted, then closes."""

    def test_drain_answers_every_inflight_request(self):
        server = ServerThread(ServiceConfig(port=0, workers=2))
        host, port = server.start()
        payload = b"drainme" * 512
        burst = 24
        try:
            with ServiceClient(host, port) as client:
                # Pipeline a burst without reading, so requests are
                # genuinely queued/in flight when the drain fires.
                for index in range(burst):
                    client.send_raw(pack_message(encode_request(Request(
                        op=OP_COMPRESS, request_id=index + 1,
                        codec="gzipish", payload=payload,
                    ))))
                assert server.drain() is True
                statuses = [
                    client.read_response().status for _ in range(burst)
                ]
            # Zero reply loss: every accepted request was answered
            # (some possibly shed as draining-busy, all typed).
            assert len(statuses) == burst
            assert all(
                status in (STATUS_OK, STATUS_BUSY) for status in statuses
            )
            assert server.service.inflight == 0
            kinds = server.service.flightrec.counts_by_kind()
            assert kinds.get("drained") == 1
            assert kinds.get("force_closed", 0) == 0
        finally:
            server.stop()

    def test_drained_listener_refuses_new_connections(self):
        server = ServerThread(ServiceConfig(port=0))
        host, port = server.start()
        try:
            assert server.drain() is True
            with pytest.raises(OSError):
                ServiceClient(host, port, timeout=2.0)
        finally:
            server.stop()

    def test_draining_daemon_sheds_new_work_with_category(self):
        server = ServerThread(ServiceConfig(port=0))
        host, port = server.start()
        try:
            with ServiceClient(host, port) as client:
                assert client.health()["status"] == "ok"
                assert server.drain() is True
                response = client.request(OP_COMPRESS, "gzipish", b"late")
                assert response.status == STATUS_BUSY
                assert response.category == "draining"
        finally:
            server.stop()

    def test_drain_is_idempotent(self):
        server = ServerThread(ServiceConfig(port=0))
        server.start()
        try:
            assert server.drain() is True
            assert server.drain() is True
        finally:
            server.stop()


class TestChaosProxy:
    """The seeded fault proxy: deterministic plans, real forwarding."""

    def test_fault_plans_are_deterministic(self):
        plans = [FaultPlan.derive(42, index) for index in range(32)]
        again = [FaultPlan.derive(42, index) for index in range(32)]
        assert plans == again

    def test_seed_changes_the_schedule(self):
        schedule = [FaultPlan.derive(1, i).mode for i in range(64)]
        other = [FaultPlan.derive(2, i).mode for i in range(64)]
        assert schedule != other

    def test_clean_connection_forwards_both_ways(self):
        seed = next(
            s for s in range(1000)
            if FaultPlan.derive(s, 0).mode == "clean"
        )
        server = ServerThread(ServiceConfig(port=0))
        host, port = server.start()

        async def scenario():
            proxy = ChaosProxy(host, port, seed=seed)
            proxy_host, proxy_port = await proxy.start()
            client = await AsyncServiceClient.connect(
                proxy_host, proxy_port, timeout=5.0
            )
            try:
                response = await client.request(
                    OP_COMPRESS, "gzipish", b"through-the-proxy" * 8,
                    timeout=5.0,
                )
            finally:
                await client.close()
                await proxy.stop()
            return response, proxy.report()

        try:
            response, report = asyncio.run(scenario())
        finally:
            server.stop()
        assert response.status == STATUS_OK
        assert report["clean"] == 1 and report["connections"] == 1

    def test_stopped_proxy_refuses_and_reports(self):
        server = ServerThread(ServiceConfig(port=0))
        host, port = server.start()

        async def scenario():
            proxy = ChaosProxy(host, port, seed=0)
            address = await proxy.start()
            await proxy.stop()
            with pytest.raises((ConnectionError, OSError)):
                await asyncio.wait_for(
                    asyncio.open_connection(*address), timeout=2.0
                )

        try:
            asyncio.run(scenario())
        finally:
            server.stop()


class TestSoak:
    """A short end-to-end chaos soak must satisfy the full contract."""

    def test_short_soak_passes_and_accounts_every_request(self, tmp_path):
        from repro.obs.flightrec import parse_dump
        from repro.service.soak import run_soak

        dump = tmp_path / "soak-flightrec.jsonl"
        report = run_soak(
            seed=5, duration=3.0, rps=40, connections=3,
            dump_path=str(dump),
        )
        assert report.ok, report.violations
        load = report.loadgen
        assert load.sent > 0
        assert load.outcomes_total == load.sent
        assert load.timeouts == 0
        assert load.internal_errors == 0
        assert report.drain_clean
        assert report.server_inflight_after == 0
        document = parse_dump(dump.read_text())
        kinds = [event["kind"] for event in document["events"]]
        assert "drained" in kinds

    def test_soak_rejects_bad_parameters(self):
        from repro.service.soak import run_soak

        with pytest.raises(ValueError):
            run_soak(duration=0)


class TestFlightRecorderCounts:
    def test_counts_by_kind_aggregates_the_ring(self):
        from repro.obs.flightrec import FlightRecorder

        recorder = FlightRecorder(capacity=8)
        for _ in range(3):
            recorder.record("shed", reason="deadline")
        recorder.record("drained", clean=True)
        assert recorder.counts_by_kind() == {"shed": 3, "drained": 1}
