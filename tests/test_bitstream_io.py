"""Unit and property tests for MSB-first bit I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.io import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits_pack_msb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 0, 0, 0, 0, 0):
            writer.write_bit(bit)
        assert writer.getvalue() == b"\xa0"

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == b"\xa0"

    def test_write_bits_width_zero(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.getvalue() == b""
        assert len(writer) == 0

    def test_len_counts_bits(self):
        writer = BitWriter()
        writer.write_bits(0x1F, 5)
        assert len(writer) == 5
        writer.write_bytes(b"ab")
        assert len(writer) == 21

    def test_value_too_wide_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(8, 3)

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_write_bytes_aligned_fast_path(self):
        writer = BitWriter()
        writer.write_bytes(b"\x12\x34")
        assert writer.getvalue() == b"\x12\x34"

    def test_write_bytes_unaligned(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bytes(b"\x00")
        assert writer.getvalue() == b"\x80\x00"

    def test_align_to_byte(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.align_to_byte(fill=1)
        assert writer.getvalue() == b"\xff"
        assert len(writer) == 8


class TestBitReader:
    def test_reads_msb_first(self):
        reader = BitReader(b"\xa0")
        assert [reader.read_bit() for _ in range(3)] == [1, 0, 1]

    def test_read_bits_value(self):
        reader = BitReader(b"\x12\x34")
        assert reader.read_bits(16) == 0x1234

    def test_eof_raises_without_padding(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_padding_returns_zeros(self):
        reader = BitReader(b"\xff", pad=True)
        reader.read_bits(8)
        assert reader.read_bits(16) == 0

    def test_seek_bit_enables_random_access(self):
        reader = BitReader(b"\x0f")
        reader.seek_bit(4)
        assert reader.read_bits(4) == 0xF

    def test_seek_negative_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"").seek_bit(-1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bits(3)
        assert reader.bits_remaining == 13

    def test_read_bytes(self):
        assert BitReader(b"abc").read_bytes(2) == b"ab"


@given(st.lists(st.integers(0, 1), max_size=200))
def test_bit_roundtrip(bits):
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue())
    assert [reader.read_bit() for _ in range(len(bits))] == bits


@given(st.lists(st.tuples(st.integers(1, 32), st.data()), max_size=50))
def test_field_roundtrip(fields_data):
    # Draw (width, value) pairs, write them back-to-back, read them back.
    pairs = []
    writer = BitWriter()
    for width, data in fields_data:
        value = data.draw(st.integers(0, (1 << width) - 1))
        pairs.append((width, value))
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    for width, value in pairs:
        assert reader.read_bits(width) == value


@given(st.binary(max_size=64))
def test_bytes_roundtrip(data):
    writer = BitWriter()
    writer.write_bytes(data)
    assert writer.getvalue() == data
    assert BitReader(data).read_bytes(len(data)) == data
