"""Tests for the MIPS assembler / disassembler."""

import pytest

from repro.isa.mips.asm import (
    assemble,
    assemble_one,
    assemble_to_bytes,
    disassemble,
    disassemble_one,
)


class TestAssembler:
    def test_r_type(self):
        instr = assemble_one("addu $v0, $a0, $a1")
        assert instr.mnemonic == "addu"
        assert (instr.rd, instr.rs, instr.rt) == (2, 4, 5)

    def test_memory_operand_syntax(self):
        instr = assemble_one("lw $t0, 8($sp)")
        assert instr.mnemonic == "lw"
        assert instr.rt == 8 and instr.rs == 29 and instr.imm == 8

    def test_negative_offset_wraps_to_16_bits(self):
        instr = assemble_one("sw $ra, -4($sp)")
        assert instr.imm == 0xFFFC

    def test_shift_amount(self):
        instr = assemble_one("sll $t0, $t1, 2")
        assert instr.shamt == 2

    def test_jump_target(self):
        instr = assemble_one("jal 0x100")
        assert instr.target == 0x40  # byte address >> 2

    def test_fp_registers(self):
        instr = assemble_one("add.d $f0, $f2, $f4")
        # COP1 layout: ft->rt, fs->rd, fd->shamt.
        assert instr.shamt == 0 and instr.rd == 2 and instr.rt == 4

    def test_comment_and_blank_lines_skipped(self):
        instrs = assemble(["# header", "", "addu $v0, $v0, $v1  # add"])
        assert len(instrs) == 1

    def test_unknown_mnemonic(self):
        with pytest.raises(ValueError):
            assemble_one("frobnicate $v0")

    def test_operand_count_mismatch(self):
        with pytest.raises(ValueError):
            assemble_one("addu $v0, $a0")

    def test_assemble_to_bytes_length(self):
        code = assemble_to_bytes(["nop" if False else "addu $v0,$v0,$v1",
                                  "jr $ra"])
        assert len(code) == 8


class TestDisassembler:
    def test_roundtrip_text(self):
        source = [
            "addiu $sp, $sp, -32",
            "sw $ra, 28($sp)",
            "lw $a0, 0($a1)",
            "addu $v0, $a0, $a1",
            "bne $v0, $zero, 4",
            "jal 0x100",
            "jr $ra",
        ]
        code = assemble_to_bytes(source)
        texts = disassemble(code)
        recoded = assemble_to_bytes(texts)
        assert recoded == code

    def test_disassemble_one_formats_memory_as_operands(self):
        word = assemble_one("lw $t0, 4($sp)").encode()
        text = disassemble_one(word)
        assert text.startswith("lw")
        assert "$t0" in text and "$sp" in text

    def test_misaligned_image_rejected(self):
        with pytest.raises(ValueError):
            disassemble(b"\x00" * 5)


def test_generated_program_disassembles(mips_program):
    texts = disassemble(mips_program)
    assert len(texts) == len(mips_program) // 4
    # Every line reassembles to the identical word.
    assert assemble_to_bytes(texts) == mips_program
