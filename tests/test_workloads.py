"""Tests for the synthetic SPEC95 workload generators."""

import pytest

from repro.bitstream.fields import chunk_words
from repro.isa.mips.formats import decode as mips_decode
from repro.isa.x86.formats import decode_all
from repro.workloads.profiles import BENCHMARK_NAMES, SPEC95, get_profile
from repro.workloads.sampling import ZipfSampler, weighted_choice
from repro.workloads.suite import generate_benchmark, generate_suite


class TestProfiles:
    def test_all_eighteen_benchmarks(self):
        assert len(SPEC95) == 18
        assert "gcc" in BENCHMARK_NAMES and "tomcatv" in BENCHMARK_NAMES

    def test_lookup(self):
        assert get_profile("gcc").category == "int"
        assert get_profile("swim").category == "fp"

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_profile("doom")

    def test_size_ordering(self):
        # The paper notes compress is small and gcc large.
        assert get_profile("compress").instructions < get_profile("gcc").instructions


class TestSampling:
    def test_zipf_skews_to_front(self):
        import random

        sampler = ZipfSampler(["a", "b", "c", "d"], skew=1.5)
        rng = random.Random(0)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert draws.count("a") > draws.count("d")

    def test_zipf_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([], 1.0)

    def test_weighted_choice_respects_weights(self):
        import random

        rng = random.Random(1)
        draws = [weighted_choice(rng, [(99, "x"), (1, "y")]) for _ in range(500)]
        assert draws.count("x") > 400


class TestMipsGeneration:
    def test_deterministic(self):
        a = generate_benchmark("gcc", "mips", scale=0.1, seed=3).code
        b = generate_benchmark("gcc", "mips", scale=0.1, seed=3).code
        assert a == b

    def test_seed_changes_output(self):
        a = generate_benchmark("gcc", "mips", scale=0.1, seed=3).code
        b = generate_benchmark("gcc", "mips", scale=0.1, seed=4).code
        assert a != b

    def test_every_word_decodes(self, mips_program):
        for word in chunk_words(mips_program, 4):
            mips_decode(word)

    def test_scale_controls_size(self):
        small = generate_benchmark("perl", "mips", scale=0.1)
        large = generate_benchmark("perl", "mips", scale=0.4)
        assert large.size_bytes > small.size_bytes

    def test_register_skew_visible(self, mips_program):
        # $sp (29) must be among the most-used register fields.
        from collections import Counter

        counts = Counter()
        for word in chunk_words(mips_program, 4):
            counts[(word >> 21) & 31] += 1
        top = [reg for reg, _n in counts.most_common(4)]
        assert 29 in top

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            generate_benchmark("gcc", "mips", scale=0)

    def test_bad_isa(self):
        with pytest.raises(ValueError):
            generate_benchmark("gcc", "sparc")


class TestX86Generation:
    def test_deterministic(self):
        a = generate_benchmark("go", "x86", scale=0.1, seed=3).code
        b = generate_benchmark("go", "x86", scale=0.1, seed=3).code
        assert a == b

    def test_decodes_exactly(self, x86_program):
        instrs = decode_all(x86_program)
        assert sum(i.length for i in instrs) == len(x86_program)

    def test_denser_than_mips(self):
        mips = generate_benchmark("ijpeg", "mips", scale=0.3)
        x86 = generate_benchmark("ijpeg", "x86", scale=0.3)
        assert x86.size_bytes < mips.size_bytes

    def test_prologue_idiom_present(self, x86_program):
        assert b"\x55\x89\xe5" in x86_program  # push ebp; mov ebp, esp


class TestSuite:
    def test_generate_suite_order(self):
        programs = list(generate_suite("mips", scale=0.05,
                                       names=("compress", "gcc")))
        assert [p.name for p in programs] == ["compress", "gcc"]

    def test_fp_benchmarks_use_cop1(self):
        program = generate_benchmark("swim", "mips", scale=0.3)
        has_cop1 = any(
            (word >> 26) in (0x11, 0x31, 0x35, 0x39, 0x3D)
            for word in chunk_words(program.code, 4)
        )
        assert has_cop1

    def test_int_benchmarks_avoid_cop1_arith(self):
        program = generate_benchmark("go", "mips", scale=0.3)
        cop1_arith = sum(
            1 for word in chunk_words(program.code, 4)
            if (word >> 26) == 0x11
        )
        assert cop1_arith == 0
