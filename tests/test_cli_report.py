"""The shared CLI reporting contract: tables, JSON, failure exits.

Every report-style subcommand (``stats``, ``fuzz``, ``loadgen``,
``bench-diff``, ``check``) routes its output through
:mod:`repro.cli_report`; these tests pin that shared surface — the
table shape, the ``stats`` JSON schema, and the rule that a failing
report never exits 0.
"""

from __future__ import annotations

import io
import json

from repro.cli import main
from repro.cli_report import format_table, report_failures
from repro.obs.render import STATS_SCHEMA_VERSION, stats_document


class TestFormatTable:
    def test_columns_align(self):
        text = format_table([("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0] == "  a       1"
        assert lines[1] == "  longer  22"

    def test_headers_get_a_rule(self):
        text = format_table(
            [("x", 10)], headers=("name", "value")
        )
        lines = text.splitlines()
        assert lines[0] == "  name  value"
        assert lines[1] == "  ----  -----"
        assert lines[2] == "  x     10"

    def test_empty(self):
        assert format_table([]) == ""

    def test_no_trailing_whitespace(self):
        text = format_table([("a", ""), ("bb", "c")])
        assert all(line == line.rstrip() for line in text.splitlines())


class TestReportFailures:
    def test_zero_is_silent_success(self):
        stream = io.StringIO()
        assert report_failures(0, "nope", stream=stream) == 0
        assert stream.getvalue() == ""

    def test_nonzero_prints_and_fails(self):
        stream = io.StringIO()
        assert report_failures(3, "3 things broke", stream=stream) == 1
        assert "3 things broke" in stream.getvalue()


class TestStatsJsonSchema:
    """The ``repro stats --format json`` document is a stable contract."""

    ARGS = ["stats", "--scale", "0.15", "--algorithms", "huffman",
            "--benchmarks", "compress", "--format", "json"]

    def test_top_level_keys_pinned(self, capsys):
        assert main(self.ARGS) == 0
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {
            "schema_version", "benchmarks", "counters", "gauges",
            "histograms", "spans",
        }
        assert document["schema_version"] == STATS_SCHEMA_VERSION == 1

    def test_document_builder_matches_cli(self):
        # The CLI emits exactly stats_document(snapshot) — same keys
        # even on an empty snapshot.
        document = stats_document({})
        assert set(document) == {
            "schema_version", "benchmarks", "counters", "gauges",
            "histograms", "spans",
        }


class TestFuzzExitPaths:
    """Both fuzz targets share the cli_report exit/format contract."""

    def test_decoders_json(self, capsys):
        assert main(["fuzz", "--iters", "5", "--seed", "11",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["target"] == "decoders"
        assert document["iterations"] == 5
        assert document["ok"] is True
        assert set(document) >= {
            "seed", "detected", "roundtrips", "failures", "timeouts",
        }

    def test_service_json(self, capsys):
        assert main(["fuzz", "--target", "service", "--iters", "10",
                     "--seed", "11", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["target"] == "service"
        assert document["iterations"] == 10
        assert document["ok"] is True
        assert set(document) >= {"seed", "rejected", "hangs", "failures"}

    def test_text_mode_still_prints_verdict(self, capsys):
        assert main(["fuzz", "--iters", "3", "--seed", "11"]) == 0
        assert "fuzz: PASS" in capsys.readouterr().out
