"""Tests for the static verifier: broken fixtures must each trip exactly
one check, and the repository at HEAD must verify clean."""

import json
import textwrap

import numpy as np
import pytest

from repro.cli import main
from repro.core.sadc.entry import DictEntry, Dictionary
from repro.core.samc.model import SamcModel
from repro.entropy.huffman import (
    HuffmanCode,
    build_code,
    find_prefix_violation,
    kraft_numerator,
    verify_code,
)
from repro.verify import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    exit_status,
    run_all_checks,
    sort_findings,
)
from repro.verify.baseline import (
    apply_baseline,
    default_baseline_path,
    load_baseline,
)
from repro.verify.codec_checks import (
    check_field_layout,
    check_field_layouts,
    check_huffman_code,
    check_mips_dictionary,
    check_samc_model,
)
from repro.verify.lint import run_lint
from repro.verify.rules import default_rules


# ---------------------------------------------------------------------------
# The four deliberately-broken fixtures from the issue: each must produce
# exactly one finding, with the right rule id.
# ---------------------------------------------------------------------------


class TestBrokenFixtures:
    def test_non_prefix_free_huffman(self):
        # "0" is a proper prefix of "01"; Kraft sum is exactly 1, so only
        # the prefix check may fire.
        code = HuffmanCode(
            lengths={0: 1, 1: 2, 2: 2},
            codewords={0: 0b0, 1: 0b01, 2: 0b11},
        )
        findings = check_huffman_code(code, origin="fixture")
        assert len(findings) == 1
        assert findings[0].rule == "huffman-prefix"
        assert findings[0].severity == SEVERITY_ERROR

    def test_ambiguous_sadc_dictionary(self):
        # Two identical entries: a matched group has two encodings, so
        # the compressed index stream is no longer uniquely decodable.
        dictionary = Dictionary()
        dictionary.add(DictEntry(opcodes=(0,)))
        dictionary.entries.append(DictEntry(opcodes=(0,)))
        findings = check_mips_dictionary(dictionary, origin="fixture")
        assert len(findings) == 1
        assert findings[0].rule == "sadc-ambiguous"

    def test_samc_model_with_zero_probability_row(self):
        # One quantised P(0) of zero starves the 0-branch of its interval:
        # a bit the model can emit but never decode.
        table = np.full((1, 255), 32768, dtype=np.int64)
        table[0, 17] = 0
        model = SamcModel.from_frozen(8, [list(range(8))], 0, [table])
        findings = check_samc_model(model, origin="fixture")
        assert len(findings) == 1
        assert findings[0].rule == "samc-distribution"
        assert "node 17" in findings[0].message

    def test_overlapping_field_layout(self):
        # Fields (0,5) and (4,4) both claim bit 4.
        findings = check_field_layout(
            "bad", (("a", 0, 5), ("b", 4, 4)), 8, file="fixture.py"
        )
        assert len(findings) == 1
        assert findings[0].rule == "field-tiling"
        assert "overlap" in findings[0].message


class TestBrokenFixturesGateTheCli:
    def test_fixture_findings_fail_strict(self):
        code = HuffmanCode(
            lengths={0: 1, 1: 2, 2: 2},
            codewords={0: 0b0, 1: 0b01, 2: 0b11},
        )
        findings = check_huffman_code(code, origin="fixture")
        assert exit_status(findings, strict=True) == 1
        assert exit_status(findings, strict=False) == 1  # errors always fail

    def test_warnings_only_fail_under_strict(self):
        # An incomplete (but prefix-free) code is a warning: decodable,
        # just wasteful.
        code = HuffmanCode(lengths={0: 2, 1: 2}, codewords={0: 0, 1: 1})
        findings = check_huffman_code(code, origin="fixture")
        assert [f.severity for f in findings] == [SEVERITY_WARNING]
        assert exit_status(findings, strict=False) == 0
        assert exit_status(findings, strict=True) == 1


# ---------------------------------------------------------------------------
# The repository at HEAD verifies clean.
# ---------------------------------------------------------------------------


class TestCleanRepo:
    def test_run_all_checks_is_clean_modulo_baseline(self):
        # The raw run includes the accepted findings recorded in
        # .repro-check-baseline.json; subtracting them must leave
        # nothing, and every baseline entry must still match something.
        findings = run_all_checks(artifact_scale=0.05)
        path = default_baseline_path()
        assert path is not None, "committed baseline file not found"
        kept, _, stale = apply_baseline(findings, load_baseline(path))
        assert kept == []
        assert stale == []

    def test_declared_layouts_tile_their_words(self):
        assert check_field_layouts() == []

    def test_cli_strict_passes(self, capsys):
        assert main(["check", "--strict", "--scale", "0.05"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_cli_json_output(self, capsys):
        assert main(["check", "--format", "json", "--scale", "0.05"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["status"] == 0
        assert payload["stale_baseline_entries"] == 0


# ---------------------------------------------------------------------------
# Huffman invariant primitives and construction-time verification.
# ---------------------------------------------------------------------------


class TestHuffmanPrimitives:
    def test_kraft_numerator_complete(self):
        assert kraft_numerator({0: 1, 1: 2, 2: 2}) == 1 << 32

    def test_kraft_numerator_incomplete(self):
        assert kraft_numerator({0: 2, 1: 2}) < 1 << 32

    def test_find_prefix_violation_clean(self):
        code = build_code({0: 5, 1: 3, 2: 1, 3: 1})
        assert find_prefix_violation(code.lengths, code.codewords) is None

    def test_verify_code_raises_on_prefix_collision(self):
        with pytest.raises(ValueError, match="prefix"):
            verify_code({0: 1, 1: 2}, {0: 0b0, 1: 0b01})

    def test_construction_check_can_be_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        # build_code only *verifies* under the flag; output is identical.
        code = build_code({i: 1 for i in range(7)})
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert build_code({i: 1 for i in range(7)}) == code


# ---------------------------------------------------------------------------
# SADC coverage: greedy longest-match parsing needs a single-entry
# fallback for every opcode the dictionary mentions.
# ---------------------------------------------------------------------------


class TestSadcCoverage:
    def test_pair_without_single_fallback(self):
        dictionary = Dictionary()
        dictionary.add(DictEntry(opcodes=(0,)))
        dictionary.add(DictEntry(opcodes=(0, 1)))  # mentions 1, no (1,)
        findings = check_mips_dictionary(dictionary, origin="fixture")
        assert [f.rule for f in findings] == ["sadc-coverage"]

    def test_complete_dictionary_is_clean(self):
        dictionary = Dictionary()
        dictionary.add(DictEntry(opcodes=(0,)))
        dictionary.add(DictEntry(opcodes=(1,)))
        dictionary.add(DictEntry(opcodes=(0, 1)))
        assert check_mips_dictionary(dictionary, origin="fixture") == []


# ---------------------------------------------------------------------------
# The AST lint engine, exercised on synthetic source trees.
# ---------------------------------------------------------------------------


def _write_tree(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


def _lint(root):
    return run_lint(default_rules(), root=root)


class TestLintRules:
    def test_float_in_hot_path_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "entropy/arith.py": """
                def midpoint(low, high):
                    return (low + high) / 2
            """,
        })
        findings = _lint(root)
        assert [f.rule for f in findings] == ["no-float-hotpath"]
        assert findings[0].line == 3  # dedented source keeps a leading blank

    def test_quantize_functions_are_exempt(self, tmp_path):
        root = _write_tree(tmp_path, {
            "entropy/arith.py": """
                def quantize_probability(p0):
                    return int(p0 * 65536.0)
            """,
        })
        assert _lint(root) == []

    def test_float_outside_scoped_paths_ignored(self, tmp_path):
        root = _write_tree(tmp_path, {
            "analysis/tables.py": "RATIO = 0.5 / 2\n",
        })
        assert _lint(root) == []

    def test_set_iteration_in_fingerprint_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "pipeline/fingerprint.py": """
                def digest(keys):
                    return [k for k in set(keys)]
            """,
        })
        assert [f.rule for f in _lint(root)] == ["unordered-iteration"]

    def test_sorted_values_iteration_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "pipeline/fingerprint.py": """
                def digest(mapping):
                    return [v for v in sorted(mapping.values())]
            """,
        })
        assert _lint(root) == []

    def test_unseeded_random_in_workloads_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "workloads/gen.py": """
                import random

                def pick():
                    return random.randint(0, 7)
            """,
        })
        assert [f.rule for f in _lint(root)] == ["unseeded-random"]

    def test_seeded_random_instance_is_clean(self, tmp_path):
        root = _write_tree(tmp_path, {
            "workloads/gen.py": """
                import random

                def pick(seed):
                    return random.Random(seed).randint(0, 7)
            """,
        })
        assert _lint(root) == []

    def test_noqa_suppresses_named_rule(self, tmp_path):
        root = _write_tree(tmp_path, {
            "workloads/gen.py": """
                import random

                def pick():
                    return random.randint(0, 7)  # repro: noqa unseeded-random
            """,
        })
        assert _lint(root) == []

    def test_noqa_for_other_rule_does_not_suppress(self, tmp_path):
        root = _write_tree(tmp_path, {
            "workloads/gen.py": """
                import random

                def pick():
                    return random.randint(0, 7)  # repro: noqa no-float-hotpath
            """,
        })
        assert [f.rule for f in _lint(root)] == ["unseeded-random"]


class TestFastpathParityRule:
    def test_missing_dispatch_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "baselines/codec.py": """
                from repro.fastpath import fastpath_enabled

                def compress(data):
                    return data
            """,
        })
        findings = _lint(root)
        assert [f.rule for f in findings] == ["fastpath-parity"]
        assert "compress" in findings[0].message

    def test_indirect_dispatch_satisfies(self, tmp_path):
        root = _write_tree(tmp_path, {
            "baselines/codec.py": """
                from repro.fastpath import fastpath_enabled

                def _encode_impl(data):
                    if fastpath_enabled():
                        return data
                    return bytes(data)

                def compress(data):
                    return _encode_impl(data)
            """,
        })
        assert _lint(root) == []

    def test_module_without_fastpath_import_ignored(self, tmp_path):
        root = _write_tree(tmp_path, {
            "baselines/plain.py": """
                def compress(data):
                    return data
            """,
        })
        assert _lint(root) == []


class TestNoWallclockRule:
    def test_direct_call_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "pipeline/executor.py": """
                import time

                def run():
                    return time.perf_counter()
            """,
        })
        findings = _lint(root)
        assert [f.rule for f in findings] == ["no-wallclock-in-codec"]
        assert "time.perf_counter()" in findings[0].message

    def test_from_import_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/codec.py": """
                from time import perf_counter, time_ns
            """,
        })
        findings = _lint(root)
        assert [f.rule for f in findings] == ["no-wallclock-in-codec"]
        assert "perf_counter" in findings[0].message

    def test_obs_layer_exempt(self, tmp_path):
        root = _write_tree(tmp_path, {
            "obs/clock.py": """
                import time

                def monotonic_ns():
                    return time.perf_counter_ns()
            """,
        })
        assert _lint(root) == []

    def test_non_clock_time_usage_ignored(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/misc.py": """
                import time

                def idle():
                    time.sleep(0)
            """,
        })
        assert _lint(root) == []

    def test_noqa_suppresses(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/misc.py": """
                import time

                def stamp():
                    return time.time()  # repro: noqa no-wallclock-in-codec
            """,
        })
        assert _lint(root) == []


class TestNoAssertInDecoderRule:
    def test_assert_in_decoder_flagged(self, tmp_path):
        root = _write_tree(tmp_path, {
            "baselines/codec.py": """
                def decompress(data):
                    assert len(data) >= 4
                    return data[4:]
            """,
        })
        findings = _lint(root)
        assert [f.rule for f in findings] == ["no-assert-in-decoder"]
        assert "decompress" in findings[0].message
        assert "python -O" in findings[0].message

    def test_assert_in_nested_decode_helper_flagged(self, tmp_path):
        # The enclosing-function chain counts: a helper nested inside a
        # decode function is still validating untrusted input.
        root = _write_tree(tmp_path, {
            "core/codec.py": """
                def decode_block(payload):
                    def step(offset):
                        assert offset < len(payload)
                        return payload[offset]
                    return step(0)
            """,
        })
        assert [f.rule for f in _lint(root)] == ["no-assert-in-decoder"]

    def test_assert_in_encoder_ignored(self, tmp_path):
        # Encoders consume trusted in-process data; asserts are fine.
        root = _write_tree(tmp_path, {
            "baselines/codec.py": """
                def compress(data):
                    assert isinstance(data, bytes)
                    return data
            """,
        })
        assert _lint(root) == []

    def test_assert_outside_codec_paths_ignored(self, tmp_path):
        root = _write_tree(tmp_path, {
            "analysis/tables.py": """
                def decode_row(row):
                    assert row
                    return row
            """,
        })
        assert _lint(root) == []

    def test_noqa_suppresses(self, tmp_path):
        root = _write_tree(tmp_path, {
            "core/codec.py": """
                def decompress(data):
                    assert data  # repro: noqa no-assert-in-decoder
                    return data
            """,
        })
        assert _lint(root) == []


# ---------------------------------------------------------------------------
# Finding plumbing.
# ---------------------------------------------------------------------------


class TestFindingPlumbing:
    def test_sort_puts_errors_first(self):
        warn = Finding("r1", SEVERITY_WARNING, "a.py", 1, "w")
        err = Finding("r2", SEVERITY_ERROR, "z.py", 9, "e")
        assert sort_findings([warn, err]) == [err, warn]

    def test_format_shape(self):
        f = Finding("rule-x", SEVERITY_ERROR, "src/m.py", 7, "boom")
        assert f.format() == "src/m.py:7: error[rule-x] boom"

    def test_to_dict_roundtrips_through_json(self):
        f = Finding("rule-x", SEVERITY_ERROR, "src/m.py", 7, "boom")
        assert json.loads(json.dumps(f.to_dict()))["rule"] == "rule-x"
