"""Tests for MIPS SADC: records, parsing, dictionary build, codec."""

import pytest

from repro.core.sadc.entry import DictEntry, Dictionary
from repro.core.sadc.mips import InstrRec, MipsSadcCodec, parse_block
from repro.isa.mips.asm import assemble_one, assemble_to_bytes
from repro.isa.mips.streams import OPCODE_IDS


def _rec(text: str) -> InstrRec:
    return InstrRec.from_word(assemble_one(text).encode())


class TestInstrRec:
    def test_roundtrip(self):
        for text in ("addu $v0, $a0, $a1", "lw $t0, 4($sp)", "jal 0x400",
                     "sll $t0, $t1, 2", "jr $ra", "add.d $f0, $f2, $f4"):
            word = assemble_one(text).encode()
            assert InstrRec.from_word(word).to_word() == word

    def test_fields(self):
        rec = _rec("lw $t0, 8($sp)")
        assert rec.opcode_id == OPCODE_IDS["lw"]
        assert rec.regs == (8, 29)
        assert rec.imm16 == 8
        assert rec.imm26 is None

    def test_jump_fields(self):
        rec = _rec("jal 0x400")
        assert rec.imm26 == 0x100
        assert rec.regs == ()

    def test_non_canonical_rejected(self):
        # blez with a non-zero rt field is not producible by the encoder.
        bad = (0x06 << 26) | (5 << 21) | (7 << 16) | 4
        with pytest.raises(ValueError):
            InstrRec.from_word(bad)


class TestParse:
    def _instrs(self):
        return [_rec(t) for t in (
            "addiu $sp, $sp, -24",
            "sw $ra, 20($sp)",
            "lw $ra, 20($sp)",
            "jr $ra",
        )]

    def _dictionary_with_singles(self, instrs):
        dictionary = Dictionary()
        for rec in instrs:
            entry = DictEntry(opcodes=(rec.opcode_id,))
            if entry not in dictionary:
                dictionary.add(entry)
        return dictionary

    def test_singles_parse(self):
        instrs = self._instrs()
        dictionary = self._dictionary_with_singles(instrs)
        tokens = parse_block(dictionary, instrs)
        assert len(tokens) == 4
        assert [pos for _i, pos in tokens] == [0, 1, 2, 3]

    def test_group_preferred(self):
        instrs = self._instrs()
        dictionary = self._dictionary_with_singles(instrs)
        group = DictEntry(opcodes=(instrs[2].opcode_id, instrs[3].opcode_id))
        group_index = dictionary.add(group)
        tokens = parse_block(dictionary, instrs)
        assert tokens[-1][0] == group_index
        assert len(tokens) == 3

    def test_bound_entry_only_matches_binding(self):
        instrs = self._instrs()
        dictionary = self._dictionary_with_singles(instrs)
        jr_id = instrs[3].opcode_id
        bound = dictionary.add(DictEntry(opcodes=(jr_id,)).bind_reg(0, 0, 31))
        tokens = parse_block(dictionary, instrs)
        assert tokens[-1][0] == bound  # jr $ra matches the bound form
        other = [_rec("jr $t9")]
        dictionary2 = self._dictionary_with_singles(instrs + other)
        dictionary2.add(DictEntry(opcodes=(jr_id,)).bind_reg(0, 0, 31))
        tokens2 = parse_block(dictionary2, other)
        assert dictionary2.entries[tokens2[0][0]].bound_regs == ()

    def test_missing_single_raises(self):
        with pytest.raises(ValueError):
            parse_block(Dictionary(), self._instrs())


class TestCodec:
    def test_roundtrip(self, mips_program):
        codec = MipsSadcCodec()
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_random_access_every_block(self, mips_program):
        codec = MipsSadcCodec()
        image = codec.compress(mips_program)
        for index in range(image.block_count()):
            want = mips_program[index * 32 : (index + 1) * 32]
            assert codec.decompress_block(image, index) == want

    def test_dictionary_capped_at_256(self, mips_program_large):
        codec = MipsSadcCodec()
        image = codec.compress(mips_program_large)
        assert len(image.metadata["dictionary"]) <= 256

    def test_groups_never_cross_blocks(self, mips_program):
        # Implied by random access, but check the parse directly.
        codec = MipsSadcCodec()
        blocks = codec._decode_blocks(mips_program)
        dictionary = codec.build_dictionary(blocks)
        for block in blocks:
            tokens = parse_block(dictionary, block)
            covered = sum(
                dictionary.entries[i].length for i, _pos in tokens
            )
            assert covered == len(block)

    def test_ablation_groups_off(self, mips_program):
        codec = MipsSadcCodec(enable_groups=False)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program
        assert all(
            entry.length == 1
            for entry in image.metadata["dictionary"].entries
        )

    def test_ablation_bindings_off(self, mips_program):
        codec = MipsSadcCodec(enable_reg_binding=False,
                              enable_imm_binding=False)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program
        assert all(
            not entry.bound_regs and not entry.bound_imm16
            and not entry.bound_imm26
            for entry in image.metadata["dictionary"].entries
        )

    def test_single_insert_mode(self, mips_program):
        # batch_inserts=1 is the paper's one-candidate-per-cycle loop.
        codec = MipsSadcCodec(batch_inserts=1, max_cycles=6)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_small_dictionary(self, mips_program):
        codec = MipsSadcCodec(max_entries=64)
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program
        assert len(image.metadata["dictionary"]) <= 64

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            MipsSadcCodec(block_size=30)

    def test_compresses(self, mips_program_large):
        image = MipsSadcCodec().compress(mips_program_large)
        assert image.payload_ratio < 0.7

    def test_beats_plain_singles(self, mips_program_large):
        rich = MipsSadcCodec().compress(mips_program_large)
        plain = MipsSadcCodec(
            enable_groups=False, enable_reg_binding=False,
            enable_imm_binding=False,
        ).compress(mips_program_large)
        assert rich.payload_ratio < plain.payload_ratio

    def test_block_size_variants(self, mips_program):
        for block_size in (16, 64):
            codec = MipsSadcCodec(block_size=block_size)
            image = codec.compress(mips_program)
            assert codec.decompress(image) == mips_program


class TestStaticDictionary:
    def test_covers_unseen_programs(self, mips_program, mips_program_large):
        codec = MipsSadcCodec()
        static = codec.build_static_dictionary([mips_program])
        # A dictionary trained on one program must still parse another.
        image = codec.compress(mips_program_large, dictionary=static)
        assert codec.decompress(image) == mips_program_large

    def test_seeds_every_mnemonic(self, mips_program):
        from repro.core.sadc.entry import DictEntry
        from repro.isa.mips.streams import ID_TO_SPEC

        codec = MipsSadcCodec(max_entries=512)
        static = codec.build_static_dictionary([mips_program])
        for opcode_id in ID_TO_SPEC:
            assert DictEntry(opcodes=(opcode_id,)) in static

    def test_semiadaptive_beats_static_on_held_out(
        self, mips_program, mips_program_large
    ):
        codec = MipsSadcCodec()
        static = codec.build_static_dictionary([mips_program])
        semiadaptive = codec.compress(mips_program_large).payload_ratio
        held_out = codec.compress(
            mips_program_large, dictionary=static
        ).payload_ratio
        assert semiadaptive <= held_out + 1e-9
