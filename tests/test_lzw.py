"""Tests for the LZW (UNIX compress) baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lzw import lzw_compress, lzw_decompress, lzw_ratio


class TestRoundtrip:
    def test_empty(self):
        assert lzw_decompress(lzw_compress(b"")) == b""

    def test_single_byte(self):
        assert lzw_decompress(lzw_compress(b"Q")) == b"Q"

    def test_repetitive(self):
        data = b"abcabcabc" * 500
        assert lzw_decompress(lzw_compress(data)) == data

    def test_all_byte_values(self):
        data = bytes(range(256)) * 4
        assert lzw_decompress(lzw_compress(data)) == data

    def test_kwkwk_pattern(self):
        # 'aaaa...' forces the code == next_code corner case immediately.
        data = b"a" * 1000
        assert lzw_decompress(lzw_compress(data)) == data

    def test_dictionary_reset_path(self):
        # Enough distinct material to fill 2^16 codes and force a CLEAR.
        rng = random.Random(11)
        data = bytes(rng.randrange(256) for _ in range(400_000))
        assert lzw_decompress(lzw_compress(data)) == data

    def test_generated_program(self, mips_program):
        assert lzw_decompress(lzw_compress(mips_program)) == mips_program


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=3000))
def test_roundtrip_property(data):
    assert lzw_decompress(lzw_compress(data)) == data


class TestCompressionBehaviour:
    def test_repetitive_compresses_well(self):
        data = b"the same phrase repeats " * 400
        assert lzw_ratio(data) < 0.25

    def test_random_data_does_not_compress(self):
        rng = random.Random(5)
        data = bytes(rng.randrange(256) for _ in range(20000))
        assert lzw_ratio(data) > 1.0  # 9+ bit codes for ~8-bit entropy

    def test_code_beats_random(self, mips_program):
        rng = random.Random(5)
        noise = bytes(rng.randrange(256) for _ in range(len(mips_program)))
        assert lzw_ratio(mips_program) < lzw_ratio(noise)

    def test_empty_ratio_is_one(self):
        assert lzw_ratio(b"") == 1.0


def test_invalid_code_rejected():
    # A header claiming content but a stream with an impossible code.
    from repro.bitstream.io import BitWriter

    writer = BitWriter()
    writer.write_bits(10, 32)       # length 10
    writer.write_bits(300, 9)       # code 300 before any entry exists
    with pytest.raises(ValueError):
        lzw_decompress(writer.getvalue())
