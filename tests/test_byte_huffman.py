"""Tests for the Kozuch & Wolfe byte-Huffman baseline."""

import random

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec, byte_huffman_ratio
from repro.entropy.stats import entropy_bits, frequencies


class TestRoundtrip:
    def test_program(self, mips_program):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program)
        assert codec.decompress(image) == mips_program

    def test_partial_final_block(self):
        codec = ByteHuffmanCodec(block_size=32)
        data = b"hello world, this is forty-one bytes now"  # not /32
        assert len(data) % 32 != 0
        image = codec.compress(data)
        assert codec.decompress(image) == data

    def test_random_access_block(self, mips_program):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program)
        index = image.block_count() // 2
        want = mips_program[index * 32 : (index + 1) * 32]
        assert codec.decompress_block(image, index) == want

    def test_block_out_of_range(self, mips_program):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program)
        with pytest.raises(IndexError):
            codec.decompress_block(image, image.block_count())


class TestRatios:
    def test_payload_tracks_byte_entropy(self, mips_program_large):
        codec = ByteHuffmanCodec()
        image = codec.compress(mips_program_large)
        h = entropy_bits(frequencies(mips_program_large))
        ideal = h / 8
        assert ideal <= image.payload_ratio <= ideal + 0.05

    def test_ratio_below_one_on_code(self, mips_program_large):
        assert byte_huffman_ratio(mips_program_large) < 0.95

    def test_random_data_near_one(self):
        rng = random.Random(2)
        data = bytes(rng.randrange(256) for _ in range(40000))
        assert byte_huffman_ratio(data) >= 0.98

    def test_empty(self):
        assert byte_huffman_ratio(b"") == 1.0

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            ByteHuffmanCodec(block_size=0)

    def test_block_size_tradeoff(self, mips_program_large):
        # Smaller blocks pay more per-block padding: ratio should not
        # improve when blocks shrink.
        small = ByteHuffmanCodec(16).compress(mips_program_large)
        large = ByteHuffmanCodec(64).compress(mips_program_large)
        assert small.payload_ratio >= large.payload_ratio - 1e-9
