"""Kernels + execution out of compressed memory (the Figure-1 loop)."""

import pytest

from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.core.sadc import MipsSadcCodec
from repro.core.samc import SamcCodec
from repro.isa.mips.interp import MipsMachine
from repro.memory.fetchsim import CompressedFetchPort, run_compressed
from repro.workloads.kernels import KERNELS, MEMCPY, run_kernel


class TestKernelsNative:
    """Each kernel runs correctly on the bare interpreter."""

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_kernel_correct(self, kernel):
        machine = run_kernel(kernel)
        assert machine.halted
        assert kernel.check(machine), f"{kernel.name} produced wrong result"

    def test_kernels_have_distinct_code(self):
        images = {kernel.name: kernel.code() for kernel in KERNELS}
        assert len(set(images.values())) == len(images)


def _run_through(kernel, image):
    machine = MipsMachine()
    machine.load_code(kernel.code())
    kernel.setup(machine)
    return machine, run_compressed(image, machine, cache_size=256)


class TestExecutionFromCompressedMemory:
    """Every fetch decompresses through the real codec; results must be
    bit-identical to native execution."""

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_samc(self, kernel):
        image = SamcCodec.for_mips().compress(kernel.code())
        machine, result = _run_through(kernel, image)
        assert machine.halted
        assert kernel.check(machine)
        assert result.refills > 0

    @pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
    def test_sadc(self, kernel):
        image = MipsSadcCodec().compress(kernel.code())
        machine, result = _run_through(kernel, image)
        assert kernel.check(machine)

    def test_byte_huffman(self):
        image = ByteHuffmanCodec().compress(MEMCPY.code())
        machine, result = _run_through(MEMCPY, image)
        assert MEMCPY.check(machine)

    def test_same_results_as_native(self):
        native = run_kernel(MEMCPY)
        image = SamcCodec.for_mips().compress(MEMCPY.code())
        compressed_machine, _result = _run_through(MEMCPY, image)
        assert compressed_machine.state().registers == \
            native.state().registers
        assert compressed_machine.memory == native.memory

    def test_fetch_cycle_accounting(self):
        image = SamcCodec.for_mips().compress(MEMCPY.code())
        _machine, result = _run_through(MEMCPY, image)
        # Every instruction costs at least one fetch cycle; refills add more.
        assert result.fetch_cycles >= result.instructions
        assert 0.0 < result.hit_ratio <= 1.0
        assert result.fetch_cycles_per_instruction >= 1.0

    def test_tight_loops_hit_in_cache(self):
        image = SamcCodec.for_mips().compress(MEMCPY.code())
        _machine, result = _run_through(MEMCPY, image)
        # memcpy is one small loop: after the first refills, everything hits.
        assert result.hit_ratio > 0.95
        assert result.refills <= 2 * image.block_count()


class TestFetchPort:
    def test_unknown_algorithm_rejected(self):
        from repro.core.lat import CompressedImage

        image = CompressedImage("mystery", 32, 32, [b"x"], 0)
        with pytest.raises(ValueError):
            CompressedFetchPort(image)
