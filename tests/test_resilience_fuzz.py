"""Property-based hardening tests: decode(arbitrary bytes) never leaks.

For every byte-stream decoder in the repo, feeding *any* byte string
must either produce output or raise :class:`CorruptedStreamError` —
never a raw ``IndexError``/``KeyError``/``struct.error``/``EOFError``,
never a hang (each example runs under a Hypothesis deadline), never an
unbounded allocation.  These are the same contracts the seeded fuzz
driver (``python -m repro fuzz``) checks on realistic corrupted
artifacts; here Hypothesis explores the pathological corners.
"""

from datetime import timedelta

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
from repro.baselines.lzw import lzw_compress, lzw_decompress
from repro.core.serialize import deserialize_image
from repro.resilience import CorruptedStreamError, unwrap_frame, wrap_frame

#: Per-example wall-clock bound: a decoder that loops forever fails the
#: deadline instead of hanging the suite.
FUZZ_SETTINGS = settings(
    max_examples=120,
    deadline=timedelta(seconds=2),
    suppress_health_check=[HealthCheck.filter_too_much],
)

arbitrary_bytes = st.binary(min_size=0, max_size=512)


def _decodes_or_detects(decode, data):
    """The decode contract: output or CorruptedStreamError, nothing else."""
    try:
        out = decode(data)
    except CorruptedStreamError:
        return
    assert isinstance(out, bytes)


class TestArbitraryBytes:
    @FUZZ_SETTINGS
    @given(arbitrary_bytes)
    def test_lzw(self, data):
        _decodes_or_detects(lzw_decompress, data)

    @FUZZ_SETTINGS
    @given(arbitrary_bytes)
    def test_gzipish(self, data):
        _decodes_or_detects(gzipish_decompress, data)

    @FUZZ_SETTINGS
    @given(arbitrary_bytes)
    def test_unwrap_frame(self, data):
        try:
            payload = unwrap_frame(data)
        except CorruptedStreamError:
            return
        assert isinstance(payload, bytes)

    @FUZZ_SETTINGS
    @given(arbitrary_bytes)
    def test_deserialize_image(self, data):
        try:
            image = deserialize_image(data)
        except CorruptedStreamError:
            return
        assert image.algorithm


class TestMutatedValidStreams:
    """Start from a valid artifact and let Hypothesis mutate it — closer
    to real corruption than uniform noise, and it exercises the deeper
    layers the magic checks would otherwise shield."""

    PLAINTEXT = b"embedded systems code compression " * 30

    @FUZZ_SETTINGS
    @given(st.data())
    def test_lzw_mutations(self, data):
        valid = lzw_compress(self.PLAINTEXT)
        mutated = self._mutate(data, valid)
        _decodes_or_detects(lzw_decompress, mutated)

    @FUZZ_SETTINGS
    @given(st.data())
    def test_gzipish_mutations(self, data):
        valid = gzipish_compress(self.PLAINTEXT)
        mutated = self._mutate(data, valid)
        _decodes_or_detects(gzipish_decompress, mutated)

    @FUZZ_SETTINGS
    @given(st.data())
    def test_framed_mutations_roundtrip_or_detect(self, data):
        framed = wrap_frame(lzw_compress(self.PLAINTEXT))
        mutated = self._mutate(data, framed)
        try:
            payload = unwrap_frame(mutated)
        except CorruptedStreamError:
            return
        # The CRC accepted it: it must be the original payload (a crafted
        # collision is out of scope for CRC-32, and Hypothesis mutations
        # won't find one) and therefore decode exactly.
        assert lzw_decompress(payload) == self.PLAINTEXT

    @staticmethod
    def _mutate(data, valid: bytes) -> bytes:
        draw = data.draw
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:  # flip one byte
            index = draw(st.integers(0, len(valid) - 1))
            value = draw(st.integers(1, 255))
            out = bytearray(valid)
            out[index] ^= value
            return bytes(out)
        if choice == 1:  # truncate
            return valid[: draw(st.integers(0, len(valid) - 1))]
        # splice arbitrary bytes somewhere inside
        index = draw(st.integers(0, len(valid)))
        blob = draw(st.binary(min_size=1, max_size=16))
        return valid[:index] + blob + valid[index:]


class TestRoundtripsStillExact:
    """Hardening must not perturb correct decodes."""

    @FUZZ_SETTINGS
    @given(st.binary(min_size=0, max_size=256))
    def test_lzw_roundtrip(self, data):
        assert lzw_decompress(lzw_compress(data)) == data

    @FUZZ_SETTINGS
    @given(st.binary(min_size=0, max_size=256))
    def test_gzipish_roundtrip(self, data):
        assert gzipish_decompress(gzipish_compress(data)) == data

    @FUZZ_SETTINGS
    @given(st.binary(min_size=0, max_size=256))
    def test_frame_roundtrip(self, data):
        assert unwrap_frame(wrap_frame(data)) == data
