"""Tests for the LAT, compacted LAT, and compressed-image accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lat import (
    CompactLAT,
    CompressedImage,
    build_lat,
    original_block_count,
    split_blocks,
)


class TestLineAddressTable:
    def test_offsets_are_prefix_sums(self):
        lat = build_lat([10, 20, 5])
        assert list(lat.offsets) == [0, 10, 30]
        assert lat.payload_bytes == 35

    def test_block_span(self):
        lat = build_lat([10, 20, 5])
        assert lat.block_span(0) == (0, 10)
        assert lat.block_span(2) == (30, 35)

    def test_entry_bits_scale_with_payload(self):
        small = build_lat([4] * 4)
        big = build_lat([1000] * 100)
        assert big.entry_bits > small.entry_bits

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            build_lat([-1])

    def test_storage_accounting(self):
        lat = build_lat([100] * 16)
        assert lat.storage_bits == 16 * lat.entry_bits
        assert lat.storage_bytes == (lat.storage_bits + 7) // 8


class TestCompactLAT:
    def _make(self, sizes, group=8):
        lat = build_lat(sizes)
        return CompactLAT(lat.offsets, tuple(sizes), lat.payload_bytes, group)

    def test_offsets_match_plain_lat(self):
        sizes = [17, 23, 9, 31, 12, 18, 25, 8, 14, 29]
        plain = build_lat(sizes)
        compact = self._make(sizes)
        for i in range(len(sizes)):
            assert compact.block_offset(i) == plain.block_offset(i)

    def test_compact_smaller_than_plain_for_large_programs(self):
        sizes = [20 + (i % 13) for i in range(4000)]
        plain = build_lat(sizes)
        compact = self._make(sizes)
        assert compact.storage_bits < plain.storage_bits

    def test_length_bits_cover_largest_block(self):
        compact = self._make([1, 2, 63])
        assert (1 << compact.length_bits) > 63


@given(st.lists(st.integers(0, 64), min_size=1, max_size=200))
def test_compact_lat_offsets_property(sizes):
    plain = build_lat(sizes)
    compact = CompactLAT(plain.offsets, tuple(sizes), plain.payload_bytes)
    assert all(
        compact.block_offset(i) == plain.block_offset(i)
        for i in range(len(sizes))
    )


class TestCompressedImage:
    def _image(self):
        return CompressedImage(
            algorithm="test",
            original_size=128,
            block_size=32,
            blocks=[b"a" * 10, b"b" * 20, b"c" * 5, b"d" * 15],
            model_bytes=100,
        )

    def test_payload_and_total(self):
        image = self._image()
        assert image.payload_bytes == 50
        assert image.total_bytes == 50 + 100 + image.compact_lat.storage_bytes

    def test_ratio(self):
        image = self._image()
        assert image.compression_ratio == image.total_bytes / 128
        assert image.payload_ratio == 50 / 128

    def test_zero_original(self):
        image = CompressedImage("t", 0, 32, [], 0)
        assert image.compression_ratio == 1.0
        assert image.payload_ratio == 1.0

    def test_describe_mentions_parts(self):
        text = self._image().describe()
        assert "payload" in text and "LAT" in text and "ratio" in text


class TestHelpers:
    def test_original_block_count(self):
        assert original_block_count(64, 32) == 2
        assert original_block_count(65, 32) == 3
        assert original_block_count(0, 32) == 0

    def test_original_block_count_bad_size(self):
        with pytest.raises(ValueError):
            original_block_count(10, 0)

    def test_split_blocks(self):
        blocks = split_blocks(b"x" * 70, 32)
        assert [len(b) for b in blocks] == [32, 32, 6]

    def test_split_blocks_bad_size(self):
        with pytest.raises(ValueError):
            split_blocks(b"x", -1)
