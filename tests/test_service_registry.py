"""Warm-model-registry regressions: trained exactly once, memory bounded.

The registry's whole reason to exist is amortisation — the SAMC
training pass must run once per distinct input, not once per request —
and boundedness — a daemon serving arbitrary inputs must not grow its
model cache without limit.  Both properties are asserted two ways: on
the registry directly (through :mod:`repro.obs` counters), and through
the wire via the ``stats`` endpoint of a live daemon.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.samc import SamcCodec
from repro.obs import Recorder, use_recorder
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    WarmModelRegistry,
)


class TestRegistryUnit:
    def test_trained_exactly_once_across_requests(self, mips_program):
        registry = WarmModelRegistry()
        codec = SamcCodec.for_bytes()
        with use_recorder(Recorder()) as rec:
            models = [
                registry.model_for("samc-bytes", codec, mips_program)
                for _ in range(10)
            ]
            counters = rec.snapshot()["counters"]
        assert counters["service.registry.train"] == 1
        assert counters["service.registry.hit"] == 9
        # Every request got the very same frozen model object.
        assert all(model is models[0] for model in models)
        assert models[0].frozen

    def test_trained_exactly_once_under_concurrency(self, mips_program):
        registry = WarmModelRegistry()
        codec = SamcCodec.for_bytes()
        results = []
        with use_recorder(Recorder()) as rec:
            def fetch() -> None:
                results.append(
                    registry.model_for("samc-bytes", codec, mips_program)
                )

            threads = [threading.Thread(target=fetch) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            counters = rec.snapshot()["counters"]
        assert counters["service.registry.train"] == 1
        assert len(results) == 8
        assert all(model is results[0] for model in results)

    def test_distinct_inputs_train_distinct_models(self, mips_program):
        registry = WarmModelRegistry()
        codec = SamcCodec.for_bytes()
        a = registry.model_for("samc-bytes", codec, mips_program)
        b = registry.model_for("samc-bytes", codec, mips_program[:512])
        assert a is not b
        assert registry.stats()["trained"] == 2

    def test_codec_name_is_part_of_the_key(self, mips_program):
        registry = WarmModelRegistry()
        a = registry.model_for(
            "samc-mips", SamcCodec.for_mips(), mips_program
        )
        b = registry.model_for(
            "samc-bytes", SamcCodec.for_bytes(), mips_program
        )
        assert a is not b

    def test_eviction_keeps_memory_bounded(self, mips_program):
        registry = WarmModelRegistry(max_entries=4)
        codec = SamcCodec.for_bytes()
        with use_recorder(Recorder()) as rec:
            for index in range(12):
                payload = bytes([index]) * 8 + mips_program[:256]
                registry.model_for("samc-bytes", codec, payload)
            counters = rec.snapshot()["counters"]
        stats = registry.stats()
        assert len(registry) == 4
        assert stats["entries"] == 4
        assert stats["trained"] == 12
        assert stats["evictions"] == 8
        assert counters["service.registry.evict"] == 8

    def test_lru_evicts_the_coldest(self, mips_program):
        registry = WarmModelRegistry(max_entries=2)
        codec = SamcCodec.for_bytes()
        a, b, c = (
            bytes([mark]) * 4 + mips_program[:256] for mark in (1, 2, 3)
        )
        model_a = registry.model_for("samc-bytes", codec, a)
        registry.model_for("samc-bytes", codec, b)
        # Touch `a` so `b` is now coldest; inserting `c` must evict `b`.
        assert registry.model_for("samc-bytes", codec, a) is model_a
        registry.model_for("samc-bytes", codec, c)
        assert registry.model_for("samc-bytes", codec, a) is model_a
        assert registry.stats()["trained"] == 3  # a, b, c — never a again

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WarmModelRegistry(max_entries=0)


class TestRegistryThroughTheWire:
    def test_n_requests_one_training_pass(self, mips_program):
        with ServerThread(ServiceConfig(port=0)) as address:
            with ServiceClient(*address) as client:
                blobs = [
                    client.compress("samc-bytes", mips_program[:1024])
                    for _ in range(6)
                ]
                registry = client.stats()["registry"]
        # Identical input, identical archive — and one training pass.
        assert len(set(blobs)) == 1
        assert registry["trained"] == 1
        assert registry["hits"] == 5

    def test_wire_eviction_bound(self, mips_program):
        config = ServiceConfig(port=0, registry_entries=3)
        with ServerThread(config) as address:
            with ServiceClient(*address) as client:
                for index in range(7):
                    payload = bytes([index]) * 4 + mips_program[:512]
                    client.compress("samc-bytes", payload)
                registry = client.stats()["registry"]
        assert registry["entries"] == 3
        assert registry["max_entries"] == 3
        assert registry["trained"] == 7
        assert registry["evictions"] == 4
