"""Differential pinning of the file-oriented baselines against zlib.

The figures compare SAMC/SADC against ``compress`` (our LZW) and
``gzip`` (our LZSS+Huffman).  Golden-number tests would pin exact ratios
and silently rot if a workload generator tweak shifted them; instead we
pin each baseline's *relationship* to stdlib ``zlib.compress`` on the
same bytes.  A real regression in either coder (broken match finder,
bloated tables, mis-sized headers) moves the relative band far more than
any legitimate workload drift can.

Empirical anchors (scale 0.4, seed 0): gzipish/zlib lands in
[1.02, 1.18] and lzw/zlib in [1.26, 1.66] across the MIPS and x86
suites; the bands below leave margin on both sides without letting a
structural regression through.
"""

import zlib

import pytest

from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
from repro.baselines.lzw import lzw_compress, lzw_decompress
from repro.workloads.suite import generate_benchmark

WORKLOADS = [
    (benchmark, isa)
    for benchmark in ("compress", "gcc", "ijpeg")
    for isa in ("mips", "x86")
]


def _code(benchmark: str, isa: str) -> bytes:
    return generate_benchmark(benchmark, isa, scale=0.3, seed=0).code


@pytest.mark.parametrize("bench,isa", WORKLOADS)
def test_gzipish_tracks_zlib(bench, isa):
    code = _code(bench, isa)
    ours = len(gzipish_compress(code)) / len(code)
    reference = len(zlib.compress(code, 9)) / len(code)
    assert ours < 1.0, "gzipish failed to compress code at all"
    # Simplified DEFLATE: never better than ~5% under zlib -9, never
    # more than ~40% worse (one Huffman pass, no lazy matching).
    assert 0.95 <= ours / reference <= 1.40, (
        f"{bench}/{isa}: gzipish {ours:.3f} vs zlib {reference:.3f} "
        f"(ratio {ours / reference:.2f} outside band)"
    )


@pytest.mark.parametrize("bench,isa", WORKLOADS)
def test_lzw_tracks_zlib(bench, isa):
    code = _code(bench, isa)
    ours = len(lzw_compress(code)) / len(code)
    reference = len(zlib.compress(code, 9)) / len(code)
    assert ours < 1.0, "LZW failed to compress code at all"
    # compress(1)-family LZW has no entropy stage: consistently behind
    # zlib, but never by more than ~2x on code images.
    assert 1.00 <= ours / reference <= 2.00, (
        f"{bench}/{isa}: lzw {ours:.3f} vs zlib {reference:.3f} "
        f"(ratio {ours / reference:.2f} outside band)"
    )


@pytest.mark.parametrize("bench,isa", WORKLOADS[:2])
def test_baselines_still_roundtrip(bench, isa):
    """The ratio bands mean nothing if the coders stop being lossless."""
    code = _code(bench, isa)
    assert gzipish_decompress(gzipish_compress(code)) == code
    assert lzw_decompress(lzw_compress(code)) == code
