"""Tests for the gzip stand-in (LZSS + canonical Huffman)."""

import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gzipish import (
    _distance_symbol,
    _length_symbol,
    gzipish_compress,
    gzipish_decompress,
    gzipish_ratio,
)


class TestBinning:
    def test_length_bins_cover_range(self):
        for length in range(3, 259):
            symbol, extra, value = _length_symbol(length)
            assert 257 <= symbol <= 285
            assert 0 <= value < (1 << extra) or extra == 0 and value == 0

    def test_length_bin_roundtrip(self):
        from repro.baselines.gzipish import _LENGTH_BY_SYMBOL

        for length in range(3, 259):
            symbol, extra, value = _length_symbol(length)
            _extra, base = _LENGTH_BY_SYMBOL[symbol]
            assert base + value == length

    def test_distance_bins_cover_range(self):
        from repro.baselines.gzipish import _DISTANCE_BY_SYMBOL

        for distance in (1, 2, 3, 4, 5, 100, 1024, 32768):
            symbol, extra, value = _distance_symbol(distance)
            _extra, base = _DISTANCE_BY_SYMBOL[symbol]
            assert base + value == distance

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            _length_symbol(2)
        with pytest.raises(ValueError):
            _distance_symbol(0)


class TestRoundtrip:
    def test_empty(self):
        assert gzipish_decompress(gzipish_compress(b"")) == b""

    def test_single_byte(self):
        assert gzipish_decompress(gzipish_compress(b"k")) == b"k"

    def test_text(self):
        data = b"a man a plan a canal panama " * 100
        assert gzipish_decompress(gzipish_compress(data)) == data

    def test_binary(self):
        rng = random.Random(3)
        data = bytes(rng.randrange(256) for _ in range(10000))
        assert gzipish_decompress(gzipish_compress(data)) == data

    def test_long_matches(self):
        data = b"\x00" * 5000
        assert gzipish_decompress(gzipish_compress(data)) == data

    def test_program(self, mips_program):
        assert gzipish_decompress(gzipish_compress(mips_program)) == mips_program


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=2000))
def test_roundtrip_property(data):
    assert gzipish_decompress(gzipish_compress(data)) == data


class TestQuality:
    def test_tracks_zlib_on_code(self, mips_program_large):
        ours = gzipish_ratio(mips_program_large)
        zlibs = len(zlib.compress(mips_program_large, 9)) / len(mips_program_large)
        # Within 15% relative of a production DEFLATE at max effort.
        assert ours <= zlibs * 1.15

    def test_beats_raw_on_repetitive(self):
        data = b"0123456789abcdef" * 500
        assert gzipish_ratio(data) < 0.1

    def test_near_raw_on_random(self):
        rng = random.Random(1)
        data = bytes(rng.randrange(256) for _ in range(20000))
        assert 0.95 < gzipish_ratio(data) < 1.1

    def test_empty_ratio(self):
        assert gzipish_ratio(b"") == 1.0
