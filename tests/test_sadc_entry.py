"""Tests for SADC dictionary entries and the dictionary container."""

import pytest

from repro.core.sadc.entry import (
    BOUND_IMM16_BITS,
    BOUND_REG_BITS,
    OPCODE_BITS,
    DictEntry,
    Dictionary,
)


class TestDictEntry:
    def test_single_opcode_storage(self):
        entry = DictEntry(opcodes=(5,))
        assert entry.length == 1
        assert entry.storage_bits == OPCODE_BITS

    def test_concat_shifts_bindings(self):
        left = DictEntry(opcodes=(1,), bound_regs=((0, 0, 31),))
        right = DictEntry(opcodes=(2, 3), bound_imm16=((1, 0x10),))
        merged = left.concat(right)
        assert merged.opcodes == (1, 2, 3)
        assert merged.bound_regs == ((0, 0, 31),)
        assert merged.bound_imm16 == ((2, 0x10),)  # shifted by left length

    def test_bind_reg(self):
        entry = DictEntry(opcodes=(7,)).bind_reg(0, 1, 29)
        assert entry.reg_binding(0, 1) == 29
        assert entry.reg_binding(0, 0) is None
        assert entry.storage_bits == OPCODE_BITS + BOUND_REG_BITS

    def test_double_bind_rejected(self):
        entry = DictEntry(opcodes=(7,)).bind_reg(0, 1, 29)
        with pytest.raises(ValueError):
            entry.bind_reg(0, 1, 30)

    def test_bind_imm16(self):
        entry = DictEntry(opcodes=(7,)).bind_imm16(0, 0xFFF8)
        assert entry.imm16_binding(0) == 0xFFF8
        assert entry.storage_bits == OPCODE_BITS + BOUND_IMM16_BITS
        with pytest.raises(ValueError):
            entry.bind_imm16(0, 0)

    def test_bind_imm26(self):
        entry = DictEntry(opcodes=(7,)).bind_imm26(0, 0x40)
        assert entry.imm26_binding(0) == 0x40
        with pytest.raises(ValueError):
            entry.bind_imm26(0, 1)

    def test_hashable_for_dedup(self):
        a = DictEntry(opcodes=(1, 2))
        b = DictEntry(opcodes=(1, 2))
        assert a == b and hash(a) == hash(b)


class TestDictionary:
    def test_add_and_lookup(self):
        dictionary = Dictionary()
        index = dictionary.add(DictEntry(opcodes=(3,)))
        assert index == 0
        assert DictEntry(opcodes=(3,)) in dictionary
        assert len(dictionary) == 1

    def test_add_idempotent(self):
        dictionary = Dictionary()
        first = dictionary.add(DictEntry(opcodes=(3,)))
        second = dictionary.add(DictEntry(opcodes=(3,)))
        assert first == second
        assert len(dictionary) == 1

    def test_capacity_enforced(self):
        dictionary = Dictionary(max_entries=2)
        dictionary.add(DictEntry(opcodes=(0,)))
        dictionary.add(DictEntry(opcodes=(1,)))
        assert dictionary.is_full
        with pytest.raises(ValueError):
            dictionary.add(DictEntry(opcodes=(2,)))

    def test_candidates_longest_first(self):
        dictionary = Dictionary()
        dictionary.add(DictEntry(opcodes=(5,)))
        dictionary.add(DictEntry(opcodes=(5, 6, 7)))
        dictionary.add(DictEntry(opcodes=(5, 6)))
        candidates = dictionary.candidates_starting_with(5)
        lengths = [dictionary.entries[i].length for i in candidates]
        assert lengths == sorted(lengths, reverse=True)

    def test_bound_entries_before_plain_of_same_length(self):
        dictionary = Dictionary()
        plain = dictionary.add(DictEntry(opcodes=(5,)))
        bound = dictionary.add(DictEntry(opcodes=(5,)).bind_reg(0, 0, 31))
        candidates = dictionary.candidates_starting_with(5)
        assert candidates.index(bound) < candidates.index(plain)

    def test_storage_bits_sums_entries(self):
        dictionary = Dictionary()
        dictionary.add(DictEntry(opcodes=(1,)))
        dictionary.add(DictEntry(opcodes=(1, 2)))
        assert dictionary.storage_bits == OPCODE_BITS * 3

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Dictionary(max_entries=0)

    def test_candidates_for_unknown_opcode(self):
        assert Dictionary().candidates_starting_with(9) == []
