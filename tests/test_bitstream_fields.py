"""Unit and property tests for bit-field gather/scatter helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitstream.fields import (
    bits_to_word,
    chunk_words,
    deposit_bits,
    extract_bits,
    sign_extend,
    word_to_bits,
    words_to_bytes,
)


class TestExtractDeposit:
    def test_extract_contiguous_opcode_field(self):
        # Top 6 bits of a MIPS word are positions 0..5.
        word = 0x23BD0010  # addiu-ish: op=0x08|..
        assert extract_bits(word, range(0, 6), 32) == word >> 26

    def test_extract_non_adjacent(self):
        word = 0b10000001
        assert extract_bits(word, (0, 7), 8) == 0b11

    def test_deposit_inverts_extract(self):
        positions = (3, 0, 7, 5)
        value = 0b1011
        word = deposit_bits(value, positions, 8)
        assert extract_bits(word, positions, 8) == value

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(0, [8], 8)
        with pytest.raises(ValueError):
            deposit_bits(0, [8], 8)

    def test_duplicate_position_rejected(self):
        # A repeated position cannot round-trip (the second write would
        # clobber the first), so both directions refuse it outright.
        with pytest.raises(ValueError, match="duplicate bit position 3"):
            extract_bits(0xFF, (0, 3, 3), 8)
        with pytest.raises(ValueError, match="duplicate bit position 3"):
            deposit_bits(0b101, (0, 3, 3), 8)

    def test_duplicate_rejected_even_when_bits_agree(self):
        # Rejection is structural, not value-dependent: depositing the
        # same bit value twice at one position is still an error.
        with pytest.raises(ValueError):
            deposit_bits(0b00, (5, 5), 8)


@given(st.integers(0, 2**32 - 1), st.permutations(list(range(32))))
def test_extract_deposit_roundtrip_full_word(word, order):
    value = extract_bits(word, order, 32)
    assert deposit_bits(value, order, 32) == word


@given(st.integers(0, 2**16 - 1))
def test_word_bits_roundtrip(word):
    assert bits_to_word(word_to_bits(word, 16)) == word


class TestSignExtend:
    @pytest.mark.parametrize(
        "value,width,expected",
        [(0x7FFF, 16, 32767), (0x8000, 16, -32768), (0xFFFF, 16, -1),
         (0, 16, 0), (0xFF, 8, -1), (0x7F, 8, 127)],
    )
    def test_values(self, value, width, expected):
        assert sign_extend(value, width) == expected

    def test_masks_extra_bits(self):
        assert sign_extend(0x1_0001, 16) == 1


class TestChunkWords:
    def test_roundtrip(self):
        data = bytes(range(16))
        words = chunk_words(data, 4)
        assert words[0] == 0x00010203
        assert words_to_bytes(words, 4) == data

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            chunk_words(b"\x00" * 5, 4)

    def test_empty(self):
        assert chunk_words(b"", 4) == []


@given(st.binary(max_size=64).filter(lambda b: len(b) % 4 == 0))
def test_chunk_words_roundtrip_property(data):
    assert words_to_bytes(chunk_words(data, 4), 4) == data
