"""Tests for the x86 interpreter, mini-assembler, and kernels."""

import pytest

from repro.core.samc import SamcCodec
from repro.isa.x86.interp import (
    EAX, EBX, ECX, EDX, ESI, ESP,
    X86Machine,
    X86MachineError,
)
from repro.memory.fetchsim import CompressedFetchPort
from repro.workloads.x86_kernels import (
    CC,
    JccTo,
    JmpTo,
    Label,
    X86_KERNELS,
    alu_ri8,
    alu_rr,
    assemble,
    dec,
    mov_r_mem,
    mov_ri,
    mov_rr,
    ret,
    run_x86_kernel,
)


def run_items(items, setup=None):
    machine = X86Machine(memory_size=1 << 16)
    machine.load_code(assemble(list(items)))
    if setup:
        setup(machine)
    machine.run(max_instructions=100_000)
    return machine


class TestAssembler:
    def test_label_resolution_forward_and_back(self):
        code = assemble([
            Label("start"),
            mov_ri(EAX, 1),
            JmpTo("end"),
            mov_ri(EAX, 2),
            Label("end"),
            ret(),
        ])
        machine = X86Machine(memory_size=1 << 16)
        machine.load_code(code)
        machine.run()
        assert machine.regs[EAX] == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(ValueError):
            assemble([Label("x"), Label("x"), ret()])

    def test_out_of_range_branch_rejected(self):
        items = [JmpTo("far")] + [mov_ri(EAX, 0)] * 40 + [Label("far"), ret()]
        with pytest.raises(ValueError):
            assemble(items)


class TestSemantics:
    def test_mov_and_alu(self):
        m = run_items([
            mov_ri(EAX, 10),
            mov_ri(EBX, 3),
            alu_rr(0x29, EAX, EBX),  # sub eax, ebx
            ret(),
        ])
        assert m.regs[EAX] == 7

    def test_memory_roundtrip(self):
        def setup(machine):
            machine.write32(0x800, 0xDEADBEEF)
            machine.regs[ESI] = 0x800

        m = run_items([mov_r_mem(EDX, ESI), ret()], setup=setup)
        assert m.regs[EDX] == 0xDEADBEEF

    def test_flags_signed_compare(self):
        m = run_items([
            mov_ri(EAX, -5),
            alu_ri8(7, EAX, 3),          # cmp eax, 3
            JccTo(CC["l"], "less"),
            mov_ri(EBX, 0),
            JmpTo("end"),
            Label("less"),
            mov_ri(EBX, 1),
            Label("end"),
            ret(),
        ])
        assert m.regs[EBX] == 1

    def test_loop_with_dec(self):
        m = run_items([
            mov_ri(ECX, 5),
            mov_ri(EAX, 0),
            Label("loop"),
            alu_ri8(7, ECX, 0),
            JccTo(CC["le"], "done"),
            alu_rr(0x01, EAX, ECX),      # eax += ecx
            dec(ECX),
            JmpTo("loop"),
            Label("done"),
            ret(),
        ])
        assert m.regs[EAX] == 15

    def test_push_pop_stack(self):
        from repro.workloads.x86_kernels import X86Instruction

        m = run_items([
            mov_ri(EAX, 0x1234),
            X86Instruction(opcode=b"\x50"),  # push eax
            mov_ri(EAX, 0),
            X86Instruction(opcode=b"\x5b"),  # pop ebx
            ret(),
        ])
        assert m.regs[EBX] == 0x1234

    def test_ret_at_depth_zero_halts(self):
        m = run_items([ret()])
        assert m.halted

    def test_unsupported_sib_raises(self):
        machine = X86Machine(memory_size=1 << 16)
        machine.load_code(b"\x8b\x04\x24\xc3")  # mov eax, [esp]
        with pytest.raises(X86MachineError):
            machine.run()

    def test_budget_enforced(self):
        machine = X86Machine(memory_size=1 << 16)
        machine.load_code(assemble([Label("x"), JmpTo("x")]))
        with pytest.raises(X86MachineError):
            machine.run(max_instructions=50)

    def test_esp_initialised_high(self):
        machine = X86Machine(memory_size=1 << 16)
        assert machine.regs[ESP] > 0xF000


class TestKernels:
    @pytest.mark.parametrize("kernel", X86_KERNELS, ids=lambda k: k.name)
    def test_kernel_native(self, kernel):
        machine = run_x86_kernel(kernel)
        assert machine.halted
        assert kernel.check(machine), f"{kernel.name} wrong result"

    @pytest.mark.parametrize("kernel", X86_KERNELS, ids=lambda k: k.name)
    def test_kernel_through_compressed_memory(self, kernel):
        code = kernel.code()
        image = SamcCodec.for_bytes().compress(code)
        port = CompressedFetchPort(image, cache_size=256)
        machine = X86Machine(fetch_bytes=port.fetch_bytes)
        machine.load_code(code)
        kernel.setup(machine)
        machine.run()
        assert kernel.check(machine)
        assert port.refills > 0

    def test_compressed_equals_native(self):
        kernel = X86_KERNELS[0]
        native = run_x86_kernel(kernel)
        image = SamcCodec.for_bytes().compress(kernel.code())
        port = CompressedFetchPort(image, cache_size=256)
        machine = X86Machine(fetch_bytes=port.fetch_bytes)
        machine.load_code(kernel.code())
        kernel.setup(machine)
        machine.run()
        assert machine.regs == native.regs
