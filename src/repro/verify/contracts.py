"""Whole-program contract analyses over the project call graph.

Layer 3 of ``repro check``: four interprocedural analyses that compose
the per-function dataflow facts from :mod:`repro.verify.flow` over the
call graph from :mod:`repro.verify.callgraph`.

Analyses are *configured in the source tree itself* with contract
annotations — a comment on (or directly above) a ``def``::

    def deserialize_image(data):  # repro: contract decode-entry
        ...

* ``decode-entry`` marks a function that receives untrusted wire data.
  Everything reachable from it is checked by the **exception-leak**
  analysis (no low-level raise may escape without ``decode_guard`` /
  ``CorruptedStreamError``) and the **loop-progress** analysis (every
  ``while`` loop needs a progress metric; wire-derived loop bounds need
  a dominating budget check).
* ``determinism-sink`` marks a function whose output must be
  bit-reproducible (fingerprints, serialisation, telemetry merging).
  The **determinism-taint** analysis reports nondeterminism sources
  (``os.environ``, wall clock, unordered iteration, unseeded RNG)
  anywhere in the sink's precisely-resolved call closure.
* The **dual-path** analysis needs no annotation: it pairs every
  ``*_blocks`` batch entry point (and every fastpath ``*_fast`` kernel)
  with its scalar oracle by naming convention and diffs their surfaces.

Soundness/precision tradeoffs, in one place:

* Reachability over-approximates (dynamic-dispatch fallback edges), so
  exception-leak and loop-progress cannot *miss* a decode-reachable
  function — they may visit too many, which only ever surfaces real
  code.
* The taint sink closure under-approximates on purpose: it follows
  only precisely-resolved edges (same-module, ``self``, imports), not
  name-match fallbacks, because a false "your fingerprint is
  nondeterministic" on an unrelated same-named helper costs more than
  the marginal recall.
* All per-function recognisers are heuristic; anything they cannot
  prove is a finding for a human to fix, ``# repro: noqa``, or accept
  into the committed baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.verify import SEVERITY_ERROR, Finding
from repro.verify.callgraph import (
    CallGraph,
    FunctionInfo,
    build_callgraph,
)
from repro.verify.flow import (
    RiskyOp,
    analyze_taint,
    collect_safe_exceptions,
    loop_issues,
    protection_map,
    protects_against,
    raised_names,
    risky_ops,
)
from repro.verify.lint import ParsedModule, ProjectRule

CONTRACT_MARKER = "# repro: contract"

CONTRACT_DECODE_ENTRY = "decode-entry"
CONTRACT_DETERMINISM_SINK = "determinism-sink"
KNOWN_CONTRACTS = frozenset({
    CONTRACT_DECODE_ENTRY,
    CONTRACT_DETERMINISM_SINK,
})

#: Module prefixes where loop findings are reported.  Decode
#: reachability (with its fallback edges) can brush against scheduler
#: and server loops whose termination is an operational concern, not a
#: wire-data one; the codec/wire packages are where the contract bites.
LOOP_SCOPES = (
    "core/",
    "baselines/",
    "entropy/",
    "bitstream/",
    "fastpath/",
    "resilience/",
    "service/",
    "isa/",
)

#: Module prefixes scanned for batch/fastpath dual-path surfaces.
DUAL_PATH_SCOPES = ("core/", "baselines/", "fastpath/", "service/")

#: The blessed clock module: wall-clock reads inside it are the point.
CLOCK_MODULE_RELPATH = "obs/clock.py"

#: Exceptions a batch entry may raise beyond its scalar oracle's
#: surface without drifting: the structured decode error is always
#: legal, and NotImplementedError marks an honest capability gap.
_DUAL_PATH_ALLOWED = frozenset({"CorruptedStreamError", "NotImplementedError"})


def _contract_on_line(line: str) -> Optional[str]:
    """The contract name on a line, '' if the marker has no name."""
    idx = line.find(CONTRACT_MARKER)
    if idx < 0:
        return None
    rest = line[idx + len(CONTRACT_MARKER):].strip()
    if not rest:
        return ""
    return rest.split()[0]


def _function_contracts(
    module: ParsedModule, info: FunctionInfo
) -> List[Tuple[str, int]]:
    """Contract names attached to this def: trailing on the def line,
    or a standalone comment line directly above the def/decorators."""
    node = info.node
    out: List[Tuple[str, int]] = []
    def_line = info.lineno
    if 1 <= def_line <= len(module.lines):
        name = _contract_on_line(module.lines[def_line - 1])
        if name is not None:
            out.append((name, def_line))
    decorators = getattr(node, "decorator_list", [])
    top = min([d.lineno for d in decorators] + [def_line])
    above = top - 1
    if 1 <= above <= len(module.lines):
        line = module.lines[above - 1]
        if line.strip().startswith("#"):
            name = _contract_on_line(line)
            if name is not None:
                out.append((name, above))
    return out


@dataclass
class ProjectModel:
    """Shared analysis state built once per ``run_lint`` invocation."""

    modules: Sequence[ParsedModule]
    graph: CallGraph
    safe_exceptions: FrozenSet[str]
    # contract name -> qualnames carrying it, in deterministic order
    contracts: Dict[str, List[str]] = field(default_factory=dict)
    annotation_findings: List[Finding] = field(default_factory=list)


_MODEL_CACHE: Dict[int, ProjectModel] = {}


def project_model(modules: Sequence[ParsedModule]) -> ProjectModel:
    """Build (or reuse) the call graph + contract index for a tree.

    The four flow rules each receive the same ``modules`` sequence from
    ``run_lint``; keying on its identity lets them share one graph.
    """
    cached = _MODEL_CACHE.get(id(modules))
    if cached is not None and cached.modules is modules:
        return cached

    graph = build_callgraph(modules)
    safe = collect_safe_exceptions([m.tree for m in modules])
    model = ProjectModel(
        modules=modules, graph=graph, safe_exceptions=safe
    )
    by_relpath = {m.relpath: m for m in modules}
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        module = by_relpath.get(info.relpath)
        if module is None:
            continue
        for name, lineno in _function_contracts(module, info):
            if name in KNOWN_CONTRACTS:
                model.contracts.setdefault(name, []).append(qualname)
            else:
                shown = name if name else "<missing name>"
                model.annotation_findings.append(Finding(
                    rule="contract-annotation",
                    severity=SEVERITY_ERROR,
                    file=info.display,
                    line=lineno,
                    message=(
                        f"unknown contract {shown!r}; known contracts: "
                        + ", ".join(sorted(KNOWN_CONTRACTS))
                    ),
                ))
    _MODEL_CACHE.clear()
    _MODEL_CACHE[id(modules)] = model
    return model


class ContractAnnotationRule(ProjectRule):
    """Reject ``# repro: contract`` annotations with unknown names."""

    rule_id = "contract-annotation"
    severity = SEVERITY_ERROR
    description = "contract annotations must use a known contract name"

    def check_project(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        return list(project_model(modules).annotation_findings)


class ExceptionLeakRule(ProjectRule):
    """No low-level raise may escape a decode entry point unguarded.

    For each low-level exception type, a BFS from the ``decode-entry``
    roots follows only call edges *not* protected against that type
    (``decode_guard`` with-blocks and catching ``try`` bodies stop the
    walk).  Any intraprocedurally-unguarded risky operation in a
    function the walk reaches can propagate all the way out.
    """

    rule_id = "exception-leak"
    severity = SEVERITY_ERROR
    description = (
        "low-level exceptions must not escape decode entry points"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        model = project_model(modules)
        graph = model.graph
        roots = [
            q for q in model.contracts.get(CONTRACT_DECODE_ENTRY, [])
            if q in graph.functions
        ]
        if not roots:
            return []

        ops_cache: Dict[str, List[RiskyOp]] = {}

        def ops_for(qualname: str) -> List[RiskyOp]:
            if qualname not in ops_cache:
                info = graph.functions[qualname]
                ops_cache[qualname] = risky_ops(
                    info.node, model.safe_exceptions
                )
            return ops_cache[qualname]

        pmap_cache: Dict[str, Dict[ast.AST, Tuple[FrozenSet[str], ...]]] = {}

        def pmap_for(qualname: str) -> Dict[ast.AST, Tuple[FrozenSet[str], ...]]:
            if qualname not in pmap_cache:
                pmap_cache[qualname] = protection_map(
                    graph.functions[qualname].node
                )
            return pmap_cache[qualname]

        # The exception types that can actually occur in this tree.
        reachable = graph.reachable(roots)
        exc_types: Set[str] = set()
        for qualname in reachable:
            exc_types.update(
                op.exc_name for op in ops_for(qualname) if not op.guarded
            )

        findings: List[Finding] = []
        for exc_name in sorted(exc_types):
            # BFS along edges that do not protect against exc_name;
            # origin[f] is the witness root f was first reached from.
            origin: Dict[str, str] = {root: root for root in roots}
            frontier = list(roots)
            while frontier:
                current = frontier.pop()
                pmap = pmap_for(current)
                for site in graph.sites(current):
                    stack = pmap.get(site.node, ())
                    if protects_against(stack, exc_name):
                        continue
                    for callee in site.resolved:
                        if callee not in origin:
                            origin[callee] = origin[current]
                            frontier.append(callee)
            for qualname in sorted(origin):
                info = graph.functions[qualname]
                for op in ops_for(qualname):
                    if op.guarded or op.exc_name != exc_name:
                        continue
                    findings.append(Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        file=info.display,
                        line=op.lineno,
                        message=(
                            f"{op.what} in {info.name} can escape decode "
                            f"entry {origin[qualname]} without passing "
                            "through decode_guard/CorruptedStreamError"
                        ),
                    ))
        return findings


class LoopProgressRule(ProjectRule):
    """Decode-reachable loops need progress metrics and checked bounds."""

    rule_id = "loop-progress"
    severity = SEVERITY_ERROR
    description = (
        "while loops in decode-reachable code must show progress; "
        "wire-derived loop bounds must be budget-checked"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        model = project_model(modules)
        graph = model.graph
        roots = [
            q for q in model.contracts.get(CONTRACT_DECODE_ENTRY, [])
            if q in graph.functions
        ]
        if not roots:
            return []
        findings: List[Finding] = []
        for qualname in sorted(graph.reachable(roots)):
            info = graph.functions[qualname]
            if not info.relpath.startswith(LOOP_SCOPES):
                continue
            for issue in loop_issues(info.node):
                findings.append(Finding(
                    rule=self.rule_id,
                    severity=self.severity,
                    file=info.display,
                    line=issue.lineno,
                    message=(
                        f"in decode-reachable {info.name}: {issue.detail}"
                    ),
                ))
        return findings


class DeterminismTaintRule(ProjectRule):
    """Nondeterminism sources must stay out of determinism sinks.

    The closure of each ``determinism-sink`` root is computed over
    precisely-resolved call edges only; every taint source observed
    lexically inside the closure is a finding.  Wall-clock sources are
    ignored for sinks under ``obs/`` (telemetry merges span *timings*
    as data; its determinism contract is about ordering), and the
    blessed ``obs/clock.py`` module is never analysed.
    """

    rule_id = "determinism-taint"
    severity = SEVERITY_ERROR
    description = (
        "environment, clock, unordered-iteration, and RNG taint must "
        "not reach fingerprint/serialisation/telemetry sinks"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        model = project_model(modules)
        graph = model.graph
        sinks = [
            q for q in model.contracts.get(CONTRACT_DETERMINISM_SINK, [])
            if q in graph.functions
        ]
        if not sinks:
            return []

        clock_modules = frozenset({CLOCK_MODULE_RELPATH})
        seen: Dict[Tuple[str, int, str], Finding] = {}
        for sink in sinks:
            include_clock = not graph.functions[sink].relpath.startswith(
                "obs/"
            )
            closure = self._precise_closure(graph, sink)
            for qualname in sorted(closure):
                info = graph.functions[qualname]
                if info.relpath == CLOCK_MODULE_RELPATH:
                    continue
                resolved_by_node = {
                    id(site.node): site.resolved
                    for site in graph.sites(qualname)
                    if not site.fallback
                }

                def resolve(call: ast.Call) -> Tuple[str, ...]:
                    return resolved_by_node.get(id(call), ())

                summary = analyze_taint(
                    info.node,
                    resolve,
                    {},
                    clock_modules,
                    include_clock=include_clock,
                )
                for site in summary.sites:
                    key = (info.display, site.lineno, site.kind)
                    if key in seen:
                        continue
                    seen[key] = Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        file=info.display,
                        line=site.lineno,
                        message=(
                            f"nondeterministic source ({site.what}) in "
                            f"{info.name} is reachable from determinism "
                            f"sink {sink}"
                        ),
                    )
        return list(seen.values())

    @staticmethod
    def _precise_closure(graph: CallGraph, sink: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = [sink]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in graph.sites(current):
                if site.fallback:
                    continue
                frontier.extend(
                    c for c in site.resolved if c not in seen
                )
        return seen


class DualPathRule(ProjectRule):
    """Batch and fastpath entry points must not drift from their oracles.

    Pairing is by naming convention: ``X_blocks`` pairs with ``X_block``
    (or ``X``) in the same class, else the same module; a fastpath
    ``X_fast`` must have a reference ``X`` somewhere in the project.
    The diff covers existence, parameter names (all but the final,
    pluralised one), and locally-raised exception surfaces with guard
    conversion applied.
    """

    rule_id = "dual-path-drift"
    severity = SEVERITY_ERROR
    description = (
        "batch/fastpath entry points must match their scalar oracles"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        model = project_model(modules)
        graph = model.graph
        findings: List[Finding] = []
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if not info.relpath.startswith(DUAL_PATH_SCOPES):
                continue
            if info.name.endswith("_blocks") and not info.name.startswith(
                "_"
            ):
                findings.extend(self._check_batch(model, info))
            elif (
                info.name.endswith("_fast")
                and info.relpath.startswith("fastpath/")
                and not info.name.startswith("_")
            ):
                base = info.name[: -len("_fast")]
                if base not in graph.by_name:
                    findings.append(Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        file=info.display,
                        line=info.lineno,
                        message=(
                            f"fastpath kernel {info.name} has no "
                            f"reference implementation named {base!r}"
                        ),
                    ))
        return findings

    def _check_batch(
        self, model: ProjectModel, info: FunctionInfo
    ) -> List[Finding]:
        graph = model.graph
        base = info.name[: -len("_blocks")]
        scalar = self._find_scalar(
            graph, info, (f"{base}_block", base)
        )
        if scalar is None:
            return [Finding(
                rule=self.rule_id,
                severity=self.severity,
                file=info.display,
                line=info.lineno,
                message=(
                    f"batch entry {info.name} has no scalar oracle "
                    f"({base}_block or {base}) in its class or module"
                ),
            )]
        findings: List[Finding] = []
        batch_params = _param_names(info.node)
        scalar_params = _param_names(scalar.node)
        if not _params_match(batch_params, scalar_params):
            findings.append(Finding(
                rule=self.rule_id,
                severity=self.severity,
                file=info.display,
                line=info.lineno,
                message=(
                    f"batch entry {info.name}({', '.join(batch_params)}) "
                    f"drifts from scalar oracle "
                    f"{scalar.name}({', '.join(scalar_params)})"
                ),
            ))
        batch_raises = raised_names(info.node, model.safe_exceptions)
        scalar_raises = raised_names(scalar.node, model.safe_exceptions)
        extra = batch_raises - scalar_raises - _DUAL_PATH_ALLOWED
        if extra:
            findings.append(Finding(
                rule=self.rule_id,
                severity=self.severity,
                file=info.display,
                line=info.lineno,
                message=(
                    f"batch entry {info.name} raises "
                    f"{', '.join(sorted(extra))} not raised by scalar "
                    f"oracle {scalar.name}"
                ),
            ))
        return findings

    @staticmethod
    def _find_scalar(
        graph: CallGraph,
        info: FunctionInfo,
        candidates: Tuple[str, ...],
    ) -> Optional[FunctionInfo]:
        for name in candidates:
            if info.class_name is not None:
                prefix = info.qualname.rsplit(".", 1)[0]
                qualname = f"{prefix}.{name}"
                found = graph.functions.get(qualname)
                if found is not None:
                    return found
            for qualname in graph.by_name.get(name, ()):
                other = graph.functions[qualname]
                if other.relpath == info.relpath:
                    return other
        return None


def _params_match(batch: List[str], scalar: List[str]) -> bool:
    """Whether a batch signature is a faithful pluralisation.

    Accepted shapes: the batch drops its final (pluralised) parameter
    and matches the oracle exactly or minus *its* final parameter, or
    the two have equal arity and correspond parameter-by-parameter up
    to a trailing ``s``/``es`` (``payloads``/``payload``).
    """
    shared = batch[:-1] if batch else []
    if shared == scalar or shared == scalar[:-1]:
        return True
    if len(batch) != len(scalar):
        return False
    return all(
        b == s or b == f"{s}s" or b == f"{s}es"
        for b, s in zip(batch, scalar)
    )


def _param_names(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def flow_rules() -> List[ProjectRule]:
    """The whole-program contract rules, in reporting order."""
    return [
        ContractAnnotationRule(),
        ExceptionLeakRule(),
        LoopProgressRule(),
        DeterminismTaintRule(),
        DualPathRule(),
    ]


__all__ = [
    "CONTRACT_DECODE_ENTRY",
    "CONTRACT_DETERMINISM_SINK",
    "CONTRACT_MARKER",
    "ContractAnnotationRule",
    "DeterminismTaintRule",
    "DualPathRule",
    "ExceptionLeakRule",
    "KNOWN_CONTRACTS",
    "LoopProgressRule",
    "ProjectModel",
    "flow_rules",
    "project_model",
]
