"""Layer 1: semantic verifiers over codec artifacts.

Every check takes a *constructed artifact* — a Huffman table, a SADC
dictionary, a frozen SAMC model, a bit-field layout — and returns
:class:`~repro.verify.Finding` records for each violated invariant:

* ``huffman-prefix`` / ``huffman-kraft`` — the table must be a
  prefix-free code whose Kraft sum does not exceed 1 (and, for
  multi-symbol alphabets, reaches exactly 1: Huffman codes are
  complete by construction, so a deficit means wasted bit patterns).
* ``sadc-coverage`` / ``sadc-ambiguous`` / ``sadc-entry`` — every
  opcode a dictionary group mentions must also have a plain single
  entry (else some instruction sequences cannot be parsed), no two
  entries may match identically (else index assignment is arbitrary
  and encoder/decoder tables can disagree), and entry bindings must
  reference operands the opcode actually encodes.
* ``samc-distribution`` / ``samc-unreachable`` — every stored
  quantised P(0) must leave both branches non-zero probability mass
  (a 0 or ``PROB_ONE`` makes one bit value uncodable), and no tree
  replica may be unreachable given the connection order.
* ``field-tiling`` — each instruction-format layout must partition its
  word exactly: no overlapping fields, no uncovered bits.

:func:`run_artifact_checks` builds representative artifacts from a
small deterministic corpus and runs every verifier, which is what
``python -m repro check`` executes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.bitstream.fields import deposit_bits
from repro.core.sadc.entry import DictEntry, Dictionary
from repro.core.sadc.x86 import X86Dictionary
from repro.core.samc.model import SamcModel
from repro.entropy.arith import PROB_ONE
from repro.entropy.huffman import (
    HuffmanCode,
    find_prefix_violation,
    kraft_numerator,
)
from repro.verify import SEVERITY_ERROR, SEVERITY_WARNING, Finding

#: Field layout: ``(name, msb_start, width)`` triples.
FieldLayout = Sequence[Tuple[str, int, int]]

_HUFFMAN_FILE = "src/repro/entropy/huffman.py"
_SADC_MIPS_FILE = "src/repro/core/sadc/mips.py"
_SADC_X86_FILE = "src/repro/core/sadc/x86.py"
_SAMC_FILE = "src/repro/core/samc/model.py"
_MIPS_FORMATS_FILE = "src/repro/isa/mips/formats.py"
_X86_FORMATS_FILE = "src/repro/isa/x86/formats.py"

_KRAFT_BITS = 32
_KRAFT_ONE = 1 << _KRAFT_BITS


# -- Huffman tables ---------------------------------------------------------

def check_huffman_code(
    code: HuffmanCode,
    origin: str,
    file: str = _HUFFMAN_FILE,
    line: int = 1,
) -> List[Finding]:
    """Prefix-freeness and Kraft-sum completeness of one code table."""
    findings: List[Finding] = []
    violation = find_prefix_violation(code.lengths, code.codewords)
    if violation is not None:
        first, second = violation
        detail = (
            f"codeword of symbol {first} does not fit its declared length"
            if first == second
            else f"codeword of symbol {first} is a prefix of symbol "
            f"{second}'s (or collides with it)"
        )
        findings.append(Finding(
            rule="huffman-prefix",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"{origin}: table is not uniquely decodable — {detail}",
        ))
        return findings
    if not code.lengths:
        return findings
    kraft = kraft_numerator(code.lengths, _KRAFT_BITS)
    if kraft > _KRAFT_ONE:
        findings.append(Finding(
            rule="huffman-kraft",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"{origin}: Kraft sum {kraft}/{_KRAFT_ONE} exceeds 1 — "
                    "the lengths cannot form a prefix code",
        ))
    elif kraft < _KRAFT_ONE and len(code.lengths) > 1:
        findings.append(Finding(
            rule="huffman-kraft",
            severity=SEVERITY_WARNING,
            file=file,
            line=line,
            message=f"{origin}: Kraft sum {kraft}/{_KRAFT_ONE} below 1 — "
                    "the code is incomplete (wasted bit patterns)",
        ))
    return findings


# -- SADC dictionaries ------------------------------------------------------

def check_mips_dictionary(
    dictionary: Dictionary,
    origin: str,
    file: str = _SADC_MIPS_FILE,
    line: int = 1,
) -> List[Finding]:
    """Unique decodability and coverage of a MIPS SADC dictionary."""
    from repro.isa.mips.streams import (
        ID_TO_SPEC,
        register_slots,
        uses_imm16,
        uses_imm26,
    )

    findings: List[Finding] = []
    seen: Dict[Tuple[object, ...], int] = {}
    singles: Set[int] = set()
    mentioned: Set[int] = set()
    for index, entry in enumerate(dictionary.entries):
        key: Tuple[object, ...] = (
            entry.opcodes, entry.bound_regs,
            entry.bound_imm16, entry.bound_imm26,
        )
        if key in seen:
            findings.append(Finding(
                rule="sadc-ambiguous",
                severity=SEVERITY_ERROR,
                file=file,
                line=line,
                message=f"{origin}: entries {seen[key]} and {index} match "
                        "identically — token assignment is ambiguous",
            ))
            continue
        seen[key] = index
        if not entry.opcodes:
            findings.append(Finding(
                rule="sadc-entry",
                severity=SEVERITY_ERROR,
                file=file,
                line=line,
                message=f"{origin}: entry {index} expands to zero "
                        "instructions — the decoder would never advance",
            ))
            continue
        mentioned.update(entry.opcodes)
        if (entry.length == 1 and not entry.bound_regs
                and not entry.bound_imm16 and not entry.bound_imm26):
            singles.add(entry.opcodes[0])
        findings.extend(_check_mips_bindings(entry, index, origin, file, line))
    for opcode_id in sorted(mentioned - singles):
        spec = ID_TO_SPEC.get(opcode_id)
        name = spec.mnemonic if spec is not None else f"id {opcode_id}"
        findings.append(Finding(
            rule="sadc-coverage",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"{origin}: opcode {name} appears in groups but has no "
                    "plain single entry — unmatched occurrences cannot parse",
        ))
    return findings


def _check_mips_bindings(
    entry: DictEntry,
    index: int,
    origin: str,
    file: str,
    line: int,
) -> List[Finding]:
    """Entry bindings must name operands the opcode actually encodes."""
    from repro.isa.mips.streams import (
        ID_TO_SPEC,
        register_slots,
        uses_imm16,
        uses_imm26,
    )

    findings: List[Finding] = []

    def bad(reason: str) -> None:
        findings.append(Finding(
            rule="sadc-entry",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"{origin}: entry {index} {reason}",
        ))

    for opcode_id in entry.opcodes:
        if opcode_id not in ID_TO_SPEC:
            bad(f"references unknown opcode id {opcode_id}")
            return findings
    for instr, slot, _value in entry.bound_regs:
        if instr >= entry.length:
            bad(f"binds a register past the group end (index {instr})")
        elif slot >= len(register_slots(ID_TO_SPEC[entry.opcodes[instr]])):
            bad(f"binds register slot {slot} the opcode does not encode")
    for instr, _value in entry.bound_imm16:
        if instr >= entry.length or not uses_imm16(
                ID_TO_SPEC[entry.opcodes[instr]]):
            bad("binds a 16-bit immediate the opcode does not encode")
    for instr, _value in entry.bound_imm26:
        if instr >= entry.length or not uses_imm26(
                ID_TO_SPEC[entry.opcodes[instr]]):
            bad("binds a 26-bit immediate the opcode does not encode")
    return findings


def check_x86_dictionary(
    dictionary: X86Dictionary,
    origin: str,
    file: str = _SADC_X86_FILE,
    line: int = 1,
) -> List[Finding]:
    """Unique decodability and coverage of an x86 SADC dictionary."""
    findings: List[Finding] = []
    seen: Dict[Tuple[bytes, ...], int] = {}
    singles: Set[bytes] = set()
    mentioned: Set[bytes] = set()
    for index, entry in enumerate(dictionary.entries):
        if entry in seen:
            findings.append(Finding(
                rule="sadc-ambiguous",
                severity=SEVERITY_ERROR,
                file=file,
                line=line,
                message=f"{origin}: entries {seen[entry]} and {index} match "
                        "identically — token assignment is ambiguous",
            ))
            continue
        seen[entry] = index
        if not entry or any(len(part) == 0 for part in entry):
            findings.append(Finding(
                rule="sadc-entry",
                severity=SEVERITY_ERROR,
                file=file,
                line=line,
                message=f"{origin}: entry {index} contains an empty opcode "
                        "string — the decoder would never advance",
            ))
            continue
        mentioned.update(entry)
        if len(entry) == 1:
            singles.add(entry[0])
    for part in sorted(mentioned - singles):
        findings.append(Finding(
            rule="sadc-coverage",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"{origin}: opcode string {part.hex()} appears in groups "
                    "but has no single entry — unmatched occurrences "
                    "cannot parse",
        ))
    return findings


# -- SAMC models ------------------------------------------------------------

def check_samc_model(
    model: SamcModel,
    origin: str,
    file: str = _SAMC_FILE,
    line: int = 1,
) -> List[Finding]:
    """Well-formedness of a frozen SAMC model.

    Every quantised P(0) must lie strictly inside ``(0, PROB_ONE)`` so
    both interval halves stay non-empty (the distribution over {0, 1}
    genuinely sums to one with positive mass on each side), and every
    tree replica must be reachable under the connection order.
    """
    findings: List[Finding] = []
    specs = model.specs
    for stream_index, stream_model in enumerate(model.stream_models):
        table = stream_model.frozen_table
        if table.size == 0:
            findings.append(Finding(
                rule="samc-distribution",
                severity=SEVERITY_ERROR,
                file=file,
                line=line,
                message=f"{origin}: stream {stream_index} has no frozen "
                        "probability table",
            ))
            continue
        for context in range(stream_model.contexts):
            for node in range(stream_model.node_count):
                p0_q = int(table[context, node])
                if not 1 <= p0_q <= PROB_ONE - 1:
                    side = "0" if p0_q <= 0 else "1"
                    findings.append(Finding(
                        rule="samc-distribution",
                        severity=SEVERITY_ERROR,
                        file=file,
                        line=line,
                        message=(
                            f"{origin}: stream {stream_index} context "
                            f"{context} node {node}: quantised P(0)={p0_q} "
                            f"leaves bit value {side} with zero probability "
                            "mass — that bit value is uncodable"
                        ),
                    ))
        # Reachability: the context replica of stream i is selected by
        # the trailing connect_bits of the *previous* stream (the last
        # stream of the previous word for stream 0), masked to that
        # stream's width.  Replicas beyond the reachable count are dead
        # storage the decoder table pays for.
        previous_k = specs[stream_index - 1].k if specs else 0
        reachable = 1 << min(model.connect_bits, previous_k)
        if stream_model.contexts > reachable:
            findings.append(Finding(
                rule="samc-unreachable",
                severity=SEVERITY_WARNING,
                file=file,
                line=line,
                message=(
                    f"{origin}: stream {stream_index} stores "
                    f"{stream_model.contexts} tree replicas but only "
                    f"{reachable} contexts are reachable — "
                    f"{stream_model.contexts - reachable} replicas are "
                    "dead decoder storage"
                ),
            ))
    return findings


# -- bit-field layouts ------------------------------------------------------

def check_field_layout(
    name: str,
    fields: FieldLayout,
    width: int,
    file: str,
    line: int = 1,
) -> List[Finding]:
    """One format layout must tile its word: no overlap, no gap.

    Overlap detection rides on :func:`repro.bitstream.fields.deposit_bits`
    rejecting duplicate positions — the same primitive the stream
    machinery uses, so the check can never drift from the codec.
    """
    positions: List[int] = []
    for field_name, start, field_width in fields:
        positions.extend(range(start, start + field_width))
    try:
        deposit_bits(0, positions, width)
    except ValueError as exc:
        return [Finding(
            rule="field-tiling",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"format {name!r}: fields overlap or overflow the "
                    f"{width}-bit word ({exc})",
        )]
    if len(positions) != width:
        missing = sorted(set(range(width)) - set(positions))
        return [Finding(
            rule="field-tiling",
            severity=SEVERITY_ERROR,
            file=file,
            line=line,
            message=f"format {name!r}: bit positions {missing} are covered "
                    "by no field — the layout does not tile the word",
        )]
    return []


def check_field_layouts() -> List[Finding]:
    """Tiling of every instruction-format layout the ISA models declare."""
    from repro.isa.mips import formats as mips_formats
    from repro.isa.x86 import formats as x86_formats

    findings: List[Finding] = []
    for name, fields in sorted(mips_formats.FIELD_LAYOUTS.items()):
        findings.extend(check_field_layout(
            name, fields, mips_formats.WORD_BITS, file=_MIPS_FORMATS_FILE,
        ))
    for name, fields in sorted(x86_formats.FIELD_LAYOUTS.items()):
        findings.extend(check_field_layout(
            name, fields, 8, file=_X86_FORMATS_FILE,
        ))
    return findings


# -- the full artifact pass -------------------------------------------------

def run_artifact_checks(scale: float = 0.25, seed: int = 0) -> List[Finding]:
    """Build representative artifacts and run every layer-1 verifier.

    The corpus is deterministic (seeded synthetic benchmarks), so a
    clean tree always verifies identically; ``scale`` trades corpus
    size against check time.
    """
    from repro.baselines.byte_huffman import ByteHuffmanCodec
    from repro.baselines.positional_huffman import PositionalHuffmanCodec
    from repro.core.sadc.mips import MipsSadcCodec
    from repro.core.sadc.x86 import X86SadcCodec
    from repro.core.samc import SamcCodec
    from repro.workloads.suite import generate_benchmark

    findings = check_field_layouts()

    mips_code = generate_benchmark("compress", "mips", scale, seed).code
    x86_code = generate_benchmark("compress", "x86", scale, seed).code

    # Huffman tables: the byte-wide baseline and the per-position variant.
    byte_image = ByteHuffmanCodec().compress(mips_code)
    findings.extend(check_huffman_code(
        byte_image.metadata["code"], "byte-huffman table",
        file="src/repro/baselines/byte_huffman.py",
    ))
    positional_image = PositionalHuffmanCodec().compress(mips_code)
    for position, table in enumerate(
            positional_image.metadata["positional_tables"]):
        findings.extend(check_huffman_code(
            table, f"positional-huffman table {position}",
            file="src/repro/baselines/positional_huffman.py",
        ))

    # SADC: dictionaries plus their final-pass Huffman tables, both ISAs.
    # Bounded generator settings keep the check fast while still
    # exercising groups and operand bindings.
    mips_sadc = MipsSadcCodec(batch_inserts=16, max_cycles=6)
    mips_image = mips_sadc.compress(mips_code)
    findings.extend(check_mips_dictionary(
        mips_image.metadata["dictionary"], "SADC/MIPS dictionary"))
    for stream, table in sorted(mips_image.metadata["codes"].items()):
        findings.extend(check_huffman_code(
            table, f"SADC/MIPS {stream} table", file=_SADC_MIPS_FILE,
        ))
    x86_sadc = X86SadcCodec(batch_inserts=16, max_cycles=6)
    x86_image = x86_sadc.compress(x86_code)
    findings.extend(check_x86_dictionary(
        x86_image.metadata["dictionary"], "SADC/x86 dictionary"))
    for stream, table in sorted(x86_image.metadata["codes"].items()):
        findings.extend(check_huffman_code(
            table, f"SADC/x86 {stream} table", file=_SADC_X86_FILE,
        ))

    # SAMC: the paper's MIPS configuration and the byte-oriented
    # fallback, in both the default and shift-only probability modes.
    for label, codec in (
        ("SAMC/MIPS model", SamcCodec.for_mips()),
        ("SAMC/MIPS pow2 model", SamcCodec.for_mips(probability_mode="pow2")),
        ("SAMC/bytes model", SamcCodec.for_bytes()),
    ):
        program = mips_code if "MIPS" in label else x86_code
        findings.extend(check_samc_model(codec.train(program), label))
    return findings
