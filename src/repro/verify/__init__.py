"""Static verification: codec-invariant checks plus a repo AST linter.

The paper's central property is *decodability by construction*: SAMC and
SADC tables must be uniquely decodable at cache-block granularity, and
the fastpath split makes bit-identity with the reference path a hard
contract.  Until now only runtime round-trips exercised those
invariants; this package checks them statically, in two layers:

* **Layer 1 — codec artifacts** (:mod:`repro.verify.codec_checks`):
  prefix-freeness and Kraft completeness of every Huffman table,
  unique-decodability and coverage of SADC dictionaries, SAMC model
  well-formedness (no zero-mass branch in any quantised probability,
  no unreachable tree replicas), and bit-field layout tiling for the
  MIPS/x86 instruction formats.
* **Layer 2 — source lint** (:mod:`repro.verify.lint` +
  :mod:`repro.verify.rules`): AST rules encoding repo-specific
  contracts — no float arithmetic in bit-exact coder hot paths, no
  unordered-container iteration in fingerprint/serialise paths, no
  unseeded randomness in workload generators, and reference↔fastpath
  dispatch parity.

Everything surfaces as :class:`Finding` records so ``python -m repro
check`` can render them as text or JSON and gate CI with ``--strict``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One verification result: a rule violation at a source location.

    ``file`` is repo-relative when the package runs from a source
    checkout (``src/repro/...``); artifact-level findings point at the
    module that defines the offending structure.
    """

    rule: str
    severity: str
    file: str
    line: int
    message: str

    def format(self) -> str:
        """Render in the conventional ``file:line: severity[rule]`` shape."""
        return (
            f"{self.file}:{self.line}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Deterministic order: errors first, then file/line/rule."""
    return sorted(
        findings,
        key=lambda f: (f.severity != SEVERITY_ERROR, f.file, f.line, f.rule),
    )


def exit_status(findings: List[Finding], strict: bool = False) -> int:
    """Exit code for a check run.

    ``--strict`` fails on *any* finding (the CI gate); the default only
    fails on errors, so warnings can accumulate without breaking local
    workflows.
    """
    if strict:
        return 1 if findings else 0
    return 1 if any(f.severity == SEVERITY_ERROR for f in findings) else 0


def run_all_checks(
    artifact_scale: float = 0.25,
    lint_root: Optional[str] = None,
    artifacts: bool = True,
    lint: bool = True,
    flow: bool = True,
) -> List[Finding]:
    """Run every verification layer and return the merged raw findings.

    ``artifact_scale`` sizes the deterministic sample corpus the layer-1
    checks build their tables from; ``lint_root`` overrides the source
    tree the AST rules walk (defaults to the installed package);
    ``flow=False`` skips the whole-program contract analyses.  Baseline
    subtraction is a CLI concern — this function always returns the
    full finding set.
    """
    from repro.verify.codec_checks import run_artifact_checks
    from repro.verify.lint import run_lint
    from repro.verify.rules import default_rules

    findings: List[Finding] = []
    if artifacts:
        findings.extend(run_artifact_checks(scale=artifact_scale))
    if lint:
        findings.extend(
            run_lint(default_rules(include_flow=flow), root=lint_root)
        )
    return sort_findings(findings)


__all__ = [
    "Finding",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "exit_status",
    "run_all_checks",
    "sort_findings",
]
