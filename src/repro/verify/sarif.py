"""SARIF 2.1.0 rendering for ``repro check --format sarif``.

Emits the minimal static-analysis interchange document GitHub code
scanning consumes: one run, one driver, one result per finding with a
physical location.  Rule metadata is derived from the findings
themselves so the document never lists rules that did not fire.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.verify import SEVERITY_ERROR, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-check"


def _level(finding: Finding) -> str:
    return "error" if finding.severity == SEVERITY_ERROR else "warning"


def to_sarif(findings: List[Finding]) -> Dict[str, Any]:
    """Render findings as a SARIF 2.1.0 document (as a dict)."""
    rule_ids = sorted({f.rule for f in findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_id},
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": _level(f),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {"startLine": max(1, f.line)},
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "TOOL_NAME", "to_sarif"]
