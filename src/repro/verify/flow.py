"""Flow-sensitive intraprocedural dataflow over Python AST.

This module is the per-function half of the whole-program analyses in
:mod:`repro.verify.contracts`.  It answers four local questions the
interprocedural layer composes over the call graph:

* **Guard regions** — which statements run under ``decode_guard`` (or a
  ``try`` whose handlers catch a given exception type), so a low-level
  raise inside them converts to ``CorruptedStreamError`` instead of
  escaping.
* **Risky operations** — explicit raises of low-level exception types
  (``IndexError``, ``struct.error``, …) and ``struct.unpack*`` calls,
  the leak sites of the exception-leak analysis.  A risky op *dominated
  by a prior length check that raises a safe error* is treated as
  guarded — the ``unwrap_frame`` idiom of validating ``len(data)``
  before ``unpack_from``.
* **Loop progress** — whether a ``while`` loop has a recognizable
  progress metric (a counter written in the body, consumption of the
  object named in the condition, or an exit-or-consume shape), and
  whether a loop bound derived from wire data is dominated by a
  budget/backing-data validation.
* **Determinism taint** — a flow-sensitive walk tracking how
  environment reads, wall-clock calls, unordered-container iteration,
  and unseeded randomness propagate through local assignments into
  returns, so sink functions can be checked for nondeterministic
  inputs.  ``sorted()`` sanitises ordering taint; ``len()`` sanitises
  everything.

All of it is deliberately heuristic: the recognisers accept the
patterns this codebase (and the fixtures) actually use, and everything
they cannot prove is reported for a human to fix, suppress with
``# repro: noqa``, or accept into the baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: Exception types whose escape from a decode entry point breaks the
#: guaranteed-termination contract (the types ``decode_guard``
#: converts, see repro.resilience.errors._GUARDED).  ``ValueError`` is
#: deliberately absent: an explicit ``raise ValueError("…")`` is a
#: programmer-authored precondition on *caller* arguments, not a
#: wire-data failure — tracking it floods the analysis with encode-side
#: validation raises.  Implicit wire-triggered ValueErrors (``int()``
#: on garbage) are a known precision gap, covered by the fuzz driver.
LOW_LEVEL_EXCEPTIONS = frozenset({
    "IndexError",
    "KeyError",
    "EOFError",
    "OverflowError",
    "MemoryError",
    "UnicodeDecodeError",
    "error",  # struct.error raised by name
})

#: Names that catch everything relevant in an ``except`` clause.
_CATCH_ALL = frozenset({"Exception", "BaseException"})

#: Superclasses that also catch a given low-level exception.
_EXC_SUPERCLASSES: Dict[str, FrozenSet[str]] = {
    "IndexError": frozenset({"LookupError"}),
    "KeyError": frozenset({"LookupError"}),
    "UnicodeDecodeError": frozenset({"ValueError", "UnicodeError"}),
    "error": frozenset({"ValueError"}),  # struct.error per decode_guard
}

#: Method names that consume input or shrink a worklist — evidence of
#: loop progress when paired with an explicit exit.
CONSUMING_METHODS = frozenset({
    "read",
    "read_bit",
    "read_bits",
    "read_bytes",
    "readexactly",
    "decode_from",
    "pop",
    "popleft",
    "next_byte",
    "_next_byte",
    "_take",
    "take",
    "recv",
    "get",
})

#: Call names whose result is a wire-declared quantity (reader field
#: reads); assignments from them make the target a wire-derived bound.
WIRE_READ_CALLS = frozenset({
    "u8",
    "u16",
    "u32",
    "u64",
    "read_bits",
    "unpack",
    "unpack_from",
    "from_bytes",
})

#: Wall-clock call names (mirrors the no-wallclock-in-codec rule).
CLOCK_NAMES = frozenset({
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
})

#: Seeded numpy constructors that do not taint.
_NP_RANDOM_OK = frozenset({"default_rng", "RandomState", "Generator", "SeedSequence"})

TAINT_ENV = "env"
TAINT_CLOCK = "clock"
TAINT_ORDER = "order"
TAINT_RNG = "rng"


# ---------------------------------------------------------------------------
# Guard regions
# ---------------------------------------------------------------------------

#: Marker protection entry meaning "inside a decode_guard with-block".
_DECODE_GUARD = "<decode_guard>"


def _is_decode_guard_item(item: ast.withitem) -> bool:
    call = item.context_expr
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return name == "decode_guard"


def _handler_names(handler: ast.ExceptHandler) -> FrozenSet[str]:
    exc = handler.type
    if exc is None:
        return _CATCH_ALL
    names: Set[str] = set()
    elements = exc.elts if isinstance(exc, ast.Tuple) else [exc]
    for element in elements:
        if isinstance(element, ast.Name):
            names.add(element.id)
        elif isinstance(element, ast.Attribute):
            names.add(element.attr)
    return frozenset(names)


def protection_map(
    func: ast.AST,
) -> Dict[ast.AST, Tuple[FrozenSet[str], ...]]:
    """Map every node under ``func`` to its stack of active protections.

    Each stack entry is a frozenset of exception names caught at that
    level; the special entry ``{_DECODE_GUARD}`` marks a decode_guard
    with-block (which converts every guarded low-level type).
    """
    out: Dict[ast.AST, Tuple[FrozenSet[str], ...]] = {}

    def visit(node: ast.AST, stack: Tuple[FrozenSet[str], ...]) -> None:
        out[node] = stack
        if isinstance(node, ast.Try):
            caught: Set[str] = set()
            for handler in node.handlers:
                caught.update(_handler_names(handler))
            body_stack = stack + (frozenset(caught),)
            for child in node.body:
                visit(child, body_stack)
            # Handlers, else, and finally run outside the body's
            # protection (an exception raised there escapes this try).
            for handler in node.handlers:
                visit(handler, stack)
            for child in node.orelse:
                visit(child, stack)
            for child in node.finalbody:
                visit(child, stack)
            return
        if isinstance(node, ast.With):
            guarded = any(_is_decode_guard_item(item) for item in node.items)
            inner = stack + ((frozenset({_DECODE_GUARD}),) if guarded else ())
            for item in node.items:
                visit(item, stack)
            for child in node.body:
                visit(child, inner)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(func, ())
    return out


def protects_against(
    stack: Tuple[FrozenSet[str], ...], exc_name: str
) -> bool:
    """True when a raise of ``exc_name`` cannot escape this stack."""
    accepted = (
        {exc_name}
        | set(_EXC_SUPERCLASSES.get(exc_name, frozenset()))
        | set(_CATCH_ALL)
    )
    for layer in stack:
        if _DECODE_GUARD in layer:
            return True
        if layer & accepted:
            return True
        # CorruptedStreamError handlers re-raise structured errors; a
        # handler catching it does not stop a *low-level* type.
    return False


# ---------------------------------------------------------------------------
# Risky operations (exception-leak sites)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RiskyOp:
    """One operation that can raise a low-level exception."""

    node: ast.AST
    lineno: int
    exc_name: str
    what: str
    guarded: bool


def _raise_name(node: ast.Raise) -> Optional[str]:
    exc = node.exc
    if exc is None:
        return None  # bare re-raise: propagates whatever is in flight
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _length_check_lines(func: ast.AST, safe_exceptions: FrozenSet[str]) -> List[int]:
    """Lines of ``if …len(…)…: raise <safe>`` backing-data validations."""
    lines: List[int] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        mentions_len = any(
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
            for sub in ast.walk(node.test)
        )
        if not mentions_len:
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.Raise):
                name = _raise_name(stmt)
                if name is not None and name in safe_exceptions:
                    lines.append(node.lineno)
                    break
    return lines


def risky_ops(
    func: ast.AST, safe_exceptions: FrozenSet[str]
) -> List[RiskyOp]:
    """Explicit low-level raises and ``struct.unpack*`` calls in ``func``.

    ``safe_exceptions`` is the set of structured-error class names
    (``CorruptedStreamError`` and its project subclasses); raising those
    is the contract, not a leak.  An unpack call lexically *after* a
    length-validation raise of a safe error is treated as guarded.
    """
    protections = protection_map(func)
    checks = _length_check_lines(func, safe_exceptions)
    ops: List[RiskyOp] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Raise):
            name = _raise_name(node)
            if name is None or name in safe_exceptions:
                continue
            if name not in LOW_LEVEL_EXCEPTIONS:
                continue
            guarded = protects_against(protections.get(node, ()), name)
            ops.append(RiskyOp(
                node=node,
                lineno=node.lineno,
                exc_name=name,
                what=f"raise {name}",
                guarded=guarded,
            ))
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in ("unpack", "unpack_from")
            ):
                guarded = protects_against(protections.get(node, ()), "error")
                if not guarded and any(
                    line < node.lineno for line in checks
                ):
                    guarded = True  # dominated by a backing-data check
                ops.append(RiskyOp(
                    node=node,
                    lineno=node.lineno,
                    exc_name="error",
                    what=f"{func_expr.attr}() (struct.error)",
                    guarded=guarded,
                ))
    return ops


def collect_safe_exceptions(trees: Sequence[ast.Module]) -> FrozenSet[str]:
    """``CorruptedStreamError`` plus every project subclass, transitively."""
    safe: Set[str] = {"CorruptedStreamError"}
    bases: Dict[str, Set[str]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                names = set()
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        names.add(base.id)
                    elif isinstance(base, ast.Attribute):
                        names.add(base.attr)
                bases.setdefault(node.name, set()).update(names)
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in safe and parents & safe:
                safe.add(name)
                changed = True
    return frozenset(safe)


# ---------------------------------------------------------------------------
# Loop progress
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopIssue:
    """One loop finding: no progress metric, or unvalidated wire bound."""

    node: ast.AST
    lineno: int
    kind: str           # "no-progress" | "wire-bound"
    detail: str


def _names_in(node: ast.AST) -> Set[str]:
    return {
        sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)
    }


def _body_nodes(loop: ast.AST) -> List[ast.AST]:
    out: List[ast.AST] = []
    for stmt in getattr(loop, "body", []):
        out.extend(ast.walk(stmt))
    return out


def _assigned_names(nodes: Sequence[ast.AST]) -> Set[str]:
    names: Set[str] = set()
    for node in nodes:
        if isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(
                    t.id for t in ast.walk(target) if isinstance(t, ast.Name)
                )
        elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def _method_receivers(nodes: Sequence[ast.AST]) -> Set[str]:
    """Names appearing in the receiver of any method call (dotted too,
    so ``self._models.pop()`` counts as consuming ``self``)."""
    receivers: Set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receivers.update(
                sub.id
                for sub in ast.walk(node.func.value)
                if isinstance(sub, ast.Name)
            )
    return receivers


def _has_consuming_call(nodes: Sequence[ast.AST]) -> bool:
    for node in nodes:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in CONSUMING_METHODS:
                return True
    return False


def _has_bounded_counter(loop: ast.AST, body: Sequence[ast.AST]) -> bool:
    counters = {
        node.target.id
        for node in body
        if isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name)
    }
    if not counters:
        return False
    for node in body:
        if isinstance(node, ast.If) and _names_in(node.test) & counters:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Raise, ast.Break, ast.Return)):
                    return True
    return False


def while_has_progress(loop: ast.While) -> bool:
    """True when the loop shows a recognizable progress metric."""
    body = _body_nodes(loop)
    is_constant_true = (
        isinstance(loop.test, ast.Constant) and bool(loop.test.value)
    )
    if not is_constant_true:
        cond_names = _names_in(loop.test)
        if cond_names & _assigned_names(body):
            return True  # counter/remaining-style variable written
        if cond_names & _method_receivers(body):
            return True  # consumes/mutates the object it tests
        for node in body:
            if (
                isinstance(node, ast.Delete)
                and any(
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in cond_names
                    for t in node.targets
                )
            ):
                return True
    has_break = any(isinstance(node, ast.Break) for node in body)
    if has_break and _has_consuming_call(body):
        return True  # exit-or-consume: reader exhaustion ends the loop
    if _has_bounded_counter(loop, body):
        return True
    return False


@dataclass
class _BoundState:
    wire: bool = False
    validated: bool = False


def _expr_is_wire_read(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in WIRE_READ_CALLS:
                return True
        elif isinstance(node, ast.Subscript):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Attribute) and sub.attr == "metadata":
                    return True
    return False


def _is_validation_stmt(stmt: ast.AST, var: str) -> bool:
    if isinstance(stmt, ast.If) and var in _names_in(stmt.test):
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Raise, ast.Return)):
                return True
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name is None:
                continue
            lowered = name.lower()
            if any(k in lowered for k in ("check", "budget", "valid", "clamp")):
                if var in _names_in(node):
                    return True
            if name == "min" and var in _names_in(node):
                return True
    return False


def loop_issues(func: ast.AST) -> List[LoopIssue]:
    """Progress and wire-bound findings for every loop in ``func``.

    The wire-bound pass runs linearly over the function's statements in
    source order (the flow-sensitive part): an assignment from a wire
    read marks its target, a validation statement mentioning the target
    clears it, and a ``while``/``for range()`` loop bounded by a still-
    unvalidated wire variable is a finding.  Only *named* bounds are
    tracked — an inline ``range(reader.u8())`` is bounded by the reader's
    own exhaustion check and stays below any allocation-relevant size.
    """
    issues: List[LoopIssue] = []
    wire_bounds: Dict[str, _BoundState] = {}

    statements: List[ast.stmt] = []

    def flatten(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.stmt):
                statements.append(child)
            flatten(child)

    flatten(func)
    statements.sort(key=lambda s: (s.lineno, s.col_offset))

    for stmt in statements:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            target = stmt.targets[0].id
            if _expr_is_wire_read(stmt.value):
                wire_bounds[target] = _BoundState(wire=True)
            elif target in wire_bounds and any(
                name in wire_bounds and wire_bounds[name].wire
                for name in _names_in(stmt.value)
            ):
                pass  # rebinding from another wire var keeps state
            elif target in wire_bounds:
                del wire_bounds[target]  # overwritten with non-wire data
            else:
                derived = _names_in(stmt.value) & {
                    n for n, s in wire_bounds.items() if s.wire
                }
                if derived and not all(
                    wire_bounds[n].validated for n in derived
                ):
                    wire_bounds[target] = _BoundState(wire=True)
        for name, state in wire_bounds.items():
            if state.wire and not state.validated and _is_validation_stmt(
                stmt, name
            ):
                state.validated = True

        bound_names: Set[str] = set()
        if isinstance(stmt, ast.While):
            if not while_has_progress(stmt):
                issues.append(LoopIssue(
                    node=stmt,
                    lineno=stmt.lineno,
                    kind="no-progress",
                    detail="while loop has no recognizable progress metric",
                ))
            bound_names = _names_in(stmt.test)
        elif isinstance(stmt, ast.For):
            call = stmt.iter
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == "range"
            ):
                bound_names = {
                    arg.id for arg in call.args if isinstance(arg, ast.Name)
                }
        for name in sorted(bound_names):
            state = wire_bounds.get(name)
            if state is not None and state.wire and not state.validated:
                issues.append(LoopIssue(
                    node=stmt,
                    lineno=stmt.lineno,
                    kind="wire-bound",
                    detail=(
                        f"loop bound {name!r} comes from wire data and is "
                        "not dominated by a budget/backing-data check"
                    ),
                ))
                state.validated = True  # one finding per bound variable
    return issues


# ---------------------------------------------------------------------------
# Determinism taint
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaintSite:
    """A nondeterminism source observed inside a function."""

    node: ast.AST
    lineno: int
    kind: str
    what: str


@dataclass(frozen=True)
class TaintSummary:
    """Result of the intraprocedural taint walk for one function."""

    returns: FrozenSet[str]       # taint kinds the return value may carry
    sites: Tuple[TaintSite, ...]  # source sites observed in the body


ResolveCall = Callable[[ast.Call], Tuple[str, ...]]


class _TaintWalker:
    def __init__(
        self,
        resolve: ResolveCall,
        returning: Dict[str, FrozenSet[str]],
        clock_modules: FrozenSet[str],
        include_clock: bool,
    ) -> None:
        self._resolve = resolve
        self._returning = returning
        self._clock_modules = clock_modules
        self._include_clock = include_clock
        self.tainted: Dict[str, Set[str]] = {}
        self.sites: List[TaintSite] = []
        self.return_kinds: Set[str] = set()

    # -- sources ----------------------------------------------------------

    def _call_source(self, node: ast.Call) -> Optional[Tuple[str, str]]:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = func.value
            if isinstance(owner, ast.Name):
                if owner.id == "os" and func.attr == "getenv":
                    return (TAINT_ENV, "os.getenv()")
                if owner.id == "time" and func.attr in CLOCK_NAMES:
                    return (TAINT_CLOCK, f"time.{func.attr}()")
                if owner.id == "random" and func.attr not in (
                    "Random", "SystemRandom", "seed"
                ):
                    return (TAINT_RNG, f"random.{func.attr}()")
            if (
                isinstance(owner, ast.Attribute)
                and owner.attr == "environ"
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "os"
                and func.attr == "get"
            ):
                return (TAINT_ENV, "os.environ.get()")
            if (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in ("np", "numpy")
                and func.attr not in _NP_RANDOM_OK
            ):
                return (TAINT_RNG, f"np.random.{func.attr}()")
        # Calls resolving into repro.obs.clock are wall-clock reads.
        for qualname in self._resolve(node):
            relpath = qualname.split("::", 1)[0]
            if relpath in self._clock_modules:
                return (TAINT_CLOCK, f"repro.obs.clock call ({qualname})")
        return None

    def _record(self, kind: str, what: str, node: ast.AST) -> Set[str]:
        if kind == TAINT_CLOCK and not self._include_clock:
            return set()
        self.sites.append(TaintSite(
            node=node,
            lineno=getattr(node, "lineno", 1),
            kind=kind,
            what=what,
        ))
        return {kind}

    # -- expression taint -------------------------------------------------

    def expr(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.tainted.get(node.id, set()))
        if isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
            ):
                return self._record(TAINT_ENV, "os.environ", node)
            return self.expr(node.value)
        if isinstance(node, ast.Call):
            source = self._call_source(node)
            if source is not None:
                kind, what = source
                kinds = self._record(kind, what, node)
                for arg in node.args:
                    kinds |= self.expr(arg)
                return kinds
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            arg_taint: Set[str] = set()
            for arg in node.args:
                arg_taint |= self.expr(arg)
            for kw in node.keywords:
                arg_taint |= self.expr(kw.value)
            if isinstance(func, ast.Attribute):
                arg_taint |= self.expr(func.value)
            if name == "sorted":
                arg_taint.discard(TAINT_ORDER)
                return arg_taint
            if name == "len":
                return set()
            if name in ("set", "frozenset"):
                # Order taint attaches silently here; a site is only
                # recorded if the value is later *iterated*.
                return arg_taint | {TAINT_ORDER}
            if name in ("values", "keys") and isinstance(func, ast.Attribute):
                return arg_taint | {TAINT_ORDER}
            for qualname in self._resolve(node):
                arg_taint |= set(self._returning.get(qualname, frozenset()))
            return arg_taint
        if isinstance(node, ast.Set):
            kinds: Set[str] = {TAINT_ORDER}
            for element in node.elts:
                kinds |= self.expr(element)
            return kinds
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            kinds = set()
            for gen in node.generators:
                iter_taint = self.expr(gen.iter)
                if TAINT_ORDER in iter_taint:
                    self._record(
                        TAINT_ORDER,
                        "iteration over an unordered container",
                        gen.iter,
                    )
                kinds |= iter_taint
                for name in _names_in(gen.target):
                    self.tainted.setdefault(name, set()).update(iter_taint)
            kinds |= self.expr(node.elt)
            return kinds
        if isinstance(node, ast.DictComp):
            kinds = set()
            for gen in node.generators:
                kinds |= self.expr(gen.iter)
            kinds |= self.expr(node.key) | self.expr(node.value)
            return kinds
        kinds = set()
        for child in ast.iter_child_nodes(node):
            kinds |= self.expr(child)
        return kinds

    # -- statements -------------------------------------------------------

    def run(self, func: ast.AST) -> None:
        for stmt in getattr(func, "body", []):
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(node, ast.Assign):
            kinds = self.expr(node.value)
            for target in node.targets:
                for name in _names_in(target):
                    self.tainted[name] = set(kinds)
            return
        if isinstance(node, ast.AugAssign):
            kinds = self.expr(node.value)
            if isinstance(node.target, ast.Name):
                self.tainted.setdefault(node.target.id, set()).update(kinds)
            return
        if isinstance(node, ast.AnnAssign):
            kinds = self.expr(node.value)
            if isinstance(node.target, ast.Name):
                self.tainted[node.target.id] = set(kinds)
            return
        if isinstance(node, ast.Return):
            self.return_kinds |= self.expr(node.value)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_taint = self.expr(node.iter)
            if TAINT_ORDER in iter_taint:
                self._record(
                    TAINT_ORDER,
                    "iteration over an unordered container",
                    node.iter,
                )
            for name in _names_in(node.target):
                self.tainted[name] = set(iter_taint)
            for child in node.body + node.orelse:
                self.stmt(child)
            return
        if isinstance(node, (ast.If, ast.While)):
            self.expr(node.test)
            for child in node.body + node.orelse:
                self.stmt(child)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.expr(item.context_expr)
            for child in node.body:
                self.stmt(child)
            return
        if isinstance(node, ast.Try):
            for child in (
                node.body
                + [s for h in node.handlers for s in h.body]
                + node.orelse
                + node.finalbody
            ):
                self.stmt(child)
            return
        if isinstance(node, ast.Expr):
            self.expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self.stmt(child)
            elif isinstance(child, ast.expr):
                self.expr(child)


def analyze_taint(
    func: ast.AST,
    resolve: ResolveCall,
    returning: Dict[str, FrozenSet[str]],
    clock_modules: FrozenSet[str],
    include_clock: bool = True,
) -> TaintSummary:
    """Run the taint walk over one function body.

    ``resolve`` maps a call node to the project functions it may reach
    (precise edges only — see the call-graph tiering); ``returning`` is
    the current taint-return fixpoint state.  ``include_clock=False``
    drops wall-clock sources (telemetry sinks legitimately merge span
    timings; their determinism contract is about *order*, not values).
    """
    walker = _TaintWalker(resolve, returning, clock_modules, include_clock)
    walker.run(func)
    return TaintSummary(
        returns=frozenset(walker.return_kinds),
        sites=tuple(walker.sites),
    )


# ---------------------------------------------------------------------------
# Raised-exception surfaces (dual-path diff)
# ---------------------------------------------------------------------------


def raised_names(func: ast.AST, safe_exceptions: FrozenSet[str]) -> Set[str]:
    """Names this function's body can raise, guard conversion applied.

    A low-level raise under ``decode_guard`` (or a catching ``try``)
    surfaces as ``CorruptedStreamError``; safe structured errors keep
    their own name.
    """
    protections = protection_map(func)
    out: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Raise):
            continue
        name = _raise_name(node)
        if name is None:
            continue
        if name in safe_exceptions:
            out.add("CorruptedStreamError")
        elif protects_against(protections.get(node, ()), name):
            out.add("CorruptedStreamError")
        else:
            out.add(name)
    return out


__all__ = [
    "CLOCK_NAMES",
    "CONSUMING_METHODS",
    "LOW_LEVEL_EXCEPTIONS",
    "LoopIssue",
    "RiskyOp",
    "TAINT_CLOCK",
    "TAINT_ENV",
    "TAINT_ORDER",
    "TAINT_RNG",
    "TaintSite",
    "TaintSummary",
    "WIRE_READ_CALLS",
    "analyze_taint",
    "collect_safe_exceptions",
    "loop_issues",
    "protection_map",
    "protects_against",
    "raised_names",
    "risky_ops",
    "while_has_progress",
]
