"""Repo-specific lint rules for the :mod:`repro.verify.lint` engine.

Each rule encodes a correctness contract of this codebase:

``no-float-hotpath``
    Bit-exact coder paths (``entropy/arith.py``, ``fastpath/``,
    ``bitstream/io.py``) must use pure integer arithmetic — a stray
    float or true division silently changes compressed bits across
    platforms.  Functions named ``quantize_*`` are exempt: quantisation
    is the one sanctioned float→int boundary.

``unordered-iteration``
    Fingerprint and serialisation code must be deterministic; iterating
    a set (or unsorted ``dict.values()``) makes cache keys and archive
    bytes depend on hash ordering.

``unseeded-random``
    Workload generators must draw from an explicit ``random.Random(seed)``
    (or seeded numpy generator) so benchmarks are reproducible.

``fastpath-parity``
    A module that imports :mod:`repro.fastpath` has opted into the
    reference/kernel dual-path contract: every public compress/decompress
    style entry point must dispatch through ``fastpath_enabled()``
    (directly or via a helper it calls), so ``REPRO_FASTPATH=0`` always
    reaches the reference oracle.

``no-wallclock-in-codec``
    Wall-clock reads belong to the observability layer.  Outside
    ``obs/``, code must go through :mod:`repro.obs.clock` (or a span)
    instead of calling ``time.time()`` / ``time.perf_counter()`` etc.
    directly — one sanctioned clock boundary keeps codec output a pure
    function of its inputs and makes timing swappable in tests.

``no-assert-in-decoder``
    Decode paths validate *untrusted* input, and ``assert`` disappears
    under ``python -O`` — a decoder whose bounds checks are asserts is
    hardened only in debug builds.  Inside any decode-flavoured function
    in a codec path, input validation must raise
    ``CorruptedStreamError`` (or run under ``decode_guard``), never use
    a bare ``assert``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.verify import SEVERITY_ERROR, Finding
from repro.verify.lint import FileRule, ParsedModule, ProjectRule


def _function_stack(tree: ast.Module) -> Dict[ast.AST, Tuple[str, ...]]:
    """Map every node to the chain of enclosing function names."""
    stack: Dict[ast.AST, Tuple[str, ...]] = {}

    def visit(node: ast.AST, chain: Tuple[str, ...]) -> None:
        stack[node] = chain
        child_chain = chain
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_chain = chain + (node.name,)
        for child in ast.iter_child_nodes(node):
            visit(child, child_chain)

    visit(tree, ())
    return stack


class NoFloatHotpath(FileRule):
    """Flag float constants and true division in bit-exact coder paths."""

    rule_id = "no-float-hotpath"
    severity = SEVERITY_ERROR
    description = (
        "float arithmetic or `/` in a bit-exact hot path "
        "(quantize_* functions are exempt)"
    )
    paths = ("entropy/arith.py", "fastpath/", "bitstream/io.py")

    def check(self, module: ParsedModule) -> List[Finding]:
        stack = _function_stack(module.tree)
        findings: List[Finding] = []

        def exempt(node: ast.AST) -> bool:
            return any(name.startswith("quantize_") for name in stack[node])

        for node in ast.walk(module.tree):
            if exempt(node):
                continue
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.Div
            ):
                findings.append(self._finding(module, node, "true division `/`"))
            elif isinstance(node, ast.Constant) and isinstance(node.value, float):
                findings.append(
                    self._finding(module, node, f"float constant {node.value!r}")
                )
        return findings

    def _finding(
        self, module: ParsedModule, node: ast.AST, what: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            file=module.display,
            line=getattr(node, "lineno", 1),
            message=f"{what} in bit-exact hot path; use integer arithmetic",
        )


class UnorderedIteration(FileRule):
    """Flag hash-order-dependent iteration in fingerprint/serialize code."""

    rule_id = "unordered-iteration"
    severity = SEVERITY_ERROR
    description = (
        "iteration over a set or unsorted dict.values() in a "
        "determinism-critical path"
    )
    paths = ("pipeline/fingerprint.py", "core/serialize.py")

    def check(self, module: ParsedModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                reason = self._unordered(it)
                if reason is not None:
                    findings.append(Finding(
                        rule=self.rule_id,
                        severity=self.severity,
                        file=module.display,
                        line=it.lineno,
                        message=(
                            f"iterating {reason} makes output depend on hash "
                            "order; sort or use an ordered container"
                        ),
                    ))
        return findings

    @staticmethod
    def _unordered(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}()"
            if isinstance(func, ast.Attribute) and func.attr == "values":
                return "dict.values() without sorted()"
        return None


class UnseededRandom(FileRule):
    """Flag module-level random draws in workload generators."""

    rule_id = "unseeded-random"
    severity = SEVERITY_ERROR
    description = "unseeded module-level randomness in a workload generator"
    paths = ("workloads/",)

    _NP_OK = ("default_rng", "RandomState", "Generator", "SeedSequence")

    def check(self, module: ParsedModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            owner = func.value
            if isinstance(owner, ast.Name) and owner.id == "random":
                if func.attr != "Random":
                    findings.append(self._finding(module, node, f"random.{func.attr}"))
            elif (
                isinstance(owner, ast.Attribute)
                and owner.attr == "random"
                and isinstance(owner.value, ast.Name)
                and owner.value.id in ("np", "numpy")
                and func.attr not in self._NP_OK
            ):
                findings.append(
                    self._finding(module, node, f"np.random.{func.attr}")
                )
        return findings

    def _finding(
        self, module: ParsedModule, node: ast.AST, call: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            file=module.display,
            line=getattr(node, "lineno", 1),
            message=(
                f"{call}() draws from shared global state; construct a "
                "seeded random.Random instead"
            ),
        )


class FastpathParity(ProjectRule):
    """Public codec entry points must dispatch through fastpath_enabled()."""

    rule_id = "fastpath-parity"
    severity = SEVERITY_ERROR
    description = (
        "public codec entry point in a fastpath-aware module never "
        "consults fastpath_enabled()"
    )

    _SCOPES = ("core/samc/", "baselines/")
    _VERBS = ("compress", "decompress", "encode", "decode", "tokenize", "train")

    def check_project(self, modules: List[ParsedModule]) -> List[Finding]:
        findings: List[Finding] = []
        for module in modules:
            if not module.relpath.startswith(self._SCOPES):
                continue
            if not self._imports_fastpath(module.tree):
                continue
            findings.extend(self._check_module(module))
        return findings

    @staticmethod
    def _imports_fastpath(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module is not None and node.module.startswith(
                    "repro.fastpath"
                ):
                    return True
            elif isinstance(node, ast.Import):
                if any(a.name.startswith("repro.fastpath") for a in node.names):
                    return True
        return False

    def _check_module(self, module: ParsedModule) -> List[Finding]:
        # Every function/method in the module, by bare name, with the set
        # of names it calls (both foo() and obj.foo() count as "foo").
        defs: Dict[str, ast.AST] = {}
        calls: Dict[str, Set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.setdefault(node.name, node)
                calls.setdefault(node.name, set()).update(_called_names(node))

        def reaches_dispatch(name: str) -> bool:
            frontier = [name]
            visited: Set[str] = set()
            while frontier:
                current = frontier.pop()
                if current in visited:
                    continue
                visited.add(current)
                called = calls.get(current, set())
                if "fastpath_enabled" in called:
                    return True
                frontier.extend(c for c in called if c in defs)
            return False

        findings: List[Finding] = []
        for name in sorted(defs):
            if name.startswith("_"):
                continue
            if not any(verb in name for verb in self._VERBS):
                continue
            if reaches_dispatch(name):
                continue
            node = defs[name]
            findings.append(Finding(
                rule=self.rule_id,
                severity=self.severity,
                file=module.display,
                line=getattr(node, "lineno", 1),
                message=(
                    f"{name}() lives in a fastpath-aware module but never "
                    "reaches fastpath_enabled(); add the dispatch or a "
                    "`# repro: noqa fastpath-parity` with justification"
                ),
            ))
        return findings


class NoWallclockInCodec(FileRule):
    """Flag direct wall-clock reads outside the obs layer."""

    rule_id = "no-wallclock-in-codec"
    severity = SEVERITY_ERROR
    description = (
        "direct time.time()/perf_counter()-style call outside obs/; "
        "use repro.obs.clock"
    )

    #: The sanctioned clock boundary.
    _EXEMPT = ("obs/",)
    _CLOCK_NAMES = frozenset({
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    })

    def applies_to(self, relpath: str) -> bool:
        return not relpath.startswith(self._EXEMPT)

    def check(self, module: ParsedModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    clocked = [
                        alias.name
                        for alias in node.names
                        if alias.name in self._CLOCK_NAMES
                    ]
                    if clocked:
                        findings.append(self._finding(
                            module, node,
                            f"from time import {', '.join(clocked)}",
                        ))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._CLOCK_NAMES
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    findings.append(
                        self._finding(module, node, f"time.{func.attr}()")
                    )
        return findings

    def _finding(
        self, module: ParsedModule, node: ast.AST, what: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            file=module.display,
            line=getattr(node, "lineno", 1),
            message=(
                f"{what} reads the wall clock outside obs/; route timing "
                "through repro.obs.clock (or a recorder span)"
            ),
        )


class NoAssertInDecoder(FileRule):
    """Flag ``assert`` inside decode-flavoured functions in codec paths.

    ``assert`` is stripped under ``python -O``, so a decoder that guards
    untrusted input with asserts silently loses its hardening in
    optimised builds.  Raise ``CorruptedStreamError`` instead.
    """

    rule_id = "no-assert-in-decoder"
    severity = SEVERITY_ERROR
    description = (
        "bare `assert` inside a decoder; stripped under python -O — "
        "raise CorruptedStreamError instead"
    )
    paths = (
        "core/",
        "baselines/",
        "entropy/",
        "fastpath/",
        "bitstream/",
        "resilience/",
    )

    #: A function is a decoder when its name contains one of these.
    _DECODE_VERBS = (
        "decode",
        "decompress",
        "deserialize",
        "unwrap",
        "detokenize",
        "reassemble",
    )

    def check(self, module: ParsedModule) -> List[Finding]:
        stack = _function_stack(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assert):
                continue
            chain = stack.get(node, ())
            if not any(
                verb in name for name in chain for verb in self._DECODE_VERBS
            ):
                continue
            findings.append(Finding(
                rule=self.rule_id,
                severity=self.severity,
                file=module.display,
                line=node.lineno,
                message=(
                    f"assert inside decoder {chain[-1]}() is stripped under "
                    "python -O; raise CorruptedStreamError (or use "
                    "decode_guard) for input validation"
                ),
            ))
        return findings


def _called_names(func: ast.AST) -> Set[str]:
    """Bare names of everything ``func`` calls (Name or Attribute form)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def default_rules(include_flow: bool = True) -> List[object]:
    """The rule set ``python -m repro check`` runs.

    ``include_flow=False`` drops the whole-program contract analyses
    (call-graph + dataflow), leaving only the token-level rules —
    useful for fixtures that exercise one layer in isolation.
    """
    from repro.verify.contracts import flow_rules

    rules: List[object] = [
        NoFloatHotpath(),
        UnorderedIteration(),
        UnseededRandom(),
        FastpathParity(),
        NoWallclockInCodec(),
        NoAssertInDecoder(),
    ]
    if include_flow:
        rules.extend(flow_rules())
    return rules
