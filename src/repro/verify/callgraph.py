"""Project-wide call graph over the package's Python AST.

The whole-program analyses in :mod:`repro.verify.contracts` need to
answer one question cheaply and *soundly over-approximately*: starting
from an untrusted-input entry point, which functions can run?  Python
offers no static dispatch, so the graph resolves calls in three tiers:

1. **Lexical** — ``foo()`` where ``foo`` is defined in the same module
   resolves to that definition (module level preferred, then any
   same-module definition of the name).
2. **Import-directed** — ``mod.foo()`` where ``mod`` is an imported
   ``repro`` module resolves inside that module; attribute calls on
   *external* module aliases (``np``, ``struct``, ``os``) resolve to
   nothing rather than falling through to name matching.
3. **Dynamic-dispatch fallback** — any other ``obj.foo()`` (including
   ``self.foo()`` when the enclosing class has no such method) resolves
   to *every* project function named ``foo``.  This deliberately
   over-approximates: reachability must never miss a decoder because it
   was invoked through a codec object of statically-unknown type.

The over-approximation is the soundness half of the tradeoff; the
precision cost (a shared method name like ``decompress_block`` links
every codec) is acceptable because the analyses scoped on top of the
graph only report *locally verifiable* facts (an unguarded raise, a
loop without a progress metric) — reaching too many functions can only
surface real code, never fabricate a defect site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.verify.lint import ParsedModule


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str               # "core/samc/codec.py::SamcCodec.decompress"
    name: str                   # bare name: "decompress"
    relpath: str                # module path relative to the package
    display: str                # path reported in findings
    lineno: int
    node: ast.AST               # the FunctionDef / AsyncFunctionDef
    class_name: Optional[str]   # immediately enclosing class, if any


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str                 # qualname of the enclosing function
    callee_name: str            # bare name being called
    lineno: int
    node: ast.Call
    receiver: Optional[str]     # "self", a module alias, a variable, or None
    resolved: Tuple[str, ...]   # qualnames this site may dispatch to
    fallback: bool              # True when resolved via tier-3 name match


@dataclass
class _ModuleIndex:
    """Per-module name tables used during resolution."""

    toplevel: Dict[str, str] = field(default_factory=dict)
    all_defs: Dict[str, List[str]] = field(default_factory=dict)
    methods: Dict[str, Dict[str, str]] = field(default_factory=dict)
    # import alias -> repro module dotted path, or None for external
    imports: Dict[str, Optional[str]] = field(default_factory=dict)


class CallGraph:
    """Functions, call sites, and reachability over one parsed tree."""

    def __init__(
        self,
        functions: Dict[str, FunctionInfo],
        call_sites: Dict[str, Tuple[CallSite, ...]],
        by_name: Dict[str, Tuple[str, ...]],
    ) -> None:
        self.functions = functions
        self.call_sites = call_sites
        self.by_name = by_name

    def sites(self, qualname: str) -> Tuple[CallSite, ...]:
        return self.call_sites.get(qualname, ())

    def callees(self, qualname: str) -> Set[str]:
        out: Set[str] = set()
        for site in self.sites(qualname):
            out.update(site.resolved)
        return out

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(
                c for c in self.callees(current) if c not in seen
            )
        return seen


def _module_dotted(relpath: str) -> str:
    """``core/samc/codec.py`` -> ``repro.core.samc.codec``."""
    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [p for p in stem.split("/") if p != "__init__"]
    return ".".join(["repro"] + parts) if parts else "repro"


def _index_module(module: ParsedModule) -> _ModuleIndex:
    index = _ModuleIndex()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.name.startswith("repro") else None
                index.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                if source.startswith("repro"):
                    # ``from repro.x import submodule`` may bind a module;
                    # record the dotted guess, resolution tolerates misses.
                    index.imports[bound] = f"{source}.{alias.name}"
                else:
                    index.imports[bound] = None
    return index


def _collect_functions(
    module: ParsedModule,
) -> List[Tuple[FunctionInfo, List[Tuple[ast.Call, Optional[str], str]]]]:
    """All function defs in a module, each with its direct call nodes.

    Calls made by code nested in an inner def belong to the inner def;
    stray calls in class/module bodies belong to no function (ignored).
    Defs nested inside ``if``/``try`` blocks are still collected.
    """
    collected: List[
        Tuple[FunctionInfo, List[Tuple[ast.Call, Optional[str], str]]]
    ] = []

    def walk(
        node: ast.AST,
        scope: Tuple[str, ...],
        class_name: Optional[str],
        bucket: Optional[List[Tuple[ast.Call, Optional[str], str]]],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dotted = ".".join(scope + (child.name,))
                info = FunctionInfo(
                    qualname=f"{module.relpath}::{dotted}",
                    name=child.name,
                    relpath=module.relpath,
                    display=module.display,
                    lineno=child.lineno,
                    node=child,
                    class_name=class_name,
                )
                calls: List[Tuple[ast.Call, Optional[str], str]] = []
                collected.append((info, calls))
                walk(child, scope + (child.name,), None, calls)
            elif isinstance(child, ast.ClassDef):
                walk(child, scope + (child.name,), child.name, bucket)
            else:
                if bucket is not None and isinstance(child, ast.Call):
                    func = child.func
                    if isinstance(func, ast.Name):
                        bucket.append((child, None, func.id))
                    elif isinstance(func, ast.Attribute):
                        receiver = (
                            func.value.id
                            if isinstance(func.value, ast.Name)
                            else "<expr>"
                        )
                        bucket.append((child, receiver, func.attr))
                walk(child, scope, class_name, bucket)

    walk(module.tree, (), None, None)
    return collected


def build_callgraph(modules: Sequence[ParsedModule]) -> CallGraph:
    """Build the project call graph from parsed modules."""
    functions: Dict[str, FunctionInfo] = {}
    by_name: Dict[str, List[str]] = {}
    by_module: Dict[str, _ModuleIndex] = {}
    dotted_to_relpath: Dict[str, str] = {}
    pending: Dict[str, List[Tuple[ast.Call, Optional[str], str]]] = {}

    for module in modules:
        dotted_to_relpath[_module_dotted(module.relpath)] = module.relpath
        index = _index_module(module)
        by_module[module.relpath] = index
        for info, calls in _collect_functions(module):
            if info.qualname in functions:
                continue  # redefinition; first definition wins
            functions[info.qualname] = info
            pending[info.qualname] = calls
            by_name.setdefault(info.name, []).append(info.qualname)
            dotted = info.qualname.split("::", 1)[1]
            if "." not in dotted:
                index.toplevel[info.name] = info.qualname
            index.all_defs.setdefault(info.name, []).append(info.qualname)
            if info.class_name is not None:
                index.methods.setdefault(info.class_name, {})[
                    info.name
                ] = info.qualname

    frozen_by_name = {
        name: tuple(quals) for name, quals in sorted(by_name.items())
    }

    def _fallback(name: str) -> Tuple[Tuple[str, ...], bool]:
        # Dunder names never fall back: ``super().__init__()`` would
        # otherwise link every constructor in the project into one
        # giant reachability blob.
        if name.startswith("__") and name.endswith("__"):
            return (), True
        return tuple(frozen_by_name.get(name, ())), True

    def resolve(
        caller: FunctionInfo,
        receiver: Optional[str],
        name: str,
    ) -> Tuple[Tuple[str, ...], bool]:
        """Resolve one call; the bool marks a tier-3 name-match fallback."""
        index = by_module[caller.relpath]
        if receiver is None:
            # Bare-name call: same module first, else global name match.
            if name in index.toplevel:
                return (index.toplevel[name],), False
            if name in index.all_defs:
                return tuple(index.all_defs[name]), False
            if name in index.imports:
                target = index.imports[name]
                if target is None:
                    return (), False  # external symbol
                # ``from repro.m import f`` — find f in module m.
                mod_dotted, _, symbol = target.rpartition(".")
                relpath = dotted_to_relpath.get(mod_dotted)
                if relpath is not None:
                    sub = by_module.get(relpath)
                    if sub is not None and symbol in sub.toplevel:
                        return (sub.toplevel[symbol],), False
                    # imported a class: constructor calls resolve to its
                    # __init__ when defined.
                    if sub is not None:
                        ctor = sub.methods.get(symbol, {}).get("__init__")
                        if ctor is not None:
                            return (ctor,), False
                return _fallback(name)
            return _fallback(name)
        if receiver == "self" and caller.class_name is not None:
            own = index.methods.get(caller.class_name, {})
            if name in own:
                return (own[name],), False
        if receiver in index.imports:
            target = index.imports[receiver]
            if target is None:
                return (), False  # call on an external module alias
            relpath = dotted_to_relpath.get(target)
            if relpath is not None:
                sub = by_module.get(relpath)
                if sub is not None and name in sub.toplevel:
                    return (sub.toplevel[name],), False
        # Dynamic dispatch: any project function of this name.
        return _fallback(name)

    call_sites: Dict[str, Tuple[CallSite, ...]] = {}
    for qualname, calls in pending.items():
        caller = functions[qualname]
        sites: List[CallSite] = []
        for node, receiver, name in calls:
            resolved, fallback = resolve(caller, receiver, name)
            sites.append(CallSite(
                caller=qualname,
                callee_name=name,
                lineno=node.lineno,
                node=node,
                receiver=receiver,
                resolved=resolved,
                fallback=fallback,
            ))
        call_sites[qualname] = tuple(sites)

    return CallGraph(functions, call_sites, frozen_by_name)


__all__ = [
    "CallGraph",
    "CallSite",
    "FunctionInfo",
    "build_callgraph",
]
