"""Layer 2: the repo-specific AST lint engine.

Generic lint tools cannot know that ``entropy/arith.py`` must stay
float-free or that ``pipeline/fingerprint.py`` must never iterate an
unordered container — those are *this repo's* correctness contracts.
This module supplies the machinery; :mod:`repro.verify.rules` supplies
the contracts.

Two rule shapes exist:

* :class:`FileRule` — scoped to a set of package-relative path
  prefixes; receives one parsed module at a time.
* :class:`ProjectRule` — receives every parsed module at once, for
  cross-module contracts (the reference↔fastpath parity rule).

Suppression: a finding whose source line carries ``# repro: noqa``
(all rules) or ``# repro: noqa <rule-id> ...`` (listed rules) is
dropped, mirroring how flake8-style tools opt out line by line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.verify import Finding

_NOQA_MARKER = "# repro: noqa"


@dataclass(frozen=True)
class ParsedModule:
    """One source file: its display path, AST, and raw lines."""

    relpath: str      # package-relative, e.g. "entropy/arith.py"
    display: str      # reported in findings, e.g. "src/repro/entropy/arith.py"
    tree: ast.Module
    lines: Tuple[str, ...]


class FileRule:
    """A rule scoped to files whose relpath starts with one of ``paths``."""

    rule_id: str = ""
    severity: str = "error"
    description: str = ""
    paths: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        return any(relpath.startswith(prefix) for prefix in self.paths)

    def check(self, module: ParsedModule) -> List[Finding]:
        raise NotImplementedError


class ProjectRule:
    """A rule that inspects every module at once (cross-module contracts)."""

    rule_id: str = ""
    severity: str = "error"
    description: str = ""

    def check_project(self, modules: Sequence[ParsedModule]) -> List[Finding]:
        raise NotImplementedError


def package_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def _display_prefix(root: Path) -> str:
    """Report paths as ``src/repro/...`` when run from a source layout."""
    if root.parent.name == "src":
        return "src/repro/"
    return f"{root.name}/"


def parse_tree(root: Optional[Path] = None) -> List[ParsedModule]:
    """Parse every ``.py`` file under ``root`` (default: the package)."""
    base = root if root is not None else package_root()
    prefix = _display_prefix(base)
    modules: List[ParsedModule] = []
    for path in sorted(base.rglob("*.py")):
        relpath = path.relative_to(base).as_posix()
        source = path.read_text(encoding="utf-8")
        modules.append(ParsedModule(
            relpath=relpath,
            display=prefix + relpath,
            tree=ast.parse(source, filename=str(path)),
            lines=tuple(source.splitlines()),
        ))
    return modules


def _suppressed(finding: Finding, module: ParsedModule) -> bool:
    """True when the flagged line opts out via ``# repro: noqa``."""
    if not 1 <= finding.line <= len(module.lines):
        return False
    line = module.lines[finding.line - 1]
    marker = line.find(_NOQA_MARKER)
    if marker < 0:
        return False
    remainder = line[marker + len(_NOQA_MARKER):].strip()
    if not remainder:
        return True  # bare noqa suppresses every rule on the line
    return finding.rule in remainder.replace(",", " ").split()


def run_lint(
    rules: Iterable[object],
    root: Optional[str] = None,
    modules: Optional[Sequence[ParsedModule]] = None,
) -> List[Finding]:
    """Run the given rules over the source tree, honouring noqa lines."""
    if modules is None:
        modules = parse_tree(Path(root) if root is not None else None)
    by_relpath: Dict[str, ParsedModule] = {m.relpath: m for m in modules}
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, FileRule):
            for module in modules:
                if rule.applies_to(module.relpath):
                    findings.extend(rule.check(module))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(modules))
        else:
            raise TypeError(f"unknown rule kind {type(rule).__name__}")
    kept = []
    for finding in findings:
        module = _module_for(finding, by_relpath)
        if module is None or not _suppressed(finding, module):
            kept.append(finding)
    return kept


def _module_for(
    finding: Finding, by_relpath: Dict[str, ParsedModule]
) -> Optional[ParsedModule]:
    for module in by_relpath.values():
        if module.display == finding.file:
            return module
    return None
