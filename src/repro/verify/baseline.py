"""Accepted-finding baseline for ``repro check``.

The whole-program analyses are deliberately strict; some findings they
surface are *accepted* — a raw ``IndexError`` on an out-of-range block
index is a documented caller contract, not a wire-data leak.  Rather
than sprinkle permanent ``noqa`` comments on code that is working as
intended, those findings live in a committed baseline file
(``.repro-check-baseline.json``): CI fails on any finding *not* in the
baseline, and a baseline entry that no longer matches anything is
reported as stale so the file can only shrink.

Matching is a multiset subtraction on ``(rule, file, message)`` —
line numbers are excluded so unrelated edits above a baselined site do
not resurrect it.

Triage workflow for a new finding:

1. **Fix it** — the default.
2. **Suppress it** with ``# repro: noqa <rule> (reason)`` when the code
   is right and the analysis is wrong — a permanent, in-source decision.
3. **Baseline it** with ``repro check --write-baseline`` when the
   finding is real-but-accepted and should stay visible in review:
   regenerate the file, commit the diff, and justify the new entry in
   the PR description.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.verify import Finding

BASELINE_FILENAME = ".repro-check-baseline.json"
BASELINE_VERSION = 1

BaselineEntry = Dict[str, str]


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    """The line-insensitive identity a baseline entry matches on."""
    return (finding.rule, finding.file, finding.message)


def entry_key(entry: BaselineEntry) -> Tuple[str, str, str]:
    return (entry["rule"], entry["file"], entry["message"])


def default_baseline_path() -> Optional[Path]:
    """Locate a committed baseline: cwd first, then the repo root.

    Returns None when no baseline file exists — the check then runs
    raw, which is also the behaviour inside test trees.
    """
    from repro.verify.lint import package_root

    cwd_path = Path.cwd() / BASELINE_FILENAME
    if cwd_path.is_file():
        return cwd_path
    root = package_root().parent.parent  # src/repro -> repo checkout
    repo_path = root / BASELINE_FILENAME
    if repo_path.is_file():
        return repo_path
    return None


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Read and validate a baseline file."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or payload.get("version") != (
        BASELINE_VERSION
    ):
        raise ValueError(
            f"{path}: not a version-{BASELINE_VERSION} baseline file"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: missing findings list")
    out: List[BaselineEntry] = []
    for raw in entries:
        if not isinstance(raw, dict) or not all(
            isinstance(raw.get(k), str) for k in ("rule", "file", "message")
        ):
            raise ValueError(f"{path}: malformed baseline entry {raw!r}")
        out.append({
            "rule": raw["rule"],
            "file": raw["file"],
            "message": raw["message"],
        })
    return out


def write_baseline(findings: List[Finding], path: Path) -> None:
    """Serialise the current findings as the new accepted baseline."""
    entries = [
        {"rule": f.rule, "file": f.file, "message": f.message}
        for f in findings
    ]
    entries.sort(key=entry_key)
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> Tuple[List[Finding], int, List[BaselineEntry]]:
    """Subtract baselined findings.

    Returns ``(new_findings, matched_count, stale_entries)`` where
    ``stale_entries`` are baseline entries that matched nothing — dead
    weight that should be removed from the file.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = entry_key(entry)
        budget[key] = budget.get(key, 0) + 1
    kept: List[Finding] = []
    matched = 0
    for finding in findings:
        key = baseline_key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            kept.append(finding)
    stale: List[BaselineEntry] = []
    for entry in entries:
        key = entry_key(entry)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            stale.append(entry)
    return kept, matched, stale


__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_VERSION",
    "apply_baseline",
    "baseline_key",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
]
