"""Content-addressed result cache: in-process memo + optional disk tier.

Lookups go memo → disk → miss.  Disk entries are one JSON file per
fingerprint, sharded by the first two hex digits (``ab/abcdef….json``)
so a large cache never piles thousands of files into one directory.
Writes are atomic (temp file + ``os.replace``), so a crashed or
concurrent writer can never leave a torn entry — and even if something
else corrupts a file, :meth:`ResultCache.get` treats *any* unreadable or
mismatched entry as a miss (counted in ``stats.corrupt``), moves the
offending file into a ``quarantine/`` subdirectory for post-mortem
inspection (counted in ``stats.quarantined``), and lets the pipeline
recompute.  The cache never raises on bad data.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import get_recorder

#: Subdirectory (under the cache dir) where corrupt entries are parked.
QUARANTINE_DIR = "quarantine"

#: Disk entry envelope version (independent of the codec schema version,
#: which lives inside the fingerprint itself).
ENTRY_VERSION = 1


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier, plus corruption recoveries."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    quarantined: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
        }


class ResultCache:
    """Two-tier content-addressed cache for pipeline job payloads.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent tier.  ``None`` keeps the cache
        purely in-process (memoisation only).
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            # Create (and thereby validate) the directory up front: a
            # bad path must fail here, not after the compute is done.
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except (OSError, NotADirectoryError) as error:
                raise ValueError(
                    f"cache directory {str(self.cache_dir)!r} is not usable: "
                    f"{error}"
                ) from error
        self.stats = CacheStats()
        self._memo: Dict[str, Dict[str, Any]] = {}

    # -- paths ----------------------------------------------------------

    def entry_path(self, fingerprint: str) -> Optional[Path]:
        """Disk location of one fingerprint's entry (None when memory-only)."""
        if self.cache_dir is None:
            return None
        return self.cache_dir / fingerprint[:2] / f"{fingerprint}.json"

    # -- lookup ---------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Payload for ``fingerprint`` or None; never raises on bad entries."""
        payload = self._memo.get(fingerprint)
        if payload is not None:
            self.stats.memory_hits += 1
            return dict(payload)
        payload = self._read_disk(fingerprint)
        if payload is not None:
            self.stats.disk_hits += 1
            self._memo[fingerprint] = payload
            return dict(payload)
        self.stats.misses += 1
        return None

    def _read_disk(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        path = self.entry_path(fingerprint)
        if path is None or not path.is_file():
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(entry, dict)
                or entry.get("version") != ENTRY_VERSION
                or entry.get("fingerprint") != fingerprint
                or not isinstance(entry.get("payload"), dict)
            ):
                raise ValueError("malformed cache entry")
            return entry["payload"]
        except (OSError, ValueError):
            self.stats.corrupt += 1
            self._quarantine(path)
            return None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so a recompute can overwrite it.

        The original bytes are preserved under ``quarantine/`` — a
        corruption you can't diagnose is a corruption you'll see again.
        Falls back to deleting when even the move fails.
        """
        try:
            target_dir = path.parent.parent / QUARANTINE_DIR
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass  # unreadable *and* unmovable: recompute will overwrite
            return
        self.stats.quarantined += 1
        rec = get_recorder()
        if rec.enabled:
            rec.count("resilience.cache_quarantined")

    # -- store ----------------------------------------------------------

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        """Record a computed payload in both tiers."""
        self._memo[fingerprint] = dict(payload)
        self.stats.stores += 1
        path = self.entry_path(fingerprint)
        if path is None:
            return
        entry = {
            "version": ENTRY_VERSION,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries survive)."""
        self._memo.clear()


class NullCache(ResultCache):
    """A cache that never stores or hits — the ``--no-cache`` path."""

    def __init__(self) -> None:
        super().__init__(cache_dir=None)

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        pass
