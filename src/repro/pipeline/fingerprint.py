"""Content-addressed job fingerprints.

A pipeline job is "compress *this exact code image* under *this exact
codec configuration*" — so its cache identity is the SHA-256 of the code
bytes combined with a canonical (sorted-key, whitespace-free JSON)
rendering of the configuration.  Two processes computing the fingerprint
of the same job must agree bit-for-bit, which is why nothing here uses
``hash()`` (randomised per process), dict iteration order of caller
input, or float repr shortcuts: every value is normalised first.

``CODEC_SCHEMA_VERSION`` is folded into every fingerprint; bump it
whenever any codec's output format or accounting changes so stale disk
caches invalidate themselves instead of serving wrong ratios.  So is
:data:`repro.fastpath.FASTPATH_VERSION`, the coder-kernel generation —
the guard that a disk cache written before a kernel optimisation can
never be served against a kernel that codes differently.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.fastpath import FASTPATH_VERSION

#: Version of the codec outputs covered by cached results.  Part of every
#: fingerprint: bumping it orphans (never corrupts) old disk entries.
CODEC_SCHEMA_VERSION = 1


def _normalise(value: Any) -> Any:
    """Make a config value JSON-canonical (tuples→lists, ints stay ints)."""
    if isinstance(value, tuple):
        return [_normalise(v) for v in value]
    if isinstance(value, (list,)):
        return [_normalise(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _normalise(v) for k, v in value.items()}
    if isinstance(value, float) and value.is_integer():
        # 2.0 and 2 must fingerprint identically: callers pass scales as
        # either, and json renders them differently ("2.0" vs "2").
        return int(value)
    return value


# repro: contract determinism-sink
def canonical_config(
    algorithm: str,
    isa: str,
    block_size: int,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Canonical JSON fingerprint text for one codec configuration."""
    config: Dict[str, Any] = {
        "schema": CODEC_SCHEMA_VERSION,
        # The coder-kernel generation that produced (or would produce)
        # the result.  The fastpath kernels are bit-identical to the
        # reference today, so results are shared across REPRO_FASTPATH
        # settings — but if a kernel revision ever changed coded output,
        # bumping FASTPATH_VERSION orphans every pre-revision cache
        # entry instead of serving stale payload sizes.
        "fastpath_version": FASTPATH_VERSION,
        "algorithm": algorithm,
        "isa": isa,
        "block_size": block_size,
    }
    if extra:
        config.update(_normalise(extra))
    return json.dumps(config, sort_keys=True, separators=(",", ":"))


# repro: contract determinism-sink
def code_digest(code: bytes) -> str:
    """SHA-256 hex digest of a code image."""
    return hashlib.sha256(code).hexdigest()


# repro: contract determinism-sink
def job_fingerprint(
    code: bytes,
    algorithm: str,
    isa: str,
    block_size: int,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Content-addressed identity of one (code image, codec config) job."""
    hasher = hashlib.sha256()
    hasher.update(code_digest(code).encode("ascii"))
    hasher.update(b"\x00")
    hasher.update(canonical_config(algorithm, isa, block_size, extra).encode("utf-8"))
    return hasher.hexdigest()
