"""Pipeline run accounting: per-job metrics and the roll-up report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # circular at runtime: executor imports this module
    from repro.pipeline.executor import ExperimentJob


@dataclass
class JobResult:
    """One job's outcome: the ratio plus where it came from and what it cost."""

    job: "ExperimentJob"
    fingerprint: str
    ratio: float
    bytes_in: int
    bytes_out: int
    wall_time: float
    cache_hit: bool


#: How a job failed: an in-codec exception, a per-job timeout, a worker
#: process crash, or a benchmark-generation error.
FAILURE_ERROR = "error"
FAILURE_TIMEOUT = "timeout"
FAILURE_CRASH = "crash"
FAILURE_GENERATION = "generation"


@dataclass
class JobFailure:
    """One job the pipeline gave up on (after retries), and why.

    Failed jobs are *recorded*, not raised: the suite completes with
    partial results and the report's ``failures`` section says exactly
    what is missing from the tables.
    """

    job: "ExperimentJob"
    fingerprint: str
    kind: str  # one of the FAILURE_* constants
    error_type: str
    message: str
    attempts: int

    def format(self) -> str:
        where = f"{self.job.benchmark}/{self.job.isa}/{self.job.algorithm}"
        return (
            f"{where}: {self.kind} after {self.attempts} attempt(s) — "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class PipelineReport:
    """Everything a pipeline run measured, in submission order."""

    results: List[JobResult] = field(default_factory=list)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Jobs actually compressed this run (cache misses after batch dedup).
    recompressions: int = 0
    total_wall_time: float = 0.0
    max_workers: int = 1
    #: Merged telemetry snapshot (``repro.obs`` schema) when the run
    #: executed with observability enabled; ``None`` otherwise.
    telemetry: Optional[Dict[str, object]] = None
    #: Jobs the run could not complete (exceptions after retries,
    #: timeouts, worker crashes), in submission order.
    failures: List[JobFailure] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        return len(self.results)

    @property
    def hits(self) -> int:
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def misses(self) -> int:
        return self.job_count - self.hits

    @property
    def bytes_in(self) -> int:
        return sum(result.bytes_in for result in self.results)

    @property
    def bytes_out(self) -> int:
        return sum(result.bytes_out for result in self.results)

    @property
    def compute_time(self) -> float:
        """Wall time spent inside codecs (summed across jobs/workers)."""
        return sum(result.wall_time for result in self.results)

    def ratios(self) -> List[float]:
        """Per-job ratios, in submission order."""
        return [result.ratio for result in self.results]

    def summary(self) -> Dict[str, object]:
        return {
            "jobs": self.job_count,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "recompressions": self.recompressions,
            "corrupt_entries": self.cache_stats.get("corrupt", 0),
            "quarantined_entries": self.cache_stats.get("quarantined", 0),
            "failures": len(self.failures),
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "workers": self.max_workers,
            "wall_time_s": round(self.total_wall_time, 3),
            "compute_time_s": round(self.compute_time, 3),
        }

    def format(self) -> str:
        """Human summary (stderr material, not figure output).

        Degraded runs append one line per failed job so a partial table
        is never mistaken for a complete one.
        """
        line = (
            f"pipeline: {self.job_count} jobs, "
            f"{self.hits} cache hits, {self.recompressions} recompressions, "
            f"{self.max_workers} worker(s), "
            f"{self.total_wall_time:.2f}s wall"
        )
        if not self.failures:
            return line
        lines = [line + f", {len(self.failures)} FAILED"]
        for failure in self.failures:
            lines.append(f"  failed: {failure.format()}")
        return "\n".join(lines)
