"""Parallel experiment pipeline with content-addressed caching.

The figure sweeps are embarrassingly parallel — every (benchmark,
algorithm) cell is an independent pure function of its spec — and
heavily redundant across invocations, since the same deterministic
code images get recompressed again and again.  This package exploits
both: :func:`run_pipeline` fans jobs across a process pool and a
two-tier (memo + disk) cache keyed by SHA-256 of the code image plus a
canonical codec-config fingerprint, reporting per-job metrics through
:class:`PipelineReport`.
"""

from repro.pipeline.cache import CacheStats, NullCache, ResultCache
from repro.pipeline.executor import ExperimentJob, execute_job, run_pipeline
from repro.pipeline.fingerprint import (
    CODEC_SCHEMA_VERSION,
    canonical_config,
    code_digest,
    job_fingerprint,
)
from repro.pipeline.report import JobFailure, JobResult, PipelineReport

__all__ = [
    "CODEC_SCHEMA_VERSION",
    "CacheStats",
    "ExperimentJob",
    "JobFailure",
    "JobResult",
    "NullCache",
    "PipelineReport",
    "ResultCache",
    "canonical_config",
    "code_digest",
    "execute_job",
    "job_fingerprint",
    "run_pipeline",
]
