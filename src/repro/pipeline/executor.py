"""The job-graph runner behind the Figure 7-9 sweeps.

A job is one ``(benchmark, isa, algorithm, block_size, scale, seed)``
tuple; running it means generating the benchmark image (deterministic)
and measuring one algorithm's compression ratio on it.  The runner:

1. generates each *distinct* program once (jobs for the same benchmark
   share the image across algorithms),
2. resolves every job against the content-addressed cache,
3. fans the misses out across a ``ProcessPoolExecutor`` (``max_workers
   == 1`` stays fully in-process — the serial degenerate case), and
4. returns a :class:`~repro.pipeline.report.PipelineReport` with the
   per-job metrics and cache counters.

Ratios are pure functions of the job spec, so serial and parallel runs
are bit-identical by construction; the tests pin that property.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import Recorder, get_recorder, merge_snapshots, obs_enabled, use_recorder
from repro.obs.clock import perf_seconds
from repro.pipeline.cache import NullCache, ResultCache
from repro.pipeline.fingerprint import job_fingerprint
from repro.pipeline.report import (
    FAILURE_CRASH,
    FAILURE_ERROR,
    FAILURE_GENERATION,
    FAILURE_TIMEOUT,
    JobFailure,
    JobResult,
    PipelineReport,
)

#: Payload schema stored in the cache for each completed job.
_PAYLOAD_KEYS = frozenset({"ratio", "bytes_in", "bytes_out"})


@dataclass(frozen=True, order=True)
class ExperimentJob:
    """One cell of a figure sweep."""

    benchmark: str
    isa: str
    algorithm: str
    block_size: int = 32
    scale: float = 1.0
    seed: int = 0

    def program_key(self) -> Tuple[str, str, float, int]:
        """Key identifying the generated code image this job consumes."""
        return (self.benchmark, self.isa, self.scale, self.seed)

    def fingerprint(self, code: bytes) -> str:
        """Content-addressed cache identity of this job on ``code``."""
        return job_fingerprint(code, self.algorithm, self.isa, self.block_size)


def _generate_code(job: ExperimentJob) -> bytes:
    # Imported lazily: repro.analysis.experiments sits on top of this
    # module, and the workload generator drags in the full ISA stack.
    from repro.workloads.suite import generate_benchmark

    return generate_benchmark(
        job.benchmark, job.isa, scale=job.scale, seed=job.seed
    ).code


def execute_job(job: ExperimentJob, code: bytes) -> Dict[str, Any]:
    """Compress one image under one config; the pool worker entry point.

    Returns a JSON-serialisable payload so the result can go straight
    into the disk cache.
    """
    from repro.analysis.experiments import compression_ratio

    started = perf_seconds()
    if obs_enabled():
        # Isolate this job's telemetry in a fresh recorder scoped to its
        # (benchmark, isa, algorithm) cell; the snapshot travels back in
        # the payload so the parent can roll workers' telemetry up.
        local = Recorder(scope=f"{job.benchmark}/{job.isa}/{job.algorithm}")
        with use_recorder(local):
            with local.span(
                "job",
                benchmark=job.benchmark,
                isa=job.isa,
                algorithm=job.algorithm,
            ):
                ratio = compression_ratio(
                    code, job.algorithm, job.isa, job.block_size
                )
        return {
            "ratio": ratio,
            "bytes_in": len(code),
            "bytes_out": round(ratio * len(code)),
            "wall_time": perf_seconds() - started,
            "obs": local.snapshot(),
        }
    ratio = compression_ratio(code, job.algorithm, job.isa, job.block_size)
    elapsed = perf_seconds() - started
    return {
        "ratio": ratio,
        "bytes_in": len(code),
        "bytes_out": round(ratio * len(code)),
        "wall_time": elapsed,
    }


def _valid_payload(payload: Optional[Dict[str, Any]]) -> bool:
    return payload is not None and _PAYLOAD_KEYS.issubset(payload)


def run_pipeline(
    jobs: List[ExperimentJob],
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
    job_timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.05,
) -> PipelineReport:
    """Run a batch of experiment jobs, parallel across processes.

    Parameters
    ----------
    jobs:
        Job specs; results come back in the same order.
    max_workers:
        Process-pool width.  ``1`` runs everything inline (no pool, no
        pickling) and is the reference the parallel path must match.
    cache:
        A :class:`ResultCache` (or :class:`NullCache` to disable).
        Defaults to a fresh in-process memo, which still deduplicates
        identical jobs within the batch.
    job_timeout:
        Per-job wall-clock budget in seconds.  Only enforceable on the
        pool path (a worker can be abandoned; the inline path cannot
        preempt itself).  Jobs over budget are recorded as failures.
    retries:
        How many times to re-run a job that raised (or whose worker
        crashed) before recording it as failed.  Timeouts never retry.
    retry_backoff:
        Base of the exponential sleep between attempts
        (``retry_backoff * 2**attempt`` seconds).

    A failing job never aborts the batch: it is recorded in the
    report's ``failures`` list and the remaining jobs complete.
    """
    with get_recorder().span("pipeline.run", jobs=len(jobs)):
        return _run_pipeline(jobs, max_workers, cache, job_timeout, retries, retry_backoff)


def _run_pipeline(
    jobs: List[ExperimentJob],
    max_workers: int,
    cache: Optional[ResultCache],
    job_timeout: Optional[float],
    retries: int,
    retry_backoff: float,
) -> PipelineReport:
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    cache = cache if cache is not None else ResultCache()
    started = perf_seconds()

    # One generation per distinct program, shared across algorithms.
    # A generation error fails every job that consumes that program —
    # recorded, not raised, so the rest of the batch still runs.
    programs: Dict[Tuple[str, str, float, int], bytes] = {}
    bad_programs: Dict[Tuple[str, str, float, int], BaseException] = {}
    for job in jobs:
        key = job.program_key()
        if key in programs or key in bad_programs:
            continue
        try:
            programs[key] = _generate_code(job)
        except Exception as error:
            bad_programs[key] = error

    failure_by_index: Dict[int, JobFailure] = {}
    fingerprints: List[Optional[str]] = []
    for index, job in enumerate(jobs):
        key = job.program_key()
        if key in bad_programs:
            error = bad_programs[key]
            failure_by_index[index] = JobFailure(
                job=job,
                fingerprint="",
                kind=FAILURE_GENERATION,
                error_type=error.__class__.__name__,
                message=str(error),
                attempts=1,
            )
            fingerprints.append(None)
        else:
            fingerprints.append(job.fingerprint(programs[key]))

    # Resolve against the cache; collect the misses to compute.
    results: List[Optional[JobResult]] = [None] * len(jobs)
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(jobs)
    pending: List[int] = []
    resolved: Dict[str, Dict[str, Any]] = {}
    for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
        if fingerprint is None:
            continue
        if fingerprint in resolved:  # duplicate job inside this batch
            results[index] = _hit_result(job, fingerprint, resolved[fingerprint])
            payloads[index] = resolved[fingerprint]
            continue
        payload = cache.get(fingerprint)
        if _valid_payload(payload):
            resolved[fingerprint] = payload
            results[index] = _hit_result(job, fingerprint, payload)
            payloads[index] = payload
        else:
            pending.append(index)

    # Compute the misses — inline at width 1, process pool otherwise.
    unique_pending: Dict[str, int] = {}
    for index in pending:
        unique_pending.setdefault(fingerprints[index], index)
    work = [
        (fingerprints[index], jobs[index], programs[jobs[index].program_key()])
        for index in unique_pending.values()
    ]
    if max_workers == 1 or len(work) <= 1:
        computed, failed = _run_serial(work, retries, retry_backoff)
    else:
        computed, failed = _run_pool(
            work, max_workers, job_timeout, retries, retry_backoff
        )

    for fingerprint, payload in computed.items():
        cache.put(fingerprint, payload)
    for index in pending:
        fingerprint = fingerprints[index]
        if fingerprint in failed:
            template = failed[fingerprint]
            failure_by_index[index] = JobFailure(
                job=jobs[index],
                fingerprint=fingerprint,
                kind=template.kind,
                error_type=template.error_type,
                message=template.message,
                attempts=template.attempts,
            )
            continue
        payload = computed.get(fingerprint)
        if payload is None:  # pool torn down before this job ran (timeout path)
            failure_by_index[index] = JobFailure(
                job=jobs[index],
                fingerprint=fingerprint,
                kind=FAILURE_TIMEOUT,
                error_type="TimeoutError",
                message="pool shut down after an earlier job timed out",
                attempts=1,
            )
            continue
        payloads[index] = payload
        results[index] = JobResult(
            job=jobs[index],
            fingerprint=fingerprint,
            ratio=payload["ratio"],
            bytes_in=payload["bytes_in"],
            bytes_out=payload["bytes_out"],
            wall_time=payload.get("wall_time", 0.0),
            cache_hit=False,
        )

    rec = get_recorder()
    if rec.enabled:
        for _ in failure_by_index:
            rec.count("pipeline.job_failures")

    # Roll worker telemetry up, one contribution per job *occurrence*
    # (replay semantics: the aggregate is a pure function of the job
    # list, so serial and parallel runs merge identically).  Entries
    # cached by an obs-off run carry no snapshot and contribute nothing.
    telemetry = None
    snapshots = [
        payload["obs"]
        for payload in payloads
        if payload is not None and isinstance(payload.get("obs"), dict)
    ]
    if snapshots:
        telemetry = merge_snapshots(snapshots)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.merge_snapshot(telemetry)

    return PipelineReport(
        results=[result for result in results if result is not None],
        cache_stats=cache.stats.as_dict(),
        recompressions=len(computed),
        total_wall_time=perf_seconds() - started,
        max_workers=max_workers,
        telemetry=telemetry,
        failures=[failure_by_index[index] for index in sorted(failure_by_index)],
    )


_Work = Tuple[str, ExperimentJob, bytes]


def _failure(
    job: ExperimentJob,
    fingerprint: str,
    kind: str,
    error: BaseException,
    attempts: int,
) -> JobFailure:
    return JobFailure(
        job=job,
        fingerprint=fingerprint,
        kind=kind,
        error_type=error.__class__.__name__,
        message=str(error),
        attempts=attempts,
    )


def _backoff(attempt: int, retry_backoff: float) -> None:
    if retry_backoff > 0:
        time.sleep(retry_backoff * (2 ** attempt))


def _run_serial(
    work: List[_Work], retries: int, retry_backoff: float
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, JobFailure]]:
    """Inline execution with bounded retry.

    No preemptive timeout here: the inline path cannot interrupt its own
    stack, so ``job_timeout`` is a pool-only guarantee (documented on
    :func:`run_pipeline`).
    """
    rec = get_recorder()
    computed: Dict[str, Dict[str, Any]] = {}
    failed: Dict[str, JobFailure] = {}
    for fingerprint, job, code in work:
        for attempt in range(retries + 1):
            try:
                computed[fingerprint] = execute_job(job, code)
                break
            except Exception as error:
                if attempt < retries:
                    if rec.enabled:
                        rec.count("pipeline.job_retries")
                    _backoff(attempt, retry_backoff)
                    continue
                failed[fingerprint] = _failure(
                    job, fingerprint, FAILURE_ERROR, error, attempt + 1
                )
    return computed, failed


def _run_pool(
    work: List[_Work],
    max_workers: int,
    job_timeout: Optional[float],
    retries: int,
    retry_backoff: float,
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, JobFailure]]:
    """Process-pool execution in retry waves, with crash isolation.

    Each wave submits the remaining jobs and collects results with an
    optional per-job timeout.  A worker crash (``BrokenProcessPool``)
    poisons the pool, so it is rebuilt before the next wave; a timeout
    abandons the whole pool (the stuck worker cannot be preempted) and
    the jobs still queued behind it are recorded as timed out too.
    """
    rec = get_recorder()
    computed: Dict[str, Dict[str, Any]] = {}
    failed: Dict[str, JobFailure] = {}
    attempts: Dict[str, int] = {fingerprint: 0 for fingerprint, _, _ in work}
    remaining = list(work)
    pool = ProcessPoolExecutor(max_workers=min(max_workers, len(work)))
    try:
        while remaining:
            futures = [
                (item, pool.submit(execute_job, item[1], item[2]))
                for item in remaining
            ]
            retry_next: List[_Work] = []
            abandoned = False
            broken = False
            for item, future in futures:
                fingerprint, job, _ = item
                if abandoned:
                    # The pool was torn down after a timeout; this job may
                    # never run.  Fail it rather than wait forever.
                    failed[fingerprint] = JobFailure(
                        job=job,
                        fingerprint=fingerprint,
                        kind=FAILURE_TIMEOUT,
                        error_type="TimeoutError",
                        message="pool shut down after an earlier job timed out",
                        attempts=attempts[fingerprint] + 1,
                    )
                    continue
                attempts[fingerprint] += 1
                try:
                    computed[fingerprint] = future.result(timeout=job_timeout)
                except FuturesTimeoutError as error:
                    if rec.enabled:
                        rec.count("pipeline.job_timeouts")
                    failed[fingerprint] = _failure(
                        job, fingerprint, FAILURE_TIMEOUT, error, attempts[fingerprint]
                    )
                    pool.shutdown(wait=False, cancel_futures=True)
                    abandoned = True
                except BrokenProcessPool as error:
                    # The crash may have taken unrelated queued jobs with
                    # it; every still-missing job gets another wave on a
                    # fresh pool (or a crash record once out of retries).
                    broken = True
                    if attempts[fingerprint] <= retries:
                        if rec.enabled:
                            rec.count("pipeline.job_retries")
                        retry_next.append(item)
                    else:
                        failed[fingerprint] = _failure(
                            job, fingerprint, FAILURE_CRASH, error,
                            attempts[fingerprint],
                        )
                except Exception as error:
                    if attempts[fingerprint] <= retries:
                        if rec.enabled:
                            rec.count("pipeline.job_retries")
                        _backoff(attempts[fingerprint] - 1, retry_backoff)
                        retry_next.append(item)
                    else:
                        failed[fingerprint] = _failure(
                            job, fingerprint, FAILURE_ERROR, error,
                            attempts[fingerprint],
                        )
            if abandoned:
                retry_next = []
            elif broken and retry_next:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=min(max_workers, len(work)))
            remaining = retry_next
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return computed, failed


def _hit_result(
    job: ExperimentJob, fingerprint: str, payload: Dict[str, Any]
) -> JobResult:
    return JobResult(
        job=job,
        fingerprint=fingerprint,
        ratio=payload["ratio"],
        bytes_in=payload["bytes_in"],
        bytes_out=payload["bytes_out"],
        wall_time=0.0,
        cache_hit=True,
    )


__all__ = [
    "ExperimentJob",
    "NullCache",
    "ResultCache",
    "execute_job",
    "run_pipeline",
]
