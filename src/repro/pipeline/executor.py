"""The job-graph runner behind the Figure 7-9 sweeps.

A job is one ``(benchmark, isa, algorithm, block_size, scale, seed)``
tuple; running it means generating the benchmark image (deterministic)
and measuring one algorithm's compression ratio on it.  The runner:

1. generates each *distinct* program once (jobs for the same benchmark
   share the image across algorithms),
2. resolves every job against the content-addressed cache,
3. fans the misses out across a ``ProcessPoolExecutor`` (``max_workers
   == 1`` stays fully in-process — the serial degenerate case), and
4. returns a :class:`~repro.pipeline.report.PipelineReport` with the
   per-job metrics and cache counters.

Ratios are pure functions of the job spec, so serial and parallel runs
are bit-identical by construction; the tests pin that property.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import Recorder, get_recorder, merge_snapshots, obs_enabled, use_recorder
from repro.obs.clock import perf_seconds
from repro.pipeline.cache import NullCache, ResultCache
from repro.pipeline.fingerprint import job_fingerprint
from repro.pipeline.report import JobResult, PipelineReport

#: Payload schema stored in the cache for each completed job.
_PAYLOAD_KEYS = frozenset({"ratio", "bytes_in", "bytes_out"})


@dataclass(frozen=True, order=True)
class ExperimentJob:
    """One cell of a figure sweep."""

    benchmark: str
    isa: str
    algorithm: str
    block_size: int = 32
    scale: float = 1.0
    seed: int = 0

    def program_key(self) -> Tuple[str, str, float, int]:
        """Key identifying the generated code image this job consumes."""
        return (self.benchmark, self.isa, self.scale, self.seed)

    def fingerprint(self, code: bytes) -> str:
        """Content-addressed cache identity of this job on ``code``."""
        return job_fingerprint(code, self.algorithm, self.isa, self.block_size)


def _generate_code(job: ExperimentJob) -> bytes:
    # Imported lazily: repro.analysis.experiments sits on top of this
    # module, and the workload generator drags in the full ISA stack.
    from repro.workloads.suite import generate_benchmark

    return generate_benchmark(
        job.benchmark, job.isa, scale=job.scale, seed=job.seed
    ).code


def execute_job(job: ExperimentJob, code: bytes) -> Dict[str, Any]:
    """Compress one image under one config; the pool worker entry point.

    Returns a JSON-serialisable payload so the result can go straight
    into the disk cache.
    """
    from repro.analysis.experiments import compression_ratio

    started = perf_seconds()
    if obs_enabled():
        # Isolate this job's telemetry in a fresh recorder scoped to its
        # (benchmark, isa, algorithm) cell; the snapshot travels back in
        # the payload so the parent can roll workers' telemetry up.
        local = Recorder(scope=f"{job.benchmark}/{job.isa}/{job.algorithm}")
        with use_recorder(local):
            with local.span(
                "job",
                benchmark=job.benchmark,
                isa=job.isa,
                algorithm=job.algorithm,
            ):
                ratio = compression_ratio(
                    code, job.algorithm, job.isa, job.block_size
                )
        return {
            "ratio": ratio,
            "bytes_in": len(code),
            "bytes_out": round(ratio * len(code)),
            "wall_time": perf_seconds() - started,
            "obs": local.snapshot(),
        }
    ratio = compression_ratio(code, job.algorithm, job.isa, job.block_size)
    elapsed = perf_seconds() - started
    return {
        "ratio": ratio,
        "bytes_in": len(code),
        "bytes_out": round(ratio * len(code)),
        "wall_time": elapsed,
    }


def _valid_payload(payload: Optional[Dict[str, Any]]) -> bool:
    return payload is not None and _PAYLOAD_KEYS.issubset(payload)


def run_pipeline(
    jobs: List[ExperimentJob],
    max_workers: int = 1,
    cache: Optional[ResultCache] = None,
) -> PipelineReport:
    """Run a batch of experiment jobs, parallel across processes.

    Parameters
    ----------
    jobs:
        Job specs; results come back in the same order.
    max_workers:
        Process-pool width.  ``1`` runs everything inline (no pool, no
        pickling) and is the reference the parallel path must match.
    cache:
        A :class:`ResultCache` (or :class:`NullCache` to disable).
        Defaults to a fresh in-process memo, which still deduplicates
        identical jobs within the batch.
    """
    with get_recorder().span("pipeline.run", jobs=len(jobs)):
        return _run_pipeline(jobs, max_workers, cache)


def _run_pipeline(
    jobs: List[ExperimentJob],
    max_workers: int,
    cache: Optional[ResultCache],
) -> PipelineReport:
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    cache = cache if cache is not None else ResultCache()
    started = perf_seconds()

    # One generation per distinct program, shared across algorithms.
    programs: Dict[Tuple[str, str, float, int], bytes] = {}
    for job in jobs:
        key = job.program_key()
        if key not in programs:
            programs[key] = _generate_code(job)

    fingerprints = [job.fingerprint(programs[job.program_key()]) for job in jobs]

    # Resolve against the cache; collect the misses to compute.
    results: List[Optional[JobResult]] = [None] * len(jobs)
    payloads: List[Optional[Dict[str, Any]]] = [None] * len(jobs)
    pending: List[int] = []
    resolved: Dict[str, Dict[str, Any]] = {}
    for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
        if fingerprint in resolved:  # duplicate job inside this batch
            results[index] = _hit_result(job, fingerprint, resolved[fingerprint])
            payloads[index] = resolved[fingerprint]
            continue
        payload = cache.get(fingerprint)
        if _valid_payload(payload):
            resolved[fingerprint] = payload
            results[index] = _hit_result(job, fingerprint, payload)
            payloads[index] = payload
        else:
            pending.append(index)

    # Compute the misses — inline at width 1, process pool otherwise.
    unique_pending: Dict[str, int] = {}
    for index in pending:
        unique_pending.setdefault(fingerprints[index], index)
    computed: Dict[str, Dict[str, Any]] = {}
    work = [
        (fingerprints[index], jobs[index], programs[jobs[index].program_key()])
        for index in unique_pending.values()
    ]
    if max_workers == 1 or len(work) <= 1:
        for fingerprint, job, code in work:
            computed[fingerprint] = execute_job(job, code)
    else:
        with ProcessPoolExecutor(max_workers=min(max_workers, len(work))) as pool:
            futures = [
                (fingerprint, pool.submit(execute_job, job, code))
                for fingerprint, job, code in work
            ]
            for fingerprint, future in futures:
                computed[fingerprint] = future.result()

    for fingerprint, payload in computed.items():
        cache.put(fingerprint, payload)
    for index in pending:
        fingerprint = fingerprints[index]
        payload = computed[fingerprint]
        payloads[index] = payload
        results[index] = JobResult(
            job=jobs[index],
            fingerprint=fingerprint,
            ratio=payload["ratio"],
            bytes_in=payload["bytes_in"],
            bytes_out=payload["bytes_out"],
            wall_time=payload.get("wall_time", 0.0),
            cache_hit=False,
        )

    # Roll worker telemetry up, one contribution per job *occurrence*
    # (replay semantics: the aggregate is a pure function of the job
    # list, so serial and parallel runs merge identically).  Entries
    # cached by an obs-off run carry no snapshot and contribute nothing.
    telemetry = None
    snapshots = [
        payload["obs"]
        for payload in payloads
        if payload is not None and isinstance(payload.get("obs"), dict)
    ]
    if snapshots:
        telemetry = merge_snapshots(snapshots)
        recorder = get_recorder()
        if recorder.enabled:
            recorder.merge_snapshot(telemetry)

    return PipelineReport(
        results=[result for result in results if result is not None],
        cache_stats=cache.stats.as_dict(),
        recompressions=len(computed),
        total_wall_time=perf_seconds() - started,
        max_workers=max_workers,
        telemetry=telemetry,
    )


def _hit_result(
    job: ExperimentJob, fingerprint: str, payload: Dict[str, Any]
) -> JobResult:
    return JobResult(
        job=job,
        fingerprint=fingerprint,
        ratio=payload["ratio"],
        bytes_in=payload["bytes_in"],
        bytes_out=payload["bytes_out"],
        wall_time=0.0,
        cache_hit=True,
    )


__all__ = [
    "ExperimentJob",
    "NullCache",
    "ResultCache",
    "execute_job",
    "run_pipeline",
]
