"""Deterministic fault-injection fuzz driver (``python -m repro fuzz``).

For a seeded stream of injected faults (bit flips, truncations, splices,
duplications, LAT-entry perturbations) over every codec's output, the
driver asserts the resilience contract:

* **framed mode** — the fault is applied to a framed payload; decoding
  must either round-trip to the original bytes (the fault missed, which
  cannot happen for a non-identity fault under CRC-32 except by
  collision) or raise :class:`CorruptedStreamError`.
* **hardening mode** — the fault is applied to the *raw* bytes with no
  frame; the decoder may return wrong output (statistical decoders have
  no way to know) but must terminate inside the time budget and raise
  nothing other than ``CorruptedStreamError``.

Every decode is stop-watched; an iteration that exceeds the per-decode
budget is a failure (the guaranteed-termination contract is about the
refill path never hanging, so "slow" counts as broken).  All randomness
comes from one ``random.Random(seed)``: a failure reproduces exactly
from its seed and iteration count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.obs.clock import perf_seconds
from repro.resilience.errors import CorruptedStreamError
from repro.resilience.frame import unwrap_frame, wrap_frame
from repro.resilience.inject import corrupt_lat_entry, sample_fault

#: Per-decode wall-time budget (seconds).  Generous against CI jitter —
#: a non-terminating decode would blow far past it.
DEFAULT_TIME_BUDGET = 5.0


@dataclass
class FuzzTarget:
    """One codec's canonical bytes plus its decode function."""

    name: str
    data: bytes
    expected: bytes
    decode: Callable[[bytes], bytes]


@dataclass
class FuzzReport:
    """Outcome counters for one fuzz run."""

    seed: int
    iterations: int = 0
    roundtrips: int = 0
    #: Faults rejected with CorruptedStreamError, by category.
    detected: Dict[str, int] = field(default_factory=dict)
    #: Hardening decodes that terminated with (possibly wrong) output.
    survived: int = 0
    timeouts: int = 0
    max_decode_seconds: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and self.timeouts == 0

    def record_detection(self, category: str) -> None:
        self.detected[category] = self.detected.get(category, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": "decoders",
            "seed": self.seed,
            "iterations": self.iterations,
            "roundtrips": self.roundtrips,
            "detected": dict(sorted(self.detected.items())),
            "survived": self.survived,
            "timeouts": self.timeouts,
            "max_decode_ms": round(self.max_decode_seconds * 1000, 1),
            "failures": list(self.failures),
            "ok": self.ok,
        }

    def format_lines(self) -> List[str]:
        breakdown = ", ".join(
            f"{category}={count}"
            for category, count in sorted(self.detected.items())
        )
        lines = [
            f"fuzz: seed {self.seed}, {self.iterations} iterations",
            f"  detected:   {sum(self.detected.values())}"
            + (f" ({breakdown})" if breakdown else ""),
            f"  round-trips: {self.roundtrips}",
            f"  survived raw decodes: {self.survived}",
            f"  timeouts:   {self.timeouts} "
            f"(max decode {self.max_decode_seconds * 1000:.1f} ms)",
        ]
        for failure in self.failures:
            lines.append(f"  FAILURE: {failure}")
        lines.append("fuzz: PASS" if self.ok else "fuzz: FAIL")
        return lines


def build_targets(scale: float = 0.12, seed: int = 3) -> List[FuzzTarget]:
    """Every codec's serialised output over small deterministic programs."""
    # Imported here: the fuzz driver sits above the whole codec stack and
    # must stay importable without dragging it in at module load.
    from repro.baselines.byte_huffman import ByteHuffmanCodec
    from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
    from repro.baselines.lzw import lzw_compress, lzw_decompress
    from repro.core import decompress_image
    from repro.core.sadc import MipsSadcCodec, X86SadcCodec
    from repro.core.samc import SamcCodec
    from repro.core.serialize import deserialize_image, serialize_image
    from repro.workloads.suite import generate_benchmark

    mips = generate_benchmark("gcc", "mips", scale=scale, seed=seed).code
    x86 = generate_benchmark("gcc", "x86", scale=scale, seed=seed).code

    def archive_decode(data: bytes) -> bytes:
        return decompress_image(deserialize_image(data))

    targets: List[FuzzTarget] = []
    images = [
        ("samc-mips", SamcCodec.for_mips().compress(mips), mips),
        ("sadc-mips", MipsSadcCodec().compress(mips), mips),
        ("sadc-x86", X86SadcCodec().compress(x86), x86),
        ("byte-huffman", ByteHuffmanCodec().compress(mips), mips),
    ]
    for name, image, code in images:
        targets.append(FuzzTarget(
            name=name,
            data=serialize_image(image, framed=False),
            expected=code,
            decode=archive_decode,
        ))
    targets.append(FuzzTarget(
        name="lzw", data=lzw_compress(mips), expected=mips,
        decode=lzw_decompress,
    ))
    targets.append(FuzzTarget(
        name="gzipish", data=gzipish_compress(mips), expected=mips,
        decode=gzipish_decompress,
    ))
    return targets


def _timed(report: FuzzReport, label: str, budget: float, thunk):
    """Run one decode under the stop-watch; returns (outcome, value).

    ``outcome`` is "ok", "detected", or "failure" (already recorded).
    """
    started = perf_seconds()
    try:
        value = thunk()
        outcome = "ok"
    except CorruptedStreamError as error:
        report.record_detection(error.category)
        value = None
        outcome = "detected"
    except Exception as error:  # the contract bans every other type
        report.failures.append(
            f"{label}: leaked {error.__class__.__name__}: {error}"
        )
        value = None
        outcome = "failure"
    elapsed = perf_seconds() - started
    report.max_decode_seconds = max(report.max_decode_seconds, elapsed)
    if elapsed > budget:
        report.timeouts += 1
        report.failures.append(
            f"{label}: decode took {elapsed:.2f}s (budget {budget:.2f}s)"
        )
    return outcome, value


def run_fuzz(
    seed: int,
    iters: int,
    time_budget: float = DEFAULT_TIME_BUDGET,
    scale: float = 0.12,
) -> FuzzReport:
    """Run the full fault-injection sweep; see the module docstring."""
    rng = random.Random(seed)
    targets = build_targets(scale=scale)
    report = FuzzReport(seed=seed)

    # One well-formed LAT to perturb (from the first image target's shape).
    from repro.core.lat import build_lat
    lat = build_lat([len(t.data) % 61 + 1 for t in targets] * 4)

    for iteration in range(iters):
        report.iterations += 1
        target = targets[rng.randrange(len(targets))]

        # Framed contract: corrupt the container, decode through it.
        framed = wrap_frame(target.data)
        fault, corrupted = sample_fault(rng, framed)
        label = f"iter {iteration} {target.name} framed {fault}"

        def framed_decode(data=corrupted, t=target):
            return t.decode(unwrap_frame(data))

        outcome, value = _timed(report, label, time_budget, framed_decode)
        if outcome == "ok":
            if value == target.expected:
                report.roundtrips += 1
            else:
                report.failures.append(
                    f"{label}: fault passed the CRC but decoded wrong"
                )

        # Hardening contract: corrupt the raw bytes, decode directly.
        fault, corrupted = sample_fault(rng, target.data)
        label = f"iter {iteration} {target.name} raw {fault}"
        outcome, _value = _timed(
            report, label, time_budget,
            lambda data=corrupted, t=target: t.decode(data),
        )
        if outcome == "ok":
            report.survived += 1

        # Periodically, perturb a LAT entry: the structural validator
        # must flag it (or the perturbation kept the table consistent,
        # in which case every lookup must stay in range).
        if iteration % 8 == 0:
            index = rng.randrange(len(lat.offsets))
            delta = rng.choice((-3, -1, 1, 2, 1 << 20))
            bad = corrupt_lat_entry(lat, index, delta)
            label = f"iter {iteration} lat entry {index} delta {delta}"

            def lat_check(table=bad):
                table.validate()
                return b""

            outcome, _value = _timed(report, label, time_budget, lat_check)
            if outcome == "ok":
                report.survived += 1
    return report


__all__ = [
    "DEFAULT_TIME_BUDGET",
    "FuzzReport",
    "FuzzTarget",
    "build_targets",
    "run_fuzz",
]
