"""Resilience layer: hardened decode, integrity framing, fault injection.

The refill path of a compressed-code memory must never hang or crash on
a corrupted block — it has to fail fast with a diagnosable error.  This
package supplies the three pieces the rest of the repo builds on:

* :mod:`repro.resilience.errors` — :class:`CorruptedStreamError` (offset
  + category) and :func:`decode_guard`, the guaranteed-termination
  boundary every decoder wraps its body in.
* :mod:`repro.resilience.frame` — the opt-in ``RF01`` CRC-32 container
  (``REPRO_FRAMED=1``) for serialised archives and per-block payloads;
  the only way to *detect* corruption a statistical decoder would
  silently absorb.
* :mod:`repro.resilience.inject` / :mod:`repro.resilience.fuzz` — seeded
  fault injectors and the deterministic ``python -m repro fuzz`` driver
  that pins the contract (kept import-light; ``fuzz`` loads the codec
  stack lazily).
"""

from repro.resilience.errors import CorruptedStreamError, decode_guard
from repro.resilience.frame import (
    FRAME_OVERHEAD,
    block_payload,
    frame_image,
    framing_enabled,
    is_framed,
    unwrap_frame,
    wrap_frame,
)

__all__ = [
    "CorruptedStreamError",
    "FRAME_OVERHEAD",
    "block_payload",
    "decode_guard",
    "frame_image",
    "framing_enabled",
    "is_framed",
    "unwrap_frame",
    "wrap_frame",
]
