"""Seeded fault injectors for the fuzz driver and resilience tests.

Each injector is a pure function of its arguments — the fuzz driver
draws the parameters from one ``random.Random(seed)``, so a failing
iteration reproduces exactly from ``--seed``/``--iters``.  Injectors
never return the input unchanged: a "fault" that alters nothing would
make the round-trip-or-detect contract vacuously pass.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Tuple

FAULT_KINDS = ("bitflip", "truncate", "splice", "duplicate")


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Flip one bit; ``bit_index`` counts from the MSB of byte 0."""
    if not data:
        raise ValueError("cannot flip a bit in an empty payload")
    byte_index, bit = divmod(bit_index % (len(data) * 8), 8)
    out = bytearray(data)
    out[byte_index] ^= 0x80 >> bit
    return bytes(out)


def truncate(data: bytes, length: int) -> bytes:
    """Cut the payload to ``length`` bytes (strictly shorter)."""
    if not 0 <= length < len(data):
        raise ValueError(
            f"truncation length {length} must be in [0, {len(data)})"
        )
    return data[:length]


def splice_bytes(data: bytes, offset: int, replacement: bytes) -> bytes:
    """Overwrite bytes at ``offset`` with ``replacement`` (same total size)."""
    if not replacement:
        raise ValueError("splice replacement must be non-empty")
    if not 0 <= offset <= len(data) - len(replacement):
        raise ValueError(f"splice at {offset} overruns the payload")
    return data[:offset] + replacement + data[offset + len(replacement):]


def duplicate_span(data: bytes, offset: int, length: int) -> bytes:
    """Insert a copy of ``data[offset:offset+length]`` after itself."""
    if length < 1 or not 0 <= offset <= len(data) - length:
        raise ValueError(f"duplicate span {offset}+{length} overruns payload")
    return data[: offset + length] + data[offset : offset + length] \
        + data[offset + length :]


def corrupt_lat_entry(lat, index: int, delta: int = 1):
    """A copy of a (frozen) LAT with one offset entry perturbed.

    Works for :class:`~repro.core.lat.LineAddressTable`; the returned
    table should fail ``validate()`` or produce out-of-range lookups.
    """
    offsets = list(lat.offsets)
    if not 0 <= index < len(offsets):
        raise ValueError(f"LAT index {index} out of range")
    if delta == 0:
        raise ValueError("delta must be non-zero to inject a fault")
    offsets[index] += delta
    return replace(lat, offsets=tuple(offsets))


def sample_fault(rng: random.Random, data: bytes) -> Tuple[str, bytes]:
    """Draw one fault kind + parameters and apply it; never the identity.

    Returns ``(description, corrupted_bytes)``; the description carries
    the drawn parameters so failures are diagnosable from the report.
    """
    if not data:
        raise ValueError("cannot inject a fault into an empty payload")
    kind = FAULT_KINDS[rng.randrange(len(FAULT_KINDS))]
    if kind == "bitflip":
        bit = rng.randrange(len(data) * 8)
        return f"bitflip@{bit}", flip_bit(data, bit)
    if kind == "truncate":
        length = rng.randrange(len(data))
        return f"truncate->{length}", truncate(data, length)
    if kind == "splice":
        width = min(len(data), 1 + rng.randrange(8))
        offset = rng.randrange(len(data) - width + 1)
        replacement = bytes(rng.randrange(256) for _ in range(width))
        corrupted = splice_bytes(data, offset, replacement)
        if corrupted == data:  # drew the bytes already there: force a change
            return f"bitflip@{offset * 8}", flip_bit(data, offset * 8)
        return f"splice@{offset}x{width}", corrupted
    length = min(len(data), 1 + rng.randrange(16))
    offset = rng.randrange(len(data) - length + 1)
    return f"duplicate@{offset}x{length}", duplicate_span(data, offset, length)


__all__ = [
    "FAULT_KINDS",
    "corrupt_lat_entry",
    "duplicate_span",
    "flip_bit",
    "sample_fault",
    "splice_bytes",
    "truncate",
]
