"""Structured corruption errors and the guaranteed-termination guard.

Every decode path in the repo (codecs, serializer, LAT lookups, frame
container) reports malformed input through one exception type:
:class:`CorruptedStreamError`.  It carries *where* the stream broke
(``offset``, in bytes when known) and *how* (``category``), so a refill
engine — or the fuzz driver — can distinguish a truncated payload from a
bad checksum from an impossible symbol.

The decode contract this module anchors is **guaranteed termination**:
for *any* byte string, a decoder either returns output or raises
``CorruptedStreamError`` — no infinite loops, no unbounded allocation,
and no raw ``IndexError``/``KeyError``/``EOFError``/``struct.error``
escaping to the caller.  :func:`decode_guard` is the enforcement
boundary: wrap the body of a decode entry point in it and any low-level
exception raised by malformed input is converted (with the original as
``__cause__``) and counted through :mod:`repro.obs`.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs import get_recorder

#: The closed set of corruption categories.
CATEGORY_TRUNCATED = "truncated"   # stream ended before the decoder did
CATEGORY_MAGIC = "magic"           # container/archive magic mismatch
CATEGORY_VERSION = "version"       # unknown format version
CATEGORY_CHECKSUM = "checksum"     # CRC mismatch over frame contents
CATEGORY_SYMBOL = "symbol"         # undecodable code/symbol in the stream
CATEGORY_STRUCTURE = "structure"   # field values inconsistent with format
CATEGORY_BOUNDS = "bounds"         # index/offset outside the valid range
CATEGORY_BUDGET = "budget"         # declared size exceeds allocation budget

CATEGORIES = frozenset({
    CATEGORY_TRUNCATED,
    CATEGORY_MAGIC,
    CATEGORY_VERSION,
    CATEGORY_CHECKSUM,
    CATEGORY_SYMBOL,
    CATEGORY_STRUCTURE,
    CATEGORY_BOUNDS,
    CATEGORY_BUDGET,
})


class CorruptedStreamError(ValueError):
    """Malformed compressed/serialised input, with offset and category.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    sites (and the pre-resilience tests) keep working; new code should
    catch this type and read ``category``/``offset``.
    """

    def __init__(
        self,
        message: str,
        *,
        offset: Optional[int] = None,
        category: str = CATEGORY_STRUCTURE,
    ) -> None:
        super().__init__(message)
        self.offset = offset
        self.category = category if category in CATEGORIES else CATEGORY_STRUCTURE

    def __str__(self) -> str:
        base = super().__str__()
        where = f" at offset {self.offset}" if self.offset is not None else ""
        return f"{base} [{self.category}{where}]"


#: Low-level exception -> corruption category for :func:`decode_guard`,
#: checked in order (``struct.error`` subclasses ``ValueError``, so it
#: must be classified first).
_GUARDED = (
    (EOFError, CATEGORY_TRUNCATED),
    (struct.error, CATEGORY_STRUCTURE),
    (IndexError, CATEGORY_BOUNDS),
    (KeyError, CATEGORY_BOUNDS),
    (MemoryError, CATEGORY_BUDGET),
    (OverflowError, CATEGORY_BUDGET),
    (ValueError, CATEGORY_SYMBOL),
)

_GUARDED_TYPES = tuple(exc for exc, _ in _GUARDED)


@contextmanager
def decode_guard(where: str, offset: Optional[int] = None) -> Iterator[None]:
    """Convert low-level decode exceptions into ``CorruptedStreamError``.

    ``where`` names the decode path for the error message and the obs
    counter (``resilience.corruption_detected``).  A
    ``CorruptedStreamError`` raised inside the guard passes through
    unchanged (but is still counted).
    """
    try:
        yield
    except CorruptedStreamError as error:
        _count(where, error.category)
        raise
    except _GUARDED_TYPES as error:
        category = CATEGORY_STRUCTURE
        for exc_type, mapped in _GUARDED:
            if isinstance(error, exc_type):
                category = mapped
                break
        _count(where, category)
        raise CorruptedStreamError(
            f"{where}: corrupted stream ({error.__class__.__name__}: {error})",
            offset=offset,
            category=category,
        ) from error


def _count(where: str, category: str) -> None:
    rec = get_recorder()
    if rec.enabled:
        rec.count("resilience.corruption_detected")
        rec.count(f"resilience.corruption.{category}")


__all__ = [
    "CATEGORIES",
    "CATEGORY_BOUNDS",
    "CATEGORY_BUDGET",
    "CATEGORY_CHECKSUM",
    "CATEGORY_MAGIC",
    "CATEGORY_STRUCTURE",
    "CATEGORY_SYMBOL",
    "CATEGORY_TRUNCATED",
    "CATEGORY_VERSION",
    "CorruptedStreamError",
    "decode_guard",
]
