"""Integrity framing: a versioned, checksummed container for codec bytes.

Statistical decoders cannot detect corruption on their own — a flipped
bit in a SAMC payload decodes to a perfectly plausible wrong block.  The
frame closes that gap with an end-to-end check the decoder can trust::

    "RF01" | version u8 | flags u8 | payload_len u32 | crc32 u32 | payload

All integers are big-endian; the CRC-32 (:func:`zlib.crc32`) covers the
10 header bytes *and* the payload, so a corrupted length field fails the
checksum rather than mis-slicing the payload.  Fixed overhead is
:data:`FRAME_OVERHEAD` = 14 bytes per framed object.

Framing is **opt-in** (``REPRO_FRAMED=1`` or explicit ``framed=True``
arguments): raw codec outputs and the golden vectors stay byte-identical
when it is off.  The serializer frames whole archives (14 bytes on a
multi-kilobyte image keeps container overhead far under the 2% budget —
pinned by ``benchmarks/test_frame_overhead.py``); per-block framing is
available for the refill path via :func:`frame_image`.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import List

from repro.resilience.errors import (
    CATEGORY_CHECKSUM,
    CATEGORY_MAGIC,
    CATEGORY_STRUCTURE,
    CATEGORY_TRUNCATED,
    CATEGORY_VERSION,
    CorruptedStreamError,
)

FRAME_MAGIC = b"RF01"
FRAME_VERSION = 1

_HEADER = struct.Struct(">4sBBI")  # magic, version, flags, payload length
FRAME_HEADER_BYTES = _HEADER.size
#: Total container cost per framed object: header + CRC-32.
FRAME_OVERHEAD = FRAME_HEADER_BYTES + 4

#: Environment switch for default-on framing (mirrors REPRO_FASTPATH).
FRAMED_ENV = "REPRO_FRAMED"


def framing_enabled() -> bool:
    """True when ``REPRO_FRAMED`` opts serialised archives into framing.

    Read on every call so tests and CI can flip it without re-importing.
    """
    return os.environ.get(FRAMED_ENV, "0") not in ("0", "")  # repro: noqa determinism-taint (REPRO_FRAMED is the deliberate opt-in container switch; on/off both stay bit-reproducible)


def wrap_frame(payload: bytes, flags: int = 0) -> bytes:
    """Wrap ``payload`` in the checksummed container."""
    if not 0 <= flags <= 0xFF:
        raise ValueError(f"frame flags must fit in one byte, got {flags}")
    if len(payload) > 0xFFFFFFFF:
        raise ValueError("payload exceeds the u32 frame length field")
    header = _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, flags, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + struct.pack(">I", crc) + payload


def is_framed(data: bytes) -> bool:
    """Cheap magic probe; a true result still requires :func:`unwrap_frame`."""
    return data[:4] == FRAME_MAGIC


# repro: contract decode-entry
def unwrap_frame(data: bytes) -> bytes:
    """Validate a frame and return its payload.

    Raises :class:`CorruptedStreamError` with category ``magic``,
    ``version``, ``truncated``, ``structure`` (trailing bytes) or
    ``checksum``; the offset points at the failing field.
    """
    if len(data) < FRAME_HEADER_BYTES:
        raise CorruptedStreamError(
            f"frame header needs {FRAME_HEADER_BYTES} bytes, got {len(data)}",
            offset=len(data),
            category=CATEGORY_TRUNCATED,
        )
    magic, version, _flags, length = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise CorruptedStreamError(
            f"bad frame magic {magic!r}", offset=0, category=CATEGORY_MAGIC
        )
    if version != FRAME_VERSION:
        raise CorruptedStreamError(
            f"unsupported frame version {version}",
            offset=4,
            category=CATEGORY_VERSION,
        )
    total = FRAME_OVERHEAD + length
    if len(data) < total:
        raise CorruptedStreamError(
            f"frame declares {length} payload bytes but only "
            f"{len(data) - FRAME_OVERHEAD} are present",
            offset=len(data),
            category=CATEGORY_TRUNCATED,
        )
    if len(data) > total:
        raise CorruptedStreamError(
            f"{len(data) - total} trailing byte(s) after the frame",
            offset=total,
            category=CATEGORY_STRUCTURE,
        )
    (stored_crc,) = struct.unpack_from(">I", data, FRAME_HEADER_BYTES)
    payload = data[FRAME_OVERHEAD:]
    actual = zlib.crc32(payload, zlib.crc32(data[:FRAME_HEADER_BYTES]))
    if stored_crc != actual:
        raise CorruptedStreamError(
            f"frame CRC mismatch (stored {stored_crc:#010x}, "
            f"computed {actual:#010x})",
            offset=FRAME_HEADER_BYTES,
            category=CATEGORY_CHECKSUM,
        )
    return payload


# -- per-block framing for CompressedImage ----------------------------------

def frame_image(image) -> "object":
    """Return a copy of ``image`` whose payload blocks are each framed.

    The copy is marked with ``metadata["framed"] = True`` so
    :func:`block_payload` (used by every block decoder) knows to unwrap.
    The original image is untouched.
    """
    from repro.core.lat import CompressedImage

    framed_blocks: List[bytes] = [wrap_frame(block) for block in image.blocks]
    metadata = dict(image.metadata)
    metadata["framed"] = True
    return CompressedImage(
        algorithm=image.algorithm,
        original_size=image.original_size,
        block_size=image.block_size,
        blocks=framed_blocks,
        model_bytes=image.model_bytes,
        metadata=metadata,
    )


# repro: contract decode-entry
def block_payload(image, block_index: int) -> bytes:
    """One block's raw codec bytes, unwrapping the frame when present.

    This is the single access path the block decoders use; on a framed
    image every read re-validates the block's CRC, so a corrupted block
    fails with ``CorruptedStreamError`` instead of decoding to garbage.
    """
    payload = image.blocks[block_index]
    if image.metadata.get("framed"):
        return unwrap_frame(payload)
    return payload


__all__ = [
    "FRAMED_ENV",
    "FRAME_HEADER_BYTES",
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "FRAME_VERSION",
    "block_payload",
    "frame_image",
    "framing_enabled",
    "is_framed",
    "unwrap_frame",
    "wrap_frame",
]
