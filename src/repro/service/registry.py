"""The warm model registry: train SAMC once, serve it forever.

SAMC is a two-pass codec — a training pass builds the per-stream Markov
tables, then the encode pass walks them.  In the batch pipeline that is
fine (each program is compressed once); in a service it is a disaster:
training dominates the request, and every request for the same program
would redo it.  The registry closes that gap.  Models are keyed by
``(codec name, SHA-256 of the training bytes)`` — the same
content-addressing the pipeline's result cache uses — trained **exactly
once** per key, frozen, and shared by every subsequent request.  Frozen
:class:`~repro.core.samc.model.SamcModel` objects are immutable
(:meth:`freeze` is the last mutation), so one model can serve concurrent
encodes from the executor's worker threads without locking.

Memory stays bounded by LRU eviction: at most ``max_entries`` models are
resident, and every hit/train/eviction is counted through
:mod:`repro.obs` (``service.registry.*``), which is how the regression
tests prove the trained-exactly-once and bounded-memory properties.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Tuple

from repro.core.samc.codec import SamcCodec
from repro.core.samc.model import SamcModel
from repro.obs import get_recorder
from repro.obs.trace import trace_annotate

#: Default resident-model bound; one SAMC model is a few tens of KB.
DEFAULT_MAX_ENTRIES = 32


class WarmModelRegistry:
    """Content-addressed cache of trained, frozen SAMC models."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("registry needs room for at least one model")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._models: "OrderedDict[Tuple[str, str], SamcModel]" = OrderedDict()
        self._trained = 0
        self._hits = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def model_for(
        self, codec_name: str, codec: SamcCodec, code: bytes
    ) -> SamcModel:
        """The frozen model for ``code`` under ``codec`` — cached.

        Training runs under the registry lock, so two concurrent
        requests for the same bytes cannot both pay the training pass:
        the second blocks briefly and receives the first's model.
        """
        digest = hashlib.sha256(code).hexdigest()
        key = (codec_name, digest)
        rec = get_recorder()
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self._models.move_to_end(key)
                self._hits += 1
                rec.count("service.registry.hit")
                trace_annotate(
                    "registry", outcome="hit", digest=digest[:12]
                )
                return model
            with rec.span("service.registry.train", codec=codec_name):
                model = codec.train(code)
            trace_annotate(
                "registry", outcome="train", digest=digest[:12]
            )
            self._models[key] = model
            self._trained += 1
            rec.count("service.registry.train")
            rec.gauge("service.registry.entries", len(self._models))
            while len(self._models) > self.max_entries:
                self._models.popitem(last=False)
                self._evictions += 1
                rec.count("service.registry.evict")
            return model

    def stats(self) -> Dict[str, int]:
        """Counters for the ``stats`` endpoint and the regression tests."""
        with self._lock:
            return {
                "entries": len(self._models),
                "max_entries": self.max_entries,
                "trained": self._trained,
                "hits": self._hits,
                "evictions": self._evictions,
            }


__all__ = ["DEFAULT_MAX_ENTRIES", "WarmModelRegistry"]
