"""Clients for the codec service: blocking (tests/tools) and asyncio.

:class:`ServiceClient` is a plain-socket blocking client — one
outstanding request at a time, matched by ``request_id`` — used by the
test suite, the protocol fuzzer, and ad-hoc scripting.
:class:`AsyncServiceClient` is the asyncio twin the load generator
drives at target RPS.  Both speak the exact protocol of
:mod:`repro.service.protocol`, including CRC validation of every
response frame.
"""

from __future__ import annotations

import itertools
import socket
from typing import Dict, Optional, Tuple

from repro.resilience.errors import (
    CATEGORY_TRUNCATED,
    CorruptedStreamError,
)
from repro.resilience.frame import FRAME_OVERHEAD, unwrap_frame
from repro.service import protocol
from repro.service.protocol import (
    OP_COMPRESS,
    OP_DECOMPRESS,
    OP_DUMP,
    OP_HEALTH,
    OP_STATS,
    Request,
    Response,
    WireError,
)


class ServiceError(RuntimeError):
    """A non-OK service reply, surfaced with its category and message."""

    def __init__(self, response: Response) -> None:
        super().__init__(
            f"{protocol.STATUS_NAMES.get(response.status, response.status)}"
            f" [{response.category}]: {response.message}"
        )
        self.response = response
        self.status = response.status
        self.category = response.category


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError(
                f"connection closed with {remaining} of {count} bytes "
                "unread",
                category=CATEGORY_TRUNCATED,
                fatal=True,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_response(
    sock: socket.socket,
    max_message: int = protocol.DEFAULT_MAX_MESSAGE,
) -> Response:
    """Read and decode one response message from a blocking socket."""
    (length,) = protocol._LENGTH.unpack(_recv_exact(sock, 4))  # repro: noqa exception-leak (_recv_exact returned exactly 4 bytes)
    if length > max_message or length < FRAME_OVERHEAD:
        raise WireError(
            f"implausible response length {length}", fatal=True
        )
    body = unwrap_frame(_recv_exact(sock, length))
    return protocol.decode_response(body)


class ServiceClient:
    """Blocking, single-request-at-a-time client."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw access (the fuzzer uses these) ----------------------------

    def send_raw(self, data: bytes) -> None:
        """Ship arbitrary bytes — malformed messages included."""
        self._sock.sendall(data)

    def shutdown_write(self) -> None:
        """Half-close: no more requests, but replies still readable."""
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def read_response(self) -> Response:
        return recv_response(self._sock)

    # -- request/response ----------------------------------------------

    def request(
        self,
        op: int,
        codec: str = "",
        payload: bytes = b"",
        trace_id: Optional[int] = None,
    ) -> Response:
        """One request/response exchange.

        Passing ``trace_id`` stamps the request as *traced*: the server
        threads a span timeline through its pipeline and embeds it in
        the reply's trace annex (``response.trace()``).
        """
        request_id = next(self._ids)
        body = protocol.encode_request(Request(
            op=op, request_id=request_id, codec=codec, payload=payload,
            traced=trace_id is not None,
            trace_id=trace_id if trace_id is not None else 0,
        ))
        self._sock.sendall(protocol.pack_message(body))
        response = recv_response(self._sock)
        if response.request_id not in (request_id, 0):
            raise WireError(
                f"response for request {response.request_id}, "
                f"expected {request_id}"
            )
        return response

    def _checked(self, response: Response) -> Response:
        if not response.ok:
            raise ServiceError(response)
        return response

    def compress(self, codec: str, data: bytes) -> bytes:
        return self._checked(
            self.request(OP_COMPRESS, codec, data)
        ).payload

    def decompress(self, codec: str, data: bytes) -> bytes:
        return self._checked(
            self.request(OP_DECOMPRESS, codec, data)
        ).payload

    def stats(self) -> Dict[str, object]:
        import json

        return json.loads(self._checked(self.request(OP_STATS)).payload)

    def health(self) -> Dict[str, object]:
        import json

        return json.loads(self._checked(self.request(OP_HEALTH)).payload)

    def dump(self) -> bytes:
        """The server's flight-recorder ring, dumped as JSONL bytes."""
        return self._checked(self.request(OP_DUMP)).payload


class AsyncServiceClient:
    """Asyncio client; one in-flight request per instance."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        import asyncio

        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        op: int,
        codec: str = "",
        payload: bytes = b"",
        trace_id: Optional[int] = None,
    ) -> Response:
        request_id = next(self._ids)
        body = protocol.encode_request(Request(
            op=op, request_id=request_id, codec=codec, payload=payload,
            traced=trace_id is not None,
            trace_id=trace_id if trace_id is not None else 0,
        ))
        self._writer.write(protocol.pack_message(body))
        await self._writer.drain()
        reply = await protocol.read_message(self._reader)
        if reply is None:
            raise WireError(
                "connection closed before the response",
                category=CATEGORY_TRUNCATED,
                fatal=True,
            )
        return protocol.decode_response(reply)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def wait_for_service(
    host: str, port: int, timeout: float = 10.0
) -> bool:
    """Poll until a daemon answers ``health`` (or the timeout lapses).

    Lets scripts race-free ``repro serve & repro loadgen``: the load
    generator waits for the daemon to come up instead of failing on the
    first connection refusal.
    """
    import time

    from repro.obs.clock import perf_seconds

    deadline = perf_seconds() + timeout
    while True:
        try:
            with ServiceClient(host, port, timeout=2.0) as client:
                if client.health().get("status") == "ok":
                    return True
        except (OSError, CorruptedStreamError, ServiceError):
            pass
        if perf_seconds() >= deadline:
            return False
        time.sleep(0.1)


__all__ = [
    "AsyncServiceClient",
    "ServiceClient",
    "ServiceError",
    "recv_response",
    "wait_for_service",
]
