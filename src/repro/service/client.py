"""Clients for the codec service: blocking (tests/tools) and asyncio.

:class:`ServiceClient` is a plain-socket blocking client — one
outstanding request at a time, matched by ``request_id`` — used by the
test suite, the protocol fuzzer, and ad-hoc scripting.
:class:`AsyncServiceClient` is the asyncio twin the load generator
drives at target RPS.  Both speak the exact protocol of
:mod:`repro.service.protocol`, including CRC validation of every
response frame.

Neither client can hang: connects and request/reply exchanges are
bounded by explicit timeouts (``asyncio.wait_for`` on the async path,
socket timeouts on the blocking one), and a per-request ``deadline``
both stamps the wire deadline field — so the server can shed the
request once the budget lapses — and caps how long the client waits
for the reply (budget plus a small grace so a shed reply still
arrives).
"""

from __future__ import annotations

import itertools
import socket
from typing import Dict, Optional, Tuple

from repro.resilience.errors import (
    CATEGORY_TRUNCATED,
    CorruptedStreamError,
)
from repro.resilience.frame import FRAME_OVERHEAD, unwrap_frame
from repro.service import protocol
from repro.service.protocol import (
    OP_COMPRESS,
    OP_DECOMPRESS,
    OP_DUMP,
    OP_HEALTH,
    OP_STATS,
    Request,
    Response,
    WireError,
)

#: Default bound on one async request/reply exchange.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default bound on an async connection attempt.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Extra wait beyond a request's deadline: a request shed at exactly
#: its budget still needs its ``STATUS_DEADLINE`` reply to cross the
#: wire, so the client listens slightly past the deadline itself.
DEADLINE_GRACE = 1.0


class ServiceError(RuntimeError):
    """A non-OK service reply, surfaced with its category and message."""

    def __init__(self, response: Response) -> None:
        super().__init__(
            f"{protocol.STATUS_NAMES.get(response.status, response.status)}"
            f" [{response.category}]: {response.message}"
        )
        self.response = response
        self.status = response.status
        self.category = response.category


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError(
                f"connection closed with {remaining} of {count} bytes "
                "unread",
                category=CATEGORY_TRUNCATED,
                fatal=True,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_response(
    sock: socket.socket,
    max_message: int = protocol.DEFAULT_MAX_MESSAGE,
) -> Response:
    """Read and decode one response message from a blocking socket."""
    (length,) = protocol._LENGTH.unpack(_recv_exact(sock, 4))  # repro: noqa exception-leak (_recv_exact returned exactly 4 bytes)
    if length > max_message or length < FRAME_OVERHEAD:
        raise WireError(
            f"implausible response length {length}", fatal=True
        )
    body = unwrap_frame(_recv_exact(sock, length))
    return protocol.decode_response(body)


class ServiceClient:
    """Blocking, single-request-at-a-time client."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw access (the fuzzer uses these) ----------------------------

    def send_raw(self, data: bytes) -> None:
        """Ship arbitrary bytes — malformed messages included."""
        self._sock.sendall(data)

    def shutdown_write(self) -> None:
        """Half-close: no more requests, but replies still readable."""
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def read_response(self) -> Response:
        return recv_response(self._sock)

    # -- request/response ----------------------------------------------

    def request(
        self,
        op: int,
        codec: str = "",
        payload: bytes = b"",
        trace_id: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Response:
        """One request/response exchange.

        Passing ``trace_id`` stamps the request as *traced*: the server
        threads a span timeline through its pipeline and embeds it in
        the reply's trace annex (``response.trace()``).  Passing
        ``deadline`` (seconds) stamps the wire deadline field — the
        server sheds the request with ``STATUS_DEADLINE`` if its queue
        wait exceeds the budget — and tightens the socket timeout to
        ``deadline`` plus a grace window, so the client never waits
        materially past its own budget.
        """
        request_id = next(self._ids)
        body = protocol.encode_request(Request(
            op=op, request_id=request_id, codec=codec, payload=payload,
            traced=trace_id is not None,
            trace_id=trace_id if trace_id is not None else 0,
            deadline_us=(
                int(deadline * 1e6) if deadline is not None else None
            ),
        ))
        previous_timeout = self._sock.gettimeout()
        if deadline is not None:
            self._sock.settimeout(deadline + DEADLINE_GRACE)
        try:
            self._sock.sendall(protocol.pack_message(body))
            response = recv_response(self._sock)
        finally:
            if deadline is not None:
                self._sock.settimeout(previous_timeout)
        if response.request_id not in (request_id, 0):
            raise WireError(
                f"response for request {response.request_id}, "
                f"expected {request_id}"
            )
        return response

    def _checked(self, response: Response) -> Response:
        if not response.ok:
            raise ServiceError(response)
        return response

    def compress(self, codec: str, data: bytes) -> bytes:
        return self._checked(
            self.request(OP_COMPRESS, codec, data)
        ).payload

    def decompress(self, codec: str, data: bytes) -> bytes:
        return self._checked(
            self.request(OP_DECOMPRESS, codec, data)
        ).payload

    def stats(self) -> Dict[str, object]:
        import json

        return json.loads(self._checked(self.request(OP_STATS)).payload)

    def health(self) -> Dict[str, object]:
        import json

        return json.loads(self._checked(self.request(OP_HEALTH)).payload)

    def dump(self) -> bytes:
        """The server's flight-recorder ring, dumped as JSONL bytes."""
        return self._checked(self.request(OP_DUMP)).payload


class AsyncServiceClient:
    """Asyncio client; one in-flight request per instance.

    Every await is bounded: ``connect`` and ``request`` wrap their I/O
    in ``asyncio.wait_for``, so a stalled peer (SYN black hole, a
    server that accepts and never replies, a mid-frame stall) surfaces
    as ``asyncio.TimeoutError`` instead of hanging the caller forever.
    """

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> "AsyncServiceClient":
        import asyncio

        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
        return cls(reader, writer)

    async def request(
        self,
        op: int,
        codec: str = "",
        payload: bytes = b"",
        trace_id: Optional[int] = None,
        timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        deadline: Optional[float] = None,
    ) -> Response:
        """One exchange, bounded by ``timeout`` (``None`` = unbounded).

        ``deadline`` stamps the wire deadline field and caps the
        effective timeout at ``deadline`` plus a grace window, so the
        shed reply itself can still arrive.
        """
        import asyncio

        request_id = next(self._ids)
        body = protocol.encode_request(Request(
            op=op, request_id=request_id, codec=codec, payload=payload,
            traced=trace_id is not None,
            trace_id=trace_id if trace_id is not None else 0,
            deadline_us=(
                int(deadline * 1e6) if deadline is not None else None
            ),
        ))
        effective = timeout
        if deadline is not None:
            capped = deadline + DEADLINE_GRACE
            effective = capped if effective is None else min(
                effective, capped
            )
        response = await asyncio.wait_for(
            self._exchange(body), timeout=effective
        )
        if response.request_id not in (request_id, 0):
            raise WireError(
                f"response for request {response.request_id}, "
                f"expected {request_id}",
                fatal=True,
            )
        return response

    async def _exchange(self, body: bytes) -> Response:
        self._writer.write(protocol.pack_message(body))
        await self._writer.drain()
        reply = await protocol.read_message(self._reader)
        if reply is None:
            raise WireError(
                "connection closed before the response",
                category=CATEGORY_TRUNCATED,
                fatal=True,
            )
        return protocol.decode_response(reply)

    async def close(self) -> None:
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def wait_for_service(
    host: str,
    port: int,
    timeout: float = 10.0,
    probe_timeout: float = 2.0,
    policy: Optional["RetryPolicy"] = None,
) -> bool:
    """Poll until a daemon answers ``health`` (or the timeout lapses).

    Lets scripts race-free ``repro serve & repro loadgen``: the load
    generator waits for the daemon to come up instead of failing on the
    first connection refusal.  Probes are paced by a seeded
    :class:`~repro.service.retry.RetryPolicy` (short first retry,
    exponential backoff, deterministic jitter) instead of a fixed poll
    interval — a daemon that boots fast is noticed fast, and a slow one
    is not hammered.  ``probe_timeout`` bounds each individual health
    round-trip.
    """
    import time

    from repro.obs.clock import perf_seconds
    from repro.service.retry import RetryPolicy

    if policy is None:
        policy = RetryPolicy(
            max_attempts=None, base_delay=0.02, multiplier=1.7,
            max_delay=0.5, jitter=0.25, seed=0,
        )
    deadline = perf_seconds() + timeout
    delays = policy.delays()
    while True:
        try:
            with ServiceClient(host, port, timeout=probe_timeout) as client:
                if client.health().get("status") == "ok":
                    return True
        except (OSError, CorruptedStreamError, ServiceError):
            pass
        remaining = deadline - perf_seconds()
        if remaining <= 0:
            return False
        time.sleep(min(next(delays, policy.max_delay), remaining))


__all__ = [
    "AsyncServiceClient",
    "DEADLINE_GRACE",
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_REQUEST_TIMEOUT",
    "ServiceClient",
    "ServiceError",
    "recv_response",
    "wait_for_service",
]
