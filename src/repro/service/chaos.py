"""Seeded TCP fault proxy: the network chaos half of the soak harness.

Sits between a service client and the daemon and injects the transport
faults a real deployment sees — the ones no unit test of either
endpoint exercises:

* ``reset`` — the connection is torn down mid-stream after a seeded
  number of forwarded bytes (RST, not FIN: the abort path);
* ``truncate`` — a server reply is cut mid-frame and the connection
  closed, so the client holds a length prefix whose body never comes;
* ``slow`` — server replies drip through in tiny chunks with small
  delays, exercising partial-read handling without ever approaching a
  request timeout;
* ``latency`` — a fixed per-chunk delay both ways (slow network, fast
  endpoints);
* ``duplicate`` — one server chunk is written twice, splicing stale
  bytes into the reply stream and desynchronising the client's framing
  (the client must detect this via CRC/length checks, type it as a
  connection fault, and resynchronise by reconnecting).

Every connection draws its fault plan from ``random.Random`` seeded by
``(proxy seed, connection index)``, so a soak run with a given seed
replays the same fault *schedule* — which connections get which fault
at which byte offsets — every time.  All injected delays are bounded
well below any client timeout: a request that times out through the
proxy is a real hang, never an artifact of the harness.

The proxy makes no attempt to understand the wire protocol.  Faults are
byte-level on purpose: frame CRCs, length prefixes, and request-id
matching are exactly the machinery the clients claim protects them, and
a proxy that respected frame boundaries could never test that claim.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Fault modes and their relative weights: most connections are clean,
#: so requests mostly succeed and the soak measures recovery, not
#: pure failure.
FAULT_WEIGHTS = (
    ("clean", 11),
    ("reset", 2),
    ("truncate", 2),
    ("slow", 2),
    ("latency", 2),
    ("duplicate", 1),
)

#: Ceiling on any single injected delay, in seconds.  Kept far below
#: client request timeouts so harness-added latency can never be
#: mistaken for a hang.
MAX_INJECTED_DELAY = 0.05

#: ``slow`` mode drips at most this many delayed chunks per read, so
#: its worst-case injected latency is MAX_DRIP_CHUNKS *
#: MAX_INJECTED_DELAY (~1 s), bounded regardless of reply size.
MAX_DRIP_CHUNKS = 20


@dataclass(frozen=True)
class FaultPlan:
    """One connection's fault: what goes wrong, where, and how slowly."""

    mode: str
    #: ``reset``/``truncate``/``duplicate``: trigger once this many
    #: upstream-reply bytes have been forwarded.
    trigger_after: int
    #: ``slow``: chunk size for dripped writes.
    drip_bytes: int
    #: ``slow``/``latency``: per-chunk injected delay (seconds).
    delay: float

    @classmethod
    def derive(cls, seed: int, index: int) -> "FaultPlan":
        """The deterministic plan for connection ``index`` under ``seed``."""
        rng = random.Random(seed * 0x9E3779B1 + index)
        modes = [mode for mode, _ in FAULT_WEIGHTS]
        weights = [weight for _, weight in FAULT_WEIGHTS]
        mode = rng.choices(modes, weights=weights)[0]
        return cls(
            mode=mode,
            trigger_after=rng.randrange(8, 4096),
            drip_bytes=rng.randrange(3, 17),
            delay=rng.uniform(0.001, MAX_INJECTED_DELAY),
        )


class ChaosProxy:
    """Seeded TCP fault injector in front of one upstream address."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.seed = seed
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._conn_index = 0
        self._handlers: set = set()
        #: Connections handled per fault mode, plus upstream refusals.
        self.fault_counts: Dict[str, int] = {
            mode: 0 for mode, _ in FAULT_WEIGHTS
        }
        self.upstream_refused = 0

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Tear down live connections too: a stopped proxy must leave
        # no pump waiting on a sleep or a read.
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(
                *self._handlers, return_exceptions=True
            )
        self._handlers.clear()

    async def _handle(self, client_reader, client_writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            await self._proxy_one(client_reader, client_writer)
        except asyncio.CancelledError:
            pass  # proxy stopping: the writers close in _proxy_one
        finally:
            if task is not None:
                self._handlers.discard(task)

    async def _proxy_one(self, client_reader, client_writer) -> None:
        plan = FaultPlan.derive(self.seed, self._conn_index)
        self._conn_index += 1
        self.fault_counts[plan.mode] += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream
            )
        except (ConnectionError, OSError):
            # The daemon is gone (drained, most likely).  Close the
            # client immediately: a fast typed connection fault, never
            # a hang on a half-open proxy connection.
            self.upstream_refused += 1
            await _close(client_writer)
            return
        abort = asyncio.Event()
        try:
            await asyncio.gather(
                self._pump(client_reader, up_writer, plan,
                           reply_side=False, abort=abort),
                self._pump(up_reader, client_writer, plan,
                           reply_side=True, abort=abort),
            )
        finally:
            await _close(up_writer)
            await _close(client_writer)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        plan: FaultPlan,
        reply_side: bool,
        abort: asyncio.Event,
    ) -> None:
        """Forward one direction, applying the plan's fault.

        Byte-offset faults (``reset``/``truncate``/``duplicate``) key
        off the reply direction, where mid-frame damage hurts the
        client; pacing faults apply per chunk.  ``abort`` links the two
        directions so a reset kills both at once.
        """
        forwarded = 0
        duplicated = False
        try:
            while not abort.is_set():
                chunk = await reader.read(4096)
                if not chunk:
                    break
                if plan.mode == "latency":
                    await asyncio.sleep(plan.delay)
                if reply_side:
                    if plan.mode == "reset" and (
                        forwarded + len(chunk) >= plan.trigger_after
                    ):
                        abort.set()
                        _abort_transport(writer)
                        return
                    if plan.mode == "truncate" and (
                        forwarded + len(chunk) >= plan.trigger_after
                    ):
                        keep = max(1, plan.trigger_after - forwarded)
                        writer.write(chunk[:keep])
                        await writer.drain()
                        abort.set()
                        return
                    if plan.mode == "slow":
                        # Drip only the first MAX_DRIP_CHUNKS pieces,
                        # then open the tap: the fault is the partial
                        # read pattern, and the total injected delay
                        # must stay far below any request timeout.
                        dripped = 0
                        for start in range(0, len(chunk), plan.drip_bytes):
                            writer.write(
                                chunk[start:start + plan.drip_bytes]
                            )
                            await writer.drain()
                            if dripped < MAX_DRIP_CHUNKS:
                                dripped += 1
                                await asyncio.sleep(plan.delay)
                        forwarded += len(chunk)
                        continue
                    if plan.mode == "duplicate" and not duplicated and (
                        forwarded + len(chunk) >= plan.trigger_after
                    ):
                        duplicated = True
                        writer.write(chunk + chunk)
                        await writer.drain()
                        forwarded += len(chunk)
                        continue
                writer.write(chunk)
                await writer.drain()
                forwarded += len(chunk)
        except (ConnectionError, OSError):
            pass
        finally:
            abort.set()
            # Half-close so the peer direction sees EOF and unwinds.
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass

    def report(self) -> Dict[str, int]:
        """Connection counts per fault mode (plus upstream refusals)."""
        doc = dict(self.fault_counts)
        doc["upstream_refused"] = self.upstream_refused
        doc["connections"] = self._conn_index
        return doc


def _abort_transport(writer: asyncio.StreamWriter) -> None:
    """RST the connection: drop buffered data, no FIN handshake."""
    transport = writer.transport
    if transport is not None:
        transport.abort()


async def _close(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass


__all__ = [
    "ChaosProxy",
    "FAULT_WEIGHTS",
    "FaultPlan",
    "MAX_DRIP_CHUNKS",
    "MAX_INJECTED_DELAY",
]
