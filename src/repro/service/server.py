"""The asyncio codec daemon (``python -m repro serve``).

One process, three layers:

* **Connections** — an asyncio stream server.  Each connection runs a
  read loop over the length-prefixed RF01 protocol
  (:mod:`repro.service.protocol`); ``health`` and ``stats`` are answered
  inline (they must stay responsive under load), codec work is enqueued.
  Every defect in a wire message is answered with a *structured error
  reply* — a connection is never dropped silently, and a desynchronised
  stream gets one last error frame before the close.
* **The queue** — a single bounded :class:`asyncio.Queue` between the
  connections and the executor.  Backpressure is explicit: when the
  queue is full (or a connection exceeds its in-flight limit) the server
  replies ``busy`` immediately instead of buffering without bound —
  clients see saturation as a signal, not as latency collapse.
* **Dispatchers + executor** — dispatcher tasks drain the queue in
  batches (up to ``batch_max`` requests per drain), group the drained
  requests by ``(op, codec, payload digest)``, and run each group as
  *one* executor task through the codec's batch entry point — the
  vectorised engine of ROADMAP item 1.  Codec work happens in threads;
  the event loop only moves bytes.

Telemetry flows through :mod:`repro.obs`: request counters, queue-depth
gauges, batch-size and per-op latency histograms (microseconds, fixed
exponential buckets), all surfaced by the ``stats`` op as JSON with
p50/p99 derived via :func:`repro.obs.metrics.histogram_quantile`.

**Failure semantics.**  Two mechanisms keep the daemon honest under
process and load faults:

* *Graceful drain* — ``stop()`` (and SIGTERM under ``repro serve``)
  sheds newly arriving codec requests with a ``busy``/``draining``
  reply, answers **every** already-accepted request (queued and
  in-flight), then closes the listener and tears the loop down — all
  bounded by ``drain_deadline``.  The listener outlives the drain so
  a connection the kernel accepted just before shutdown is served its
  typed sheds instead of being orphaned mid-pipeline.  A clean drain flight-records a
  ``drained`` event; a deadline overrun records ``force_closed`` with
  the count of abandoned requests, so reply loss is never silent.
* *Deadline shedding* — a request stamped with a wire deadline
  (:data:`repro.service.protocol.FLAG_DEADLINE`) whose queue wait has
  already consumed its budget is answered ``STATUS_DEADLINE`` at drain
  time instead of being executed: the client has stopped waiting, so
  running the codec would be dead work stealing executor time from
  live requests.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.obs import Recorder, get_recorder, set_recorder
from repro.obs.clock import monotonic_ns
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import summarize_histogram
from repro.obs.prom import CONTENT_TYPE, prometheus_exposition
from repro.obs.trace import TraceContext, activate
from repro.resilience.errors import CorruptedStreamError
from repro.service import protocol
from repro.service.codecs import build_codecs
from repro.service.protocol import (
    OP_COMPRESS,
    OP_DECOMPRESS,
    OP_DUMP,
    OP_HEALTH,
    OP_NAMES,
    OP_STATS,
    Request,
    Response,
    STATUS_BUSY,
    STATUS_DEADLINE,
    STATUS_OK,
    WireError,
    error_response,
)
from repro.service.registry import WarmModelRegistry

#: ``stats`` response document schema version.  v2 added
#: ``queue.inflight`` and the ``saturated`` flag on latency summaries;
#: v3 added ``queue.draining`` (graceful-drain in progress).
SERVICE_STATS_VERSION = 3


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = protocol.DEFAULT_PORT
    #: Bounded request queue; a full queue answers ``busy``.
    queue_size: int = 256
    #: Requests drained per dispatch (the service's unit of work), and
    #: therefore the ceiling on how many requests one vectorised group
    #: can merge: grouping happens *within* a drain, so no batch codec
    #: call ever sees more than ``batch_max`` payloads.
    batch_max: int = 8
    #: Concurrent dispatcher tasks (batches in flight).
    dispatchers: int = 2
    #: Executor threads running codec work.
    workers: int = 4
    #: Per-connection in-flight request cap.
    max_inflight: int = 64
    #: Largest accepted wire message.
    max_message: int = protocol.DEFAULT_MAX_MESSAGE
    #: Warm-model registry bound.
    registry_entries: int = 32
    #: Prometheus exposition port (``None`` disables the endpoint).
    metrics_port: Optional[int] = None
    #: Flight-recorder ring capacity (request-lifecycle events).
    flightrec_capacity: int = 1024
    #: When set, the flight recorder is dumped (JSONL) to this path on
    #: every wire-protocol error — the busy-storm/fuzz-hang post-mortem.
    flightrec_dump: Optional[str] = None
    #: Graceful-drain budget (seconds): on ``stop()`` the daemon stops
    #: accepting, answers every queued and in-flight request, and only
    #: force-closes whatever is still unanswered once this lapses.
    drain_deadline: float = 10.0


class _Connection:
    """Per-connection state: writer lock and in-flight accounting."""

    __slots__ = ("reader", "writer", "lock", "inflight", "idle")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.idle = asyncio.Event()
        self.idle.set()


@dataclass
class _WorkItem:
    conn: _Connection
    request: Request
    accepted_ns: int
    #: Span timeline of a traced request (``None`` when untraced).
    trace: Optional[TraceContext] = None


class CodecService:
    """The daemon.  ``await start()`` binds; ``await stop()`` tears down."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[WarmModelRegistry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or WarmModelRegistry(
            self.config.registry_entries
        )
        self.codecs = build_codecs(self.registry)
        self.flightrec = FlightRecorder(self.config.flightrec_capacity)
        self.address: Optional[Tuple[str, int]] = None
        self.metrics_address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatchers: List[asyncio.Task] = []
        self._started_ns = 0
        self._inflight = 0
        self._previous_recorder = None
        self._draining = False
        self._stopped = False
        #: Set whenever no accepted request is awaiting its reply; the
        #: drain path waits on it to honour "answer everything first".
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        # A daemon without telemetry cannot answer `stats`; install a
        # live recorder unless the caller already runs one.
        if not get_recorder().enabled:
            self._previous_recorder = set_recorder(Recorder())
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._idle = asyncio.Event()
        self._idle.set()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(self.config.dispatchers)
        ]
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_connection,
                self.config.host,
                self.config.metrics_port,
            )
            msock = self._metrics_server.sockets[0].getsockname()
            self.metrics_address = (msock[0], msock[1])
        self._started_ns = monotonic_ns()
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self, drain_deadline: Optional[float] = None) -> None:
        """Graceful shutdown: drain accepted work, then tear down.

        The sequence is the SIGTERM contract: stop accepting (every new
        codec request is shed with a ``draining`` busy reply), answer
        every request already queued or in flight, then close the
        listener and dismantle the dispatchers and executor.  The
        listener stays open *through* the drain on purpose: closing it
        first would orphan connections the kernel has accepted but the
        event loop has not yet served — their pipelined requests would
        never be read and the client would hang until its socket
        timeout, exactly the silent failure drain exists to prevent.
        Shedding at the application layer instead means a connection
        racing the shutdown still gets a typed reply for everything it
        sends.  The answer-everything phase is bounded by
        ``drain_deadline`` (default: the config's); overrunning it
        flight-records ``force_closed`` with the abandoned count
        instead of waiting forever.  Idempotent — a second call
        returns immediately.
        """
        if self._stopped:
            return
        self._stopped = True
        self._draining = True
        rec = get_recorder()
        budget = (
            self.config.drain_deadline
            if drain_deadline is None else drain_deadline
        )
        pending = self._inflight
        if self._idle is not None and pending:
            try:
                await asyncio.wait_for(self._idle.wait(), timeout=budget)
            except asyncio.TimeoutError:
                pass
        # Yield twice before closing the listener: each yield is a
        # selector poll, which delivers any accept event already queued
        # for a connection sitting in the kernel backlog.  The accept
        # callback runs ``sock.accept()`` synchronously, after which
        # the connection has its own socket and handler and survives
        # the listener close — its requests are then shed with typed
        # ``draining`` replies rather than silently never read.
        await asyncio.sleep(0)
        await asyncio.sleep(0)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._inflight:
            rec.count("service.drain.force_closed", self._inflight)
            self.flightrec.record(
                "force_closed",
                abandoned=self._inflight,
                drain_deadline_s=budget,
            )
        else:
            rec.count("service.drain.completed")
            self.flightrec.record(
                "drained", pending_at_stop=pending, clean=True
            )
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._dispatchers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._previous_recorder is not None:
            set_recorder(self._previous_recorder)
            self._previous_recorder = None

    @property
    def draining(self) -> bool:
        """True once shutdown began (new codec work is being shed)."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Accepted requests not yet answered (queued + executing)."""
        return self._inflight

    # -- connection handling -------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        rec = get_recorder()
        rec.count("service.connections")
        try:
            while True:
                try:
                    body = await protocol.read_message(
                        reader, self.config.max_message
                    )
                except WireError as error:
                    rec.count("service.wire_errors")
                    self._record_protocol_error("wire_error", error)
                    await self._send(conn, error_response(
                        0, error.request_id, error.category, str(error)
                    ))
                    # fatal == stream desync: reply-then-close is the
                    # contract (never disconnect without a reply).
                    break
                if body is None:  # clean EOF between messages
                    break
                started = monotonic_ns()
                try:
                    request = protocol.decode_request(body)
                except CorruptedStreamError as error:
                    # The frame was intact, so the stream is still
                    # synced: reply and keep serving this connection.
                    rec.count("service.bad_requests")
                    self._record_protocol_error("bad_request", error)
                    await self._send(conn, error_response(
                        0,
                        getattr(error, "request_id", 0),
                        error.category,
                        str(error),
                    ))
                    continue
                rec.count("service.bytes_in", len(body))
                await self._dispatch(conn, request, started)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # EOF on the read side does not mean the conversation is
            # over: accepted requests may still be in the queue or on
            # executor threads.  Closing now would disconnect without a
            # reply — the one thing the wire contract forbids — so wait
            # for the connection's in-flight count to drain first.
            if conn.inflight:
                try:
                    await asyncio.wait_for(conn.idle.wait(), timeout=60)
                except asyncio.TimeoutError:
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _record_protocol_error(self, kind: str, error: Exception) -> None:
        """Flight-record a protocol defect; dump the ring if configured.

        Wire errors are exactly the events post-mortems need context
        for, so each one is both recorded *and* — when a dump path is
        configured — triggers a JSONL dump of everything that led up to
        it.
        """
        self.flightrec.record(
            kind,
            error=str(error),
            category=getattr(error, "category", ""),
        )
        if self.config.flightrec_dump:
            try:
                self.flightrec.dump_to(self.config.flightrec_dump)
            except OSError:
                get_recorder().count("service.flightrec_dump_errors")

    def _trace_of(self, request: Request, started: int) -> Optional[TraceContext]:
        return (
            TraceContext(request.trace_id, origin_ns=started)
            if request.traced else None
        )

    @staticmethod
    def _finish_trace(
        response: Response, trace: Optional[TraceContext], segment: str
    ) -> Response:
        """Close a trace's final segment and embed the annex."""
        if trace is None:
            return response
        trace.mark(segment)
        return replace(
            response,
            traced=True,
            trace_json=json.dumps(trace.to_annex(), sort_keys=True).encode(),
        )

    async def _dispatch(
        self, conn: _Connection, request: Request, started: int
    ) -> None:
        rec = get_recorder()
        rec.count(f"service.requests.{OP_NAMES[request.op]}")
        trace = self._trace_of(request, started)
        if request.op in (OP_HEALTH, OP_STATS, OP_DUMP):
            # Inline ops: answered on the event loop, never queued, so
            # their traced timeline is a single "inline" segment.
            # Answered even while draining — observability must outlive
            # codec intake — but health says so, which is what makes
            # ``wait_for_service`` treat a draining daemon as down.
            if request.op == OP_HEALTH:
                status_text = "draining" if self._draining else "ok"
                payload = json.dumps({"status": status_text}).encode()
            elif request.op == OP_STATS:
                payload = json.dumps(
                    self.stats_document(), sort_keys=True
                ).encode()
            else:
                rec.count("service.flightrec_dumps")
                payload = self.flightrec.dump_jsonl().encode()
            response = self._finish_trace(Response(
                op=request.op, status=STATUS_OK,
                request_id=request.request_id,
                payload=payload,
            ), trace, "inline")
            await self._send(conn, response)
            self._observe_latency(OP_NAMES[request.op], started)
            return
        if self._draining:
            # Stop accepting: every request that reaches the queue is
            # owed a reply before shutdown completes, so during drain
            # nothing new gets in — it is shed with a typed busy reply
            # the client's retry policy treats as retryable.
            rec.count("service.shed.draining")
            self.flightrec.record(
                "shed", reason="draining",
                request_id=request.request_id, op=OP_NAMES[request.op],
            )
            await self._send(conn, self._finish_trace(error_response(
                request.op, request.request_id, "draining",
                "service is draining for shutdown",
                status=STATUS_BUSY,
            ), trace, "reply"))
            return
        if conn.inflight >= self.config.max_inflight:
            rec.count("service.busy.connection")
            self.flightrec.record(
                "busy", reason="connection",
                request_id=request.request_id, op=OP_NAMES[request.op],
            )
            await self._send(conn, self._finish_trace(error_response(
                request.op, request.request_id, "busy",
                f"connection exceeds {self.config.max_inflight} "
                "in-flight requests",
                status=STATUS_BUSY,
            ), trace, "reply"))
            return
        item = _WorkItem(
            conn=conn, request=request, accepted_ns=started, trace=trace,
        )
        assert self._queue is not None
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            rec.count("service.busy.queue")
            self.flightrec.record(
                "busy", reason="queue",
                request_id=request.request_id, op=OP_NAMES[request.op],
            )
            await self._send(conn, self._finish_trace(error_response(
                request.op, request.request_id, "busy",
                f"request queue is full ({self.config.queue_size})",
                status=STATUS_BUSY,
            ), trace, "reply"))
            return
        if trace is not None:
            # Closes recv→enqueue: header decode + dispatch overhead.
            trace.mark("dispatch")
        self.flightrec.record(
            "accepted",
            request_id=request.request_id, op=OP_NAMES[request.op],
            codec=request.codec, bytes=len(request.payload),
            traced=request.traced,
        )
        conn.inflight += 1
        self._inflight += 1
        conn.idle.clear()
        if self._idle is not None:
            self._idle.clear()
        rec.gauge("service.queue_depth", self._queue.qsize())

    # -- dispatch + execution ------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        rec = get_recorder()
        while True:
            item = await self._queue.get()
            batch = [item]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for it in batch:
                if it.trace is not None:
                    # Closes enqueue→drain: time spent queued.
                    it.trace.mark("queue_wait")
            rec.observe("service.batch_size", len(batch))
            rec.count("service.batches")
            # Deadline-aware load shedding: a request whose queue wait
            # already consumed its client-stamped budget gets a typed
            # STATUS_DEADLINE reply instead of executor time — the
            # client stopped waiting, so the codec work would be dead.
            live = []
            for it in batch:
                deadline_us = it.request.deadline_us
                if (
                    deadline_us is not None
                    and monotonic_ns() - it.accepted_ns > deadline_us * 1000
                ):
                    rec.count("service.shed.deadline")
                    self.flightrec.record(
                        "shed", reason="deadline",
                        request_id=it.request.request_id,
                        op=OP_NAMES[it.request.op],
                        deadline_us=deadline_us,
                        queue_wait_us=(monotonic_ns() - it.accepted_ns)
                        // 1000,
                    )
                    await self._reply(it, error_response(
                        it.request.op, it.request.request_id, "deadline",
                        f"queue wait exceeded the {deadline_us} us "
                        "request deadline",
                        status=STATUS_DEADLINE,
                    ))
                else:
                    live.append(it)
            batch = live
            if not batch:
                continue
            # Group the drain by (op, codec, payload digest): every
            # member of a group is the *same* work, so each group runs
            # as one executor task through the codec's batch entry
            # point instead of one task per request.  The digest stands
            # in for a model fingerprint — the warm registry keys
            # models by input hash, so identical payloads share a model.
            groups: Dict[Tuple[int, str, bytes], List[_WorkItem]] = {}
            for it in batch:
                key = (
                    it.request.op,
                    it.request.codec,
                    hashlib.sha256(it.request.payload).digest(),
                )
                groups.setdefault(key, []).append(it)
            for group in groups.values():
                rec.observe("service.group_size", len(group))
                rec.count(
                    "service.batch_grouped" if len(group) > 1
                    else "service.batch_singleton"
                )
            futures = [
                loop.run_in_executor(self._pool, self._execute_group, group)
                for group in groups.values()
            ]
            results = await asyncio.gather(*futures, return_exceptions=True)
            for group, result in zip(groups.values(), results):
                if isinstance(result, BaseException):
                    # _execute_group converts exceptions itself; this is
                    # the belt-and-braces path for executor failures.
                    rec.count("service.internal_errors")
                    self.flightrec.record(
                        "internal_error",
                        error=f"{type(result).__name__}: {result}",
                        group=len(group),
                    )
                    result = [
                        error_response(
                            it.request.op, it.request.request_id,
                            "internal",
                            f"{type(result).__name__}: {result}",
                        )
                        for it in group
                    ]
                for it, response in zip(group, result):
                    await self._reply(it, response)

    async def _reply(self, it: _WorkItem, response: Response) -> None:
        """Answer one accepted work item and release its accounting.

        The single exit path for anything that entered the queue —
        executed, errored, or shed — so latency observation, trace
        annex embedding, flight recording, and the in-flight decrement
        cannot drift apart between outcomes.
        """
        self._observe_latency(OP_NAMES[it.request.op], it.accepted_ns)
        # Closes codec→reply: executor hand-back plus the reply fan-out
        # wait on the event loop.  The annex travels inside the reply,
        # so the segment ends at annex-encode time; the socket write
        # that follows is the (untraceable) remainder of wire latency.
        response = self._finish_trace(response, it.trace, "reply")
        self.flightrec.record(
            "reply",
            request_id=it.request.request_id,
            op=OP_NAMES[it.request.op],
            status=protocol.STATUS_NAMES[response.status],
            latency_us=(monotonic_ns() - it.accepted_ns) // 1000,
        )
        await self._send(it.conn, response)
        # Decrement only after the reply went out: the reader side
        # waits on `idle` before closing the writer, and an early
        # decrement would let the close race the send.
        it.conn.inflight -= 1
        self._inflight -= 1
        if it.conn.inflight == 0:
            it.conn.idle.set()
        if self._inflight == 0 and self._idle is not None:
            self._idle.set()

    def _execute_group(self, items: List[_WorkItem]) -> List[Response]:
        """Run one group of identical codec requests (executor thread).

        Never raises.  Group members share op, codec, and payload bytes
        (grouping is digest-keyed), so on failure the one error maps to
        every member's ``request_id`` — exactly what per-request
        execution would have produced.

        Traced members get two segment boundaries here — drain→executor
        (``group_assembly``: grouping plus executor queue wait) and the
        codec call itself (``codec``) — and the codec work runs with
        their trace contexts *activated*, so shared machinery (the warm
        model registry) annotates every traced timeline it served.
        """
        traces = [it.trace for it in items if it.trace is not None]
        for trace in traces:
            trace.mark("group_assembly")
        try:
            with activate(traces):
                return self._run_group(items)
        finally:
            for trace in traces:
                trace.mark("codec")

    def _run_group(self, items: List[_WorkItem]) -> List[Response]:
        rec = get_recorder()
        requests = [it.request for it in items]
        first = requests[0]
        codec = self.codecs.get(first.codec)
        if codec is None:
            message = (
                f"unknown codec {first.codec!r} "
                f"(have: {', '.join(sorted(self.codecs))})"
            )
            return [
                error_response(r.op, r.request_id, "invalid", message)
                for r in requests
            ]
        rec.count(f"service.codec.{first.codec}", len(requests))
        payloads = [request.payload for request in requests]
        try:
            if first.op == OP_COMPRESS:
                if len(payloads) > 1 and codec.compress_batch is not None:
                    outs = codec.compress_batch(payloads)
                else:
                    outs = [codec.compress(p) for p in payloads]
            else:
                if len(payloads) > 1 and codec.decompress_batch is not None:
                    outs = codec.decompress_batch(payloads)
                else:
                    outs = [codec.decompress(p) for p in payloads]
        except CorruptedStreamError as error:
            rec.count("service.request_errors", len(requests))
            return [
                error_response(r.op, r.request_id, error.category, str(error))
                for r in requests
            ]
        except (ValueError, KeyError, NotImplementedError) as error:
            rec.count("service.request_errors", len(requests))
            return [
                error_response(r.op, r.request_id, "invalid", str(error))
                for r in requests
            ]
        except Exception as error:  # the wire contract: never leak
            rec.count("service.internal_errors", len(requests))
            return [
                error_response(
                    r.op, r.request_id, "internal",
                    f"{type(error).__name__}: {error}",
                )
                for r in requests
            ]
        return [
            Response(
                op=request.op, status=STATUS_OK,
                request_id=request.request_id, payload=out,
            )
            for request, out in zip(requests, outs)
        ]

    # -- replies and telemetry -----------------------------------------

    async def _send(self, conn: _Connection, response: Response) -> None:
        rec = get_recorder()
        data = protocol.pack_message(protocol.encode_response(response))
        rec.count("service.bytes_out", len(data))
        rec.count(f"service.replies.{protocol.STATUS_NAMES[response.status]}")
        try:
            async with conn.lock:
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, OSError):
            rec.count("service.dropped_replies")

    def _observe_latency(self, op_name: str, started_ns: int) -> None:
        get_recorder().observe(
            f"service.latency_us.{op_name}",
            (monotonic_ns() - started_ns) // 1000,
        )

    def stats_document(self) -> Dict[str, object]:
        """The ``stats`` op's JSON document (stable schema, versioned)."""
        snapshot = get_recorder().snapshot()
        counters = {
            name: value
            for name, value in sorted(snapshot["counters"].items())
            if name.startswith("service.")
        }
        latency = {}
        for op_name in OP_NAMES.values():
            cell = snapshot["histograms"].get(f"service.latency_us.{op_name}")
            if cell is not None:
                latency[op_name] = summarize_histogram(cell)
        batch = snapshot["histograms"].get("service.batch_size")
        return {
            "schema_version": SERVICE_STATS_VERSION,
            "uptime_seconds": (monotonic_ns() - self._started_ns) / 1e9,
            "codecs": sorted(self.codecs),
            "counters": counters,
            "latency_us": latency,
            "batch": summarize_histogram(batch) if batch else None,
            "queue": {
                "capacity": self.config.queue_size,
                "depth": self._queue.qsize() if self._queue else 0,
                "depth_highwater": snapshot["gauges"].get(
                    "service.queue_depth", 0
                ),
                "inflight": self._inflight,
                "draining": self._draining,
            },
            "registry": self.registry.stats(),
        }

    # -- metrics endpoint ----------------------------------------------

    async def _on_metrics_connection(self, reader, writer) -> None:
        """Serve one Prometheus scrape (minimal HTTP/1.0 responder).

        Any ``GET`` earns the full exposition; other methods get 405.
        One response per connection — scrapers reconnect per scrape.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10
            )
            # Drain headers until the blank line so well-behaved HTTP
            # clients are not left with an unread request body buffer.
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=10)
                if header in (b"\r\n", b"\n", b""):
                    break
            method = request_line.split(b" ", 1)[0].upper()
            if method == b"GET":
                body = prometheus_exposition(get_recorder().snapshot())
                payload = body.encode("utf-8")
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    f"Content-Type: {CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "\r\n"
                )
                writer.write(head.encode("ascii") + payload)
                get_recorder().count("service.metrics_scrapes")
            else:
                writer.write(
                    b"HTTP/1.0 405 Method Not Allowed\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- in-process harness ------------------------------------------------------

class ServerThread:
    """A daemon on a background thread — the in-process test harness.

    Runs a :class:`CodecService` inside its own event loop on its own
    thread, binding an ephemeral port by default.  Used by the service
    test fixtures, the protocol fuzzer's self-hosted mode, and the
    loadgen's ``--spawn`` convenience::

        with ServerThread() as (host, port):
            client = ServiceClient(host, port)
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig(port=0)
        self.service: Optional[CodecService] = None
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as error:  # surfaced via start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_event_loop()
        self._stop_event = asyncio.Event()
        self.service = CodecService(self.config)
        try:
            self.address = await self.service.start()
            self._ready.set()
            await self._stop_event.wait()
        finally:
            await self.service.stop()

    def drain(
        self,
        drain_deadline: Optional[float] = None,
        timeout: float = 30.0,
    ) -> bool:
        """Run a graceful drain from any thread (the SIGTERM analogue).

        Schedules :meth:`CodecService.stop` on the service loop and
        blocks until the drain completes (or ``timeout`` lapses).  The
        loop itself keeps running — already-open connections can still
        read their final replies — until :meth:`stop` is called.
        Returns ``True`` when the drain ran to completion.
        """
        if self._loop is None or self.service is None:
            return False
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(drain_deadline), self._loop
        )
        try:
            future.result(timeout=timeout)
        except Exception:
            return False
        return True

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = [
    "CodecService",
    "SERVICE_STATS_VERSION",
    "ServerThread",
    "ServiceConfig",
]
