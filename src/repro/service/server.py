"""The asyncio codec daemon (``python -m repro serve``).

One process, three layers:

* **Connections** — an asyncio stream server.  Each connection runs a
  read loop over the length-prefixed RF01 protocol
  (:mod:`repro.service.protocol`); ``health`` and ``stats`` are answered
  inline (they must stay responsive under load), codec work is enqueued.
  Every defect in a wire message is answered with a *structured error
  reply* — a connection is never dropped silently, and a desynchronised
  stream gets one last error frame before the close.
* **The queue** — a single bounded :class:`asyncio.Queue` between the
  connections and the executor.  Backpressure is explicit: when the
  queue is full (or a connection exceeds its in-flight limit) the server
  replies ``busy`` immediately instead of buffering without bound —
  clients see saturation as a signal, not as latency collapse.
* **Dispatchers + executor** — dispatcher tasks drain the queue in
  batches (up to ``batch_max`` requests per drain), group the drained
  requests by ``(op, codec, payload digest)``, and run each group as
  *one* executor task through the codec's batch entry point — the
  vectorised engine of ROADMAP item 1.  Codec work happens in threads;
  the event loop only moves bytes.

Telemetry flows through :mod:`repro.obs`: request counters, queue-depth
gauges, batch-size and per-op latency histograms (microseconds, fixed
exponential buckets), all surfaced by the ``stats`` op as JSON with
p50/p99 derived via :func:`repro.obs.metrics.histogram_quantile`.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import Recorder, get_recorder, set_recorder
from repro.obs.clock import monotonic_ns
from repro.obs.metrics import summarize_histogram
from repro.resilience.errors import CorruptedStreamError
from repro.service import protocol
from repro.service.codecs import build_codecs
from repro.service.protocol import (
    OP_COMPRESS,
    OP_DECOMPRESS,
    OP_HEALTH,
    OP_NAMES,
    OP_STATS,
    Request,
    Response,
    STATUS_BUSY,
    STATUS_OK,
    WireError,
    error_response,
)
from repro.service.registry import WarmModelRegistry

#: ``stats`` response document schema version.
SERVICE_STATS_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = protocol.DEFAULT_PORT
    #: Bounded request queue; a full queue answers ``busy``.
    queue_size: int = 256
    #: Requests drained per dispatch (the service's unit of work), and
    #: therefore the ceiling on how many requests one vectorised group
    #: can merge: grouping happens *within* a drain, so no batch codec
    #: call ever sees more than ``batch_max`` payloads.
    batch_max: int = 8
    #: Concurrent dispatcher tasks (batches in flight).
    dispatchers: int = 2
    #: Executor threads running codec work.
    workers: int = 4
    #: Per-connection in-flight request cap.
    max_inflight: int = 64
    #: Largest accepted wire message.
    max_message: int = protocol.DEFAULT_MAX_MESSAGE
    #: Warm-model registry bound.
    registry_entries: int = 32


class _Connection:
    """Per-connection state: writer lock and in-flight accounting."""

    __slots__ = ("reader", "writer", "lock", "inflight", "idle")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight = 0
        self.idle = asyncio.Event()
        self.idle.set()


@dataclass
class _WorkItem:
    conn: _Connection
    request: Request
    accepted_ns: int


class CodecService:
    """The daemon.  ``await start()`` binds; ``await stop()`` tears down."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        registry: Optional[WarmModelRegistry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry or WarmModelRegistry(
            self.config.registry_entries
        )
        self.codecs = build_codecs(self.registry)
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatchers: List[asyncio.Task] = []
        self._started_ns = 0
        self._previous_recorder = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        # A daemon without telemetry cannot answer `stats`; install a
        # live recorder unless the caller already runs one.
        if not get_recorder().enabled:
            self._previous_recorder = set_recorder(Recorder())
        self._queue = asyncio.Queue(maxsize=self.config.queue_size)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        self._dispatchers = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(self.config.dispatchers)
        ]
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._started_ns = monotonic_ns()
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._dispatchers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._previous_recorder is not None:
            set_recorder(self._previous_recorder)
            self._previous_recorder = None

    # -- connection handling -------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        rec = get_recorder()
        rec.count("service.connections")
        try:
            while True:
                try:
                    body = await protocol.read_message(
                        reader, self.config.max_message
                    )
                except WireError as error:
                    rec.count("service.wire_errors")
                    await self._send(conn, error_response(
                        0, error.request_id, error.category, str(error)
                    ))
                    # fatal == stream desync: reply-then-close is the
                    # contract (never disconnect without a reply).
                    break
                if body is None:  # clean EOF between messages
                    break
                started = monotonic_ns()
                try:
                    request = protocol.decode_request(body)
                except CorruptedStreamError as error:
                    # The frame was intact, so the stream is still
                    # synced: reply and keep serving this connection.
                    rec.count("service.bad_requests")
                    await self._send(conn, error_response(
                        0,
                        getattr(error, "request_id", 0),
                        error.category,
                        str(error),
                    ))
                    continue
                rec.count("service.bytes_in", len(body))
                await self._dispatch(conn, request, started)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # EOF on the read side does not mean the conversation is
            # over: accepted requests may still be in the queue or on
            # executor threads.  Closing now would disconnect without a
            # reply — the one thing the wire contract forbids — so wait
            # for the connection's in-flight count to drain first.
            if conn.inflight:
                try:
                    await asyncio.wait_for(conn.idle.wait(), timeout=60)
                except asyncio.TimeoutError:
                    pass
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, conn: _Connection, request: Request, started: int
    ) -> None:
        rec = get_recorder()
        rec.count(f"service.requests.{OP_NAMES[request.op]}")
        if request.op == OP_HEALTH:
            await self._send(conn, Response(
                op=OP_HEALTH, status=STATUS_OK,
                request_id=request.request_id,
                payload=json.dumps({"status": "ok"}).encode(),
            ))
            self._observe_latency("health", started)
            return
        if request.op == OP_STATS:
            await self._send(conn, Response(
                op=OP_STATS, status=STATUS_OK,
                request_id=request.request_id,
                payload=json.dumps(
                    self.stats_document(), sort_keys=True
                ).encode(),
            ))
            self._observe_latency("stats", started)
            return
        if conn.inflight >= self.config.max_inflight:
            rec.count("service.busy.connection")
            await self._send(conn, error_response(
                request.op, request.request_id, "busy",
                f"connection exceeds {self.config.max_inflight} "
                "in-flight requests",
                status=STATUS_BUSY,
            ))
            return
        item = _WorkItem(conn=conn, request=request, accepted_ns=started)
        assert self._queue is not None
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            rec.count("service.busy.queue")
            await self._send(conn, error_response(
                request.op, request.request_id, "busy",
                f"request queue is full ({self.config.queue_size})",
                status=STATUS_BUSY,
            ))
            return
        conn.inflight += 1
        conn.idle.clear()
        rec.gauge("service.queue_depth", self._queue.qsize())

    # -- dispatch + execution ------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_event_loop()
        rec = get_recorder()
        while True:
            item = await self._queue.get()
            batch = [item]
            while len(batch) < self.config.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            rec.observe("service.batch_size", len(batch))
            rec.count("service.batches")
            # Group the drain by (op, codec, payload digest): every
            # member of a group is the *same* work, so each group runs
            # as one executor task through the codec's batch entry
            # point instead of one task per request.  The digest stands
            # in for a model fingerprint — the warm registry keys
            # models by input hash, so identical payloads share a model.
            groups: Dict[Tuple[int, str, bytes], List[_WorkItem]] = {}
            for it in batch:
                key = (
                    it.request.op,
                    it.request.codec,
                    hashlib.sha256(it.request.payload).digest(),
                )
                groups.setdefault(key, []).append(it)
            for group in groups.values():
                rec.observe("service.group_size", len(group))
                rec.count(
                    "service.batch_grouped" if len(group) > 1
                    else "service.batch_singleton"
                )
            futures = [
                loop.run_in_executor(self._pool, self._execute_group, group)
                for group in groups.values()
            ]
            results = await asyncio.gather(*futures, return_exceptions=True)
            for group, result in zip(groups.values(), results):
                if isinstance(result, BaseException):
                    # _execute_group converts exceptions itself; this is
                    # the belt-and-braces path for executor failures.
                    rec.count("service.internal_errors")
                    result = [
                        error_response(
                            it.request.op, it.request.request_id,
                            "internal",
                            f"{type(result).__name__}: {result}",
                        )
                        for it in group
                    ]
                for it, response in zip(group, result):
                    self._observe_latency(
                        OP_NAMES[it.request.op], it.accepted_ns
                    )
                    await self._send(it.conn, response)
                    # Decrement only after the reply went out: the
                    # reader side waits on `idle` before closing the
                    # writer, and an early decrement would let the
                    # close race the send.
                    it.conn.inflight -= 1
                    if it.conn.inflight == 0:
                        it.conn.idle.set()

    def _execute_group(self, items: List[_WorkItem]) -> List[Response]:
        """Run one group of identical codec requests (executor thread).

        Never raises.  Group members share op, codec, and payload bytes
        (grouping is digest-keyed), so on failure the one error maps to
        every member's ``request_id`` — exactly what per-request
        execution would have produced.
        """
        rec = get_recorder()
        requests = [it.request for it in items]
        first = requests[0]
        codec = self.codecs.get(first.codec)
        if codec is None:
            message = (
                f"unknown codec {first.codec!r} "
                f"(have: {', '.join(sorted(self.codecs))})"
            )
            return [
                error_response(r.op, r.request_id, "invalid", message)
                for r in requests
            ]
        rec.count(f"service.codec.{first.codec}", len(requests))
        payloads = [request.payload for request in requests]
        try:
            if first.op == OP_COMPRESS:
                if len(payloads) > 1 and codec.compress_batch is not None:
                    outs = codec.compress_batch(payloads)
                else:
                    outs = [codec.compress(p) for p in payloads]
            else:
                if len(payloads) > 1 and codec.decompress_batch is not None:
                    outs = codec.decompress_batch(payloads)
                else:
                    outs = [codec.decompress(p) for p in payloads]
        except CorruptedStreamError as error:
            rec.count("service.request_errors", len(requests))
            return [
                error_response(r.op, r.request_id, error.category, str(error))
                for r in requests
            ]
        except (ValueError, KeyError, NotImplementedError) as error:
            rec.count("service.request_errors", len(requests))
            return [
                error_response(r.op, r.request_id, "invalid", str(error))
                for r in requests
            ]
        except Exception as error:  # the wire contract: never leak
            rec.count("service.internal_errors", len(requests))
            return [
                error_response(
                    r.op, r.request_id, "internal",
                    f"{type(error).__name__}: {error}",
                )
                for r in requests
            ]
        return [
            Response(
                op=request.op, status=STATUS_OK,
                request_id=request.request_id, payload=out,
            )
            for request, out in zip(requests, outs)
        ]

    # -- replies and telemetry -----------------------------------------

    async def _send(self, conn: _Connection, response: Response) -> None:
        rec = get_recorder()
        data = protocol.pack_message(protocol.encode_response(response))
        rec.count("service.bytes_out", len(data))
        rec.count(f"service.replies.{protocol.STATUS_NAMES[response.status]}")
        try:
            async with conn.lock:
                conn.writer.write(data)
                await conn.writer.drain()
        except (ConnectionError, OSError):
            rec.count("service.dropped_replies")

    def _observe_latency(self, op_name: str, started_ns: int) -> None:
        get_recorder().observe(
            f"service.latency_us.{op_name}",
            (monotonic_ns() - started_ns) // 1000,
        )

    def stats_document(self) -> Dict[str, object]:
        """The ``stats`` op's JSON document (stable schema, version 1)."""
        snapshot = get_recorder().snapshot()
        counters = {
            name: value
            for name, value in sorted(snapshot["counters"].items())
            if name.startswith("service.")
        }
        latency = {}
        for op_name in OP_NAMES.values():
            cell = snapshot["histograms"].get(f"service.latency_us.{op_name}")
            if cell is not None:
                latency[op_name] = summarize_histogram(cell)
        batch = snapshot["histograms"].get("service.batch_size")
        return {
            "schema_version": SERVICE_STATS_VERSION,
            "uptime_seconds": (monotonic_ns() - self._started_ns) / 1e9,
            "codecs": sorted(self.codecs),
            "counters": counters,
            "latency_us": latency,
            "batch": summarize_histogram(batch) if batch else None,
            "queue": {
                "capacity": self.config.queue_size,
                "depth": self._queue.qsize() if self._queue else 0,
                "depth_highwater": snapshot["gauges"].get(
                    "service.queue_depth", 0
                ),
            },
            "registry": self.registry.stats(),
        }


# -- in-process harness ------------------------------------------------------

class ServerThread:
    """A daemon on a background thread — the in-process test harness.

    Runs a :class:`CodecService` inside its own event loop on its own
    thread, binding an ephemeral port by default.  Used by the service
    test fixtures, the protocol fuzzer's self-hosted mode, and the
    loadgen's ``--spawn`` convenience::

        with ServerThread() as (host, port):
            client = ServiceClient(host, port)
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig(port=0)
        self.service: Optional[CodecService] = None
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"service failed to start: {self._startup_error}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as error:  # surfaced via start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_event_loop()
        self._stop_event = asyncio.Event()
        self.service = CodecService(self.config)
        try:
            self.address = await self.service.start()
            self._ready.set()
            await self._stop_event.wait()
        finally:
            await self.service.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = [
    "CodecService",
    "SERVICE_STATS_VERSION",
    "ServerThread",
    "ServiceConfig",
]
