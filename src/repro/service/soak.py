"""The chaos soak: end-to-end failure-semantics verification.

One command (``python -m repro soak``) assembles the full resilience
story and checks its contract:

1. an in-process daemon (:class:`~repro.service.server.ServerThread`)
   on an ephemeral port, with a large flight-recorder ring;
2. the seeded :class:`~repro.service.chaos.ChaosProxy` in front of it,
   injecting resets, truncations, slow drips, latency, and duplicated
   bytes;
3. retrying load-generator workers driving traffic *through* the proxy
   with a :class:`~repro.service.retry.RetryPolicy`, a shared
   :class:`~repro.service.retry.CircuitBreaker`, and per-request
   deadlines;
4. a mid-soak graceful drain (the SIGTERM analogue) at ~60% of the
   run, while requests are genuinely in flight.

The soak passes only when the failure semantics hold end to end:

* **typed outcomes** — every sent request lands in exactly one bucket
  (ok / retried-ok / busy / deadline / breaker-open / connection-fault);
* **zero hangs** — no client-side timeout fires; all harness-injected
  delays are bounded far below the request timeout, so a timeout is a
  real hang;
* **zero leaked internal errors** — neither the clients nor the
  daemon's ``service.internal_errors`` counter see an untyped failure;
* **zero reply loss across the drain** — the daemon flight-records a
  clean ``drained`` event (never ``force_closed``) and ends with no
  accepted request unanswered.

Any violation is reported and exits non-zero; ``--flightrec-dump``
writes the daemon's lifecycle ring as JSONL for the post-mortem.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.service.chaos import ChaosProxy
from repro.service.loadgen import (
    LoadgenReport,
    build_workload,
    run_loadgen_async,
)
from repro.service.retry import CircuitBreaker, RetryPolicy
from repro.service.server import ServerThread, ServiceConfig

#: Per-request wall-clock bound during the soak.  Chaos delays are
#: bounded near 1 s, so anything hitting this is a genuine hang.
SOAK_REQUEST_TIMEOUT = 8.0

#: Per-request deadline stamped on the wire (seconds).
SOAK_REQUEST_DEADLINE = 5.0

#: Fraction of the soak after which the graceful drain fires.
DRAIN_AT = 0.6


@dataclass
class SoakReport:
    """Everything one soak run measured, plus its verdict."""

    seed: int
    duration: float
    rps: float
    connections: int
    loadgen: Optional[LoadgenReport] = None
    proxy: Dict[str, int] = field(default_factory=dict)
    drain_clean: bool = False
    server_inflight_after: int = 0
    server_internal_errors: int = 0
    server_sheds: Dict[str, int] = field(default_factory=dict)
    flightrec_kinds: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "duration_seconds": self.duration,
            "rps": self.rps,
            "connections": self.connections,
            "ok": self.ok,
            "violations": list(self.violations),
            "loadgen": self.loadgen.to_dict() if self.loadgen else None,
            "proxy": dict(self.proxy),
            "drain_clean": self.drain_clean,
            "server_inflight_after": self.server_inflight_after,
            "server_internal_errors": self.server_internal_errors,
            "server_sheds": dict(self.server_sheds),
            "flightrec_kinds": dict(self.flightrec_kinds),
        }

    def format_lines(self) -> List[str]:
        lines = [
            f"soak: seed {self.seed}, {self.duration:.0f}s @ "
            f"{self.rps:.0f} rps through the chaos proxy "
            f"(drain at {DRAIN_AT:.0%})"
        ]
        if self.loadgen is not None:
            lines.extend(self.loadgen.format_lines())
        faults = ", ".join(
            f"{mode}={count}" for mode, count in sorted(self.proxy.items())
            if count
        )
        lines.append(f"proxy: {faults or 'no connections'}")
        sheds = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.server_sheds.items())
        )
        lines.append(
            f"server: drain {'clean' if self.drain_clean else 'DIRTY'} / "
            f"{self.server_inflight_after} unanswered / "
            f"{self.server_internal_errors} internal"
            + (f" / sheds {sheds}" if sheds else "")
        )
        if self.violations:
            lines.append(f"FAIL: {len(self.violations)} violation(s)")
            lines.extend(f"  - {violation}" for violation in self.violations)
        else:
            lines.append("PASS: failure-semantics contract held")
        return lines


def _verify(report: SoakReport) -> List[str]:
    """The contract checks; each failure is one violation string."""
    violations: List[str] = []
    load = report.loadgen
    if load is None:
        return ["loadgen produced no report"]
    if load.sent == 0:
        violations.append("no requests were sent")
    if load.outcomes_total != load.sent:
        violations.append(
            f"outcome accounting broke: {load.sent} sent but "
            f"{load.outcomes_total} typed outcomes"
        )
    if load.timeouts:
        violations.append(
            f"{load.timeouts} request(s) hit the {SOAK_REQUEST_TIMEOUT:.0f}s "
            "client timeout — a hang, since injected delays are bounded"
        )
    if load.protocol_errors:
        violations.append(
            f"{load.protocol_errors} untyped protocol error(s) leaked "
            "through the retry taxonomy"
        )
    if load.internal_errors:
        violations.append(
            f"{load.internal_errors} internal error reply(ies) reached "
            "clients"
        )
    if report.server_internal_errors:
        violations.append(
            f"daemon counted {report.server_internal_errors} internal "
            "error(s)"
        )
    if not report.drain_clean:
        violations.append("graceful drain did not run to completion")
    if report.server_inflight_after:
        violations.append(
            f"reply loss: {report.server_inflight_after} accepted "
            "request(s) never answered after the drain"
        )
    if report.flightrec_kinds.get("force_closed"):
        violations.append(
            "drain overran its deadline and force-closed "
            f"{report.flightrec_kinds['force_closed']} time(s)"
        )
    if not report.flightrec_kinds.get("drained"):
        violations.append("no clean 'drained' event in the flight recorder")
    return violations


async def _soak(
    server: ServerThread,
    report: SoakReport,
    units: Sequence[object],
) -> None:
    host, port = server.address
    proxy = ChaosProxy(host, port, seed=report.seed)
    proxy_host, proxy_port = await proxy.start()
    policy = RetryPolicy(
        max_attempts=4, base_delay=0.02, multiplier=2.0,
        max_delay=0.3, jitter=0.5, seed=report.seed,
    )
    breaker = CircuitBreaker(failure_threshold=8, recovery_time=0.25)
    loadgen_task = asyncio.ensure_future(run_loadgen_async(
        proxy_host, proxy_port,
        rps=report.rps, duration=report.duration,
        connections=report.connections, seed=report.seed,
        units=list(units),
        retry=policy, breaker=breaker,
        request_deadline=SOAK_REQUEST_DEADLINE,
        request_timeout=SOAK_REQUEST_TIMEOUT,
        # The daemon is drained (and refusing connections) by the time
        # the burst ends; a post-run stats fetch could only fail.
        fetch_stats=False,
    ))
    try:
        await asyncio.sleep(report.duration * DRAIN_AT)
        # The SIGTERM analogue, fired while requests are in flight.
        report.drain_clean = await asyncio.to_thread(server.drain)
        report.loadgen = await loadgen_task
    finally:
        loadgen_task.cancel()
        await proxy.stop()
    report.proxy = proxy.report()


def run_soak(
    seed: int = 0,
    duration: float = 20.0,
    rps: float = 80.0,
    connections: int = 4,
    dump_path: Optional[str] = None,
) -> SoakReport:
    """Run the full chaos soak; see the module doc for the contract."""
    if duration <= 0 or rps <= 0:
        raise ValueError("duration and rps must be positive")
    from repro.obs import set_recorder
    from repro.obs.recorder import Recorder

    report = SoakReport(
        seed=seed, duration=duration, rps=rps, connections=connections,
    )
    units = build_workload(seed)
    # Install the telemetry recorder ourselves (instead of letting the
    # daemon self-install one): the daemon restores the previous
    # recorder when its drain completes, and the soak's verdict needs
    # the counters *after* that point.
    recorder = Recorder()
    previous = set_recorder(recorder)
    server = ServerThread(ServiceConfig(
        port=0, flightrec_capacity=16384, drain_deadline=15.0,
    ))
    server.start()
    try:
        asyncio.run(_soak(server, report, units))
        service = server.service
        report.server_inflight_after = service.inflight
        report.flightrec_kinds = service.flightrec.counts_by_kind()
        counters = dict(recorder.snapshot().get("counters", {}))
        report.server_internal_errors = counters.get(
            "service.internal_errors", 0
        )
        report.server_sheds = {
            name.rsplit(".", 1)[-1]: count
            for name, count in counters.items()
            if name.startswith("service.shed.")
        }
        if dump_path is not None:
            service.flightrec.dump_to(dump_path)
    finally:
        server.stop()
        set_recorder(previous)
    report.violations = _verify(report)
    return report


__all__ = [
    "DRAIN_AT",
    "SOAK_REQUEST_DEADLINE",
    "SOAK_REQUEST_TIMEOUT",
    "SoakReport",
    "run_soak",
]
