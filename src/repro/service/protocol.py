"""The service wire protocol: length-prefixed, RF01-framed messages.

Every message — request or response, either direction — is::

    u32 frame_len | RF01 frame (magic, version, flags, len, CRC-32, body)

The outer ``u32`` tells the stream reader how many bytes to collect; the
RF01 container (:mod:`repro.resilience.frame`) gives every wire payload
an end-to-end CRC, so a flipped bit anywhere in transit is *detected*
rather than decoded into a plausible wrong answer — the same contract
the on-ROM archives get.  Bodies are a small codec-agnostic schema, all
integers big-endian:

Request body::

    u8 op | u32 request_id | u8 codec_len | codec utf-8
    u32 payload_len | payload

Response body::

    u8 op | u8 status | u32 request_id
    status OK:    u32 payload_len | payload
    status else:  u8 category_len | category | u16 message_len | message

**Tracing** is an optional, backwards-compatible extension: the high
bit of the op byte (:data:`FLAG_TRACED`) marks a traced message.  A
traced request inserts a client-stamped ``u64 trace_id`` between the op
byte and the rest of the header::

    u8 (op|0x80) | u64 trace_id | u32 request_id | u8 codec_len | ...

and the matching traced response appends a trace annex — a JSON
timeline of server-side segments (see :mod:`repro.obs.trace`) — after
the normal body::

    ... normal response body ... | u32 trace_len | trace JSON

**Deadlines** use the same optional-flag scheme on the next op-byte
bit (:data:`FLAG_DEADLINE`): a deadline-stamped request inserts a
``u32 deadline_us`` — the client's *remaining time budget* in
microseconds, relative so no clock synchronisation is assumed — after
the trace id (when traced) and before the request id::

    u8 (op|0x40) | [u64 trace_id] | u32 deadline_us | u32 request_id | ...

A server that drains such a request from its queue after the budget
has already lapsed replies ``STATUS_DEADLINE`` instead of doing dead
work the client has stopped waiting for.

Untagged frames never carry either field, so pre-trace and
pre-deadline clients and servers interoperate with current ones
unchanged (the bytes are identical); a server only sets the trace flag
on a response when the request asked for it, and responses never carry
a deadline field.

``request_id`` is an opaque client token echoed in the response, so a
client may pipeline requests on one connection and match replies out of
order (the server batches, which can reorder).  Parse failures raise
:class:`WireError` — a :class:`CorruptedStreamError` that additionally
carries the ``request_id`` when the header parsed far enough to know it,
and a ``fatal`` flag saying whether the byte stream can still be trusted
(a malformed body inside a valid frame is recoverable; a bad frame or
truncated read means the connection must reply-then-close).
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional

from repro.resilience.errors import (
    CATEGORY_BUDGET,
    CATEGORY_STRUCTURE,
    CATEGORY_TRUNCATED,
    CorruptedStreamError,
    decode_guard,
)
from repro.resilience.frame import FRAME_OVERHEAD, unwrap_frame, wrap_frame

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7341

#: Largest accepted wire message (frame included).  A declared length
#: beyond this is rejected before a single payload byte is read, so a
#: forged prefix cannot make the server buffer gigabytes.
DEFAULT_MAX_MESSAGE = 8 * 1024 * 1024

OP_COMPRESS = 1
OP_DECOMPRESS = 2
OP_STATS = 3
OP_HEALTH = 4
OP_DUMP = 5

OPS = frozenset({OP_COMPRESS, OP_DECOMPRESS, OP_STATS, OP_HEALTH, OP_DUMP})
OP_NAMES = {
    OP_COMPRESS: "compress",
    OP_DECOMPRESS: "decompress",
    OP_STATS: "stats",
    OP_HEALTH: "health",
    OP_DUMP: "dump",
}

#: High bit of the op byte: this message carries trace fields.
FLAG_TRACED = 0x80

#: Second-highest bit: this request carries a ``u32 deadline_us``
#: remaining-time budget (requests only; responses never set it).
FLAG_DEADLINE = 0x40

#: Mask selecting the op number out of a flagged op byte.
_OP_MASK = 0xFF & ~(FLAG_TRACED | FLAG_DEADLINE)

STATUS_OK = 0
STATUS_ERROR = 1
STATUS_BUSY = 2
#: The request's client-stamped deadline lapsed while it sat in the
#: server queue; the work was shed instead of executed.
STATUS_DEADLINE = 3

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_ERROR: "error",
    STATUS_BUSY: "busy",
    STATUS_DEADLINE: "deadline",
}

_LENGTH = struct.Struct(">I")


class WireError(CorruptedStreamError):
    """A malformed wire message.

    ``fatal`` marks stream desynchronisation: the reader can no longer
    trust the next length prefix, so the connection should send one
    structured error reply and close.  Non-fatal errors (a bad body in
    an intact frame) leave the stream positioned at the next message.
    """

    def __init__(
        self,
        message: str,
        *,
        offset: Optional[int] = None,
        category: str = CATEGORY_STRUCTURE,
        request_id: int = 0,
        fatal: bool = False,
    ) -> None:
        super().__init__(message, offset=offset, category=category)
        self.request_id = request_id
        self.fatal = fatal


@dataclass(frozen=True)
class Request:
    """One decoded service request.

    ``traced`` requests carry a client-stamped ``trace_id`` and are
    answered with a traced response (the server's span timeline
    embedded as an annex).  ``deadline_us`` is the client's remaining
    time budget in microseconds (``None`` when unstamped): a server may
    shed the request with :data:`STATUS_DEADLINE` once the budget has
    lapsed in its queue.
    """

    op: int
    request_id: int
    codec: str = ""
    payload: bytes = b""
    traced: bool = False
    trace_id: int = 0
    deadline_us: Optional[int] = None


@dataclass(frozen=True)
class Response:
    """One decoded service response.

    ``trace_json`` is the raw trace annex of a traced response (empty
    when untraced); :meth:`trace` parses it.
    """

    op: int
    status: int
    request_id: int
    payload: bytes = b""
    category: str = ""
    message: str = ""
    traced: bool = False
    trace_json: bytes = b""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def trace(self) -> Optional[dict]:
        """The parsed trace annex, or ``None`` on an untraced reply."""
        if not self.traced or not self.trace_json:
            return None
        from repro.obs.trace import parse_annex

        return parse_annex(self.trace_json)


def error_response(
    op: int,
    request_id: int,
    category: str,
    message: str,
    status: int = STATUS_ERROR,
) -> Response:
    """A structured failure reply (status ``error`` or ``busy``)."""
    return Response(
        op=op,
        status=status,
        request_id=request_id,
        category=category,
        message=message,
    )


# -- body encode/decode ------------------------------------------------------

def encode_request(request: Request) -> bytes:
    codec = request.codec.encode("utf-8")
    if len(codec) > 0xFF:
        raise ValueError("codec name exceeds 255 bytes")
    if not 0 <= request.request_id <= 0xFFFFFFFF:
        raise ValueError("request_id must fit in a u32")
    op = request.op
    parts = []
    if request.traced:
        if not 0 <= request.trace_id <= 0xFFFFFFFFFFFFFFFF:
            raise ValueError("trace_id must fit in a u64")
        op |= FLAG_TRACED
        parts.append(struct.pack(">Q", request.trace_id))
    if request.deadline_us is not None:
        if not 0 <= request.deadline_us <= 0xFFFFFFFF:
            raise ValueError("deadline_us must fit in a u32")
        op |= FLAG_DEADLINE
        parts.append(_LENGTH.pack(request.deadline_us))
    return b"".join((
        struct.pack(">B", op),
        *parts,
        struct.pack(">IB", request.request_id, len(codec)),
        codec,
        _LENGTH.pack(len(request.payload)),
        request.payload,
    ))


# repro: contract decode-entry
def decode_request(body: bytes) -> Request:
    """Parse a request body; raises :class:`WireError` on any defect."""
    with decode_guard("service.decode_request"):
        if len(body) < 1:
            raise WireError(
                "empty request body",
                offset=0,
                category=CATEGORY_TRUNCATED,
            )
        traced = bool(body[0] & FLAG_TRACED)
        stamped = bool(body[0] & FLAG_DEADLINE)
        head_len = 6 + (8 if traced else 0) + (4 if stamped else 0)
        if len(body) < head_len:
            raise WireError(
                f"request header needs {head_len} bytes, got {len(body)}",
                offset=len(body),
                category=CATEGORY_TRUNCATED,
            )
        op = body[0] & _OP_MASK
        pos = 1
        trace_id = 0
        deadline_us: Optional[int] = None
        if traced:
            (trace_id,) = struct.unpack_from(">Q", body, pos)
            pos += 8
        if stamped:
            (deadline_us,) = _LENGTH.unpack_from(body, pos)
            pos += 4
        request_id, codec_len = struct.unpack_from(">IB", body, pos)
        pos += 5
        if op not in OPS:
            raise WireError(
                f"unknown op {op}",
                offset=0,
                request_id=request_id,
            )
        if pos + codec_len + 4 > len(body):
            raise WireError(
                "request truncated inside the codec/length fields",
                offset=len(body),
                category=CATEGORY_TRUNCATED,
                request_id=request_id,
            )
        try:
            codec = body[pos : pos + codec_len].decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError(
                "codec name is not valid UTF-8",
                offset=pos,
                request_id=request_id,
            ) from error
        pos += codec_len
        (payload_len,) = _LENGTH.unpack_from(body, pos)
        pos += 4
        if payload_len != len(body) - pos:
            raise WireError(
                f"request declares {payload_len} payload bytes but "
                f"{len(body) - pos} follow",
                offset=pos,
                request_id=request_id,
            )
        return Request(
            op=op,
            request_id=request_id,
            codec=codec,
            payload=body[pos:],
            traced=traced,
            trace_id=trace_id,
            deadline_us=deadline_us,
        )


def encode_response(response: Response) -> bytes:
    op = response.op | FLAG_TRACED if response.traced else response.op
    head = struct.pack(
        ">BBI", op, response.status, response.request_id
    )
    annex = (
        _LENGTH.pack(len(response.trace_json)) + response.trace_json
        if response.traced else b""
    )
    if response.status == STATUS_OK:
        return (
            head + _LENGTH.pack(len(response.payload)) + response.payload
            + annex
        )
    category = response.category.encode("utf-8")[:0xFF]
    message = response.message.encode("utf-8")[:0xFFFF]
    return b"".join((
        head,
        struct.pack(">B", len(category)),
        category,
        struct.pack(">H", len(message)),
        message,
        annex,
    ))


# repro: contract decode-entry
def decode_response(body: bytes) -> Response:
    """Parse a response body; raises :class:`WireError` on any defect."""
    with decode_guard("service.decode_response"):
        if len(body) < 6:
            raise WireError(
                f"response header needs 6 bytes, got {len(body)}",
                offset=len(body),
                category=CATEGORY_TRUNCATED,
            )
        op, status, request_id = struct.unpack_from(">BBI", body)
        traced = bool(op & FLAG_TRACED)
        op &= _OP_MASK
        pos = 6
        if status == STATUS_OK:
            if pos + 4 > len(body):
                raise WireError(
                    "response truncated before the payload length",
                    offset=len(body),
                    category=CATEGORY_TRUNCATED,
                    request_id=request_id,
                )
            (payload_len,) = _LENGTH.unpack_from(body, pos)
            pos += 4
            if payload_len > len(body) - pos:
                raise WireError(
                    f"response declares {payload_len} payload bytes but "
                    f"{len(body) - pos} follow",
                    offset=pos,
                    request_id=request_id,
                )
            payload = body[pos : pos + payload_len]
            pos += payload_len
            trace_json = _decode_annex(body, pos, traced, request_id)
            return Response(
                op=op, status=status, request_id=request_id,
                payload=payload, traced=traced, trace_json=trace_json,
            )
        if pos + 1 > len(body):
            raise WireError(
                "response truncated before the error category",
                offset=len(body),
                category=CATEGORY_TRUNCATED,
                request_id=request_id,
            )
        category_len = body[pos]
        pos += 1
        category = body[pos : pos + category_len].decode("utf-8")
        pos += category_len
        (message_len,) = struct.unpack_from(">H", body, pos)
        pos += 2
        message = body[pos : pos + message_len].decode("utf-8")
        pos += message_len
        trace_json = _decode_annex(body, pos, traced, request_id)
        return Response(
            op=op, status=status, request_id=request_id,
            category=category, message=message,
            traced=traced, trace_json=trace_json,
        )


def _decode_annex(
    body: bytes, pos: int, traced: bool, request_id: int
) -> bytes:
    """Parse the trailing trace annex of a traced response body.

    An untraced body must end exactly at ``pos``; a traced one must
    carry exactly ``u32 trace_len | trace`` there.
    """
    if pos > len(body):
        raise WireError(
            f"response truncated {len(body)} bytes into a declared "
            f"{pos}-byte body",
            offset=len(body),
            category=CATEGORY_TRUNCATED,
            request_id=request_id,
        )
    if not traced:
        if pos != len(body):
            raise WireError(
                f"{len(body) - pos} unexpected trailing bytes after the "
                "response body",
                offset=pos,
                request_id=request_id,
            )
        return b""
    if pos + 4 > len(body):
        raise WireError(
            "traced response truncated before the trace length",
            offset=len(body),
            category=CATEGORY_TRUNCATED,
            request_id=request_id,
        )
    (trace_len,) = _LENGTH.unpack_from(body, pos)
    pos += 4
    if trace_len != len(body) - pos:
        raise WireError(
            f"trace annex declares {trace_len} bytes but "
            f"{len(body) - pos} follow",
            offset=pos,
            request_id=request_id,
        )
    return body[pos:]


# -- stream framing ----------------------------------------------------------

def pack_message(body: bytes) -> bytes:
    """Frame a body for the wire: RF01 container plus length prefix."""
    frame = wrap_frame(body)
    return _LENGTH.pack(len(frame)) + frame


# repro: contract decode-entry
async def read_message(
    reader: "asyncio.StreamReader",
    max_message: int = DEFAULT_MAX_MESSAGE,
) -> Optional[bytes]:
    """Read one framed message body from an asyncio stream.

    Returns ``None`` on a clean EOF (the peer closed between messages).
    Every defect raises a *fatal* :class:`WireError`: a truncated read,
    an implausible length, or a frame that fails its CRC all mean the
    stream position can no longer be trusted.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise WireError(
            "connection closed inside a length prefix",
            offset=len(error.partial),
            category=CATEGORY_TRUNCATED,
            fatal=True,
        ) from error
    (length,) = _LENGTH.unpack(prefix)  # repro: noqa exception-leak (readexactly returned exactly 4 bytes)
    if length > max_message:
        raise WireError(
            f"declared message length {length} exceeds the "
            f"{max_message}-byte limit",
            offset=0,
            category=CATEGORY_BUDGET,
            fatal=True,
        )
    if length < FRAME_OVERHEAD:
        raise WireError(
            f"declared message length {length} is shorter than a frame "
            f"({FRAME_OVERHEAD} bytes)",
            offset=0,
            fatal=True,
        )
    try:
        frame = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise WireError(
            f"connection closed {len(error.partial)} bytes into a "
            f"{length}-byte message",
            offset=len(error.partial),
            category=CATEGORY_TRUNCATED,
            fatal=True,
        ) from error
    try:
        return unwrap_frame(frame)
    except CorruptedStreamError as error:
        raise WireError(
            f"bad message frame: {error}",
            offset=error.offset,
            category=error.category,
            fatal=True,
        ) from error


__all__ = [
    "DEFAULT_MAX_MESSAGE",
    "DEFAULT_PORT",
    "FLAG_DEADLINE",
    "FLAG_TRACED",
    "OPS",
    "OP_COMPRESS",
    "OP_DECOMPRESS",
    "OP_DUMP",
    "OP_HEALTH",
    "OP_NAMES",
    "OP_STATS",
    "Request",
    "Response",
    "STATUS_BUSY",
    "STATUS_DEADLINE",
    "STATUS_ERROR",
    "STATUS_NAMES",
    "STATUS_OK",
    "WireError",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "error_response",
    "pack_message",
    "read_message",
]
