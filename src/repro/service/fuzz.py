"""Protocol fuzzing: seeded malformed requests against a live daemon.

``python -m repro fuzz --target service`` drives this module.  Where
the decoder fuzzer (:mod:`repro.resilience.fuzz`) corrupts *archives*
and asserts the decode contract, this one corrupts *wire messages* and
asserts the service contract:

    every connection that sends bytes — any bytes — receives at least
    one structured reply, within the time budget, and a malformed
    request is never answered with success, a hang, a silent
    disconnect, or an ``internal`` error (the signature of a leaked
    server-side exception).

Each iteration opens a fresh connection, sends one seeded mutation from
the case table (garbage streams, truncated and oversized messages, CRC
damage, schema violations, codec-level invalid inputs, corrupted
archives), half-closes, and reads whatever comes back.  Valid probes
are interleaved so a server that "passes" by rejecting everything
fails on them.  All randomness comes from one ``random.Random(seed)``:
a failure reproduces from its seed and iteration number.
"""

from __future__ import annotations

import random
import socket
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.clock import perf_seconds
from repro.resilience.errors import CorruptedStreamError
from repro.service import protocol
from repro.service.client import recv_response
from repro.service.protocol import (
    OP_COMPRESS,
    OP_DECOMPRESS,
    Request,
    STATUS_OK,
    encode_request,
    pack_message,
)

#: Per-iteration reply budget (seconds); slower means "hang".
DEFAULT_TIME_BUDGET = 5.0

#: Outcome a fuzz case expects from the server.
EXPECT_ERROR = "error"   # >= 1 structured non-OK reply
EXPECT_OK = "ok"         # exactly a successful reply


@dataclass
class ServiceFuzzReport:
    """Outcome counters for one protocol fuzz run."""

    seed: int
    iterations: int = 0
    #: Structured error replies, by wire category.
    rejected: Dict[str, int] = field(default_factory=dict)
    ok_probes: int = 0
    hangs: int = 0
    max_reply_seconds: float = 0.0
    failures: List[str] = field(default_factory=list)
    #: Path the server's flight-recorder dump was written to on failure.
    flight_dump: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures and self.hangs == 0

    @property
    def failure_count(self) -> int:
        return len(self.failures) + self.hangs

    def record_rejection(self, category: str) -> None:
        self.rejected[category] = self.rejected.get(category, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": "service",
            "seed": self.seed,
            "iterations": self.iterations,
            "rejected": dict(sorted(self.rejected.items())),
            "ok_probes": self.ok_probes,
            "hangs": self.hangs,
            "max_reply_ms": round(self.max_reply_seconds * 1000, 1),
            "failures": list(self.failures),
            "flight_dump": self.flight_dump,
            "ok": self.ok,
        }

    def format_lines(self) -> List[str]:
        breakdown = ", ".join(
            f"{category}={count}"
            for category, count in sorted(self.rejected.items())
        )
        lines = [
            f"service fuzz: seed {self.seed}, "
            f"{self.iterations} iterations",
            f"  rejected:  {sum(self.rejected.values())}"
            + (f" ({breakdown})" if breakdown else ""),
            f"  ok probes: {self.ok_probes}",
            f"  hangs:     {self.hangs} "
            f"(max reply {self.max_reply_seconds * 1000:.1f} ms)",
        ]
        for failure in self.failures:
            lines.append(f"  FAILURE: {failure}")
        if self.flight_dump:
            lines.append(f"  flight-recorder dump: {self.flight_dump}")
        return lines


# -- the case table ----------------------------------------------------------

def _valid_request(rng: random.Random) -> bytes:
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 96)))
    return pack_message(encode_request(Request(
        op=OP_COMPRESS,
        request_id=rng.randrange(1, 1 << 31),
        codec="gzipish",
        payload=payload,
    )))


def _case_garbage(rng: random.Random) -> bytes:
    return bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))


def _case_truncated(rng: random.Random) -> bytes:
    message = _valid_request(rng)
    return message[: rng.randrange(4, len(message))]


def _case_bad_crc(rng: random.Random) -> bytes:
    message = bytearray(_valid_request(rng))
    # Flip one bit inside the frame (never the length prefix), so the
    # reader collects the full message and the CRC must catch it.
    index = rng.randrange(4, len(message))
    message[index] ^= 1 << rng.randrange(8)
    return bytes(message)


def _case_oversized(rng: random.Random) -> bytes:
    length = protocol.DEFAULT_MAX_MESSAGE + rng.randrange(1, 1 << 20)
    return protocol._LENGTH.pack(length) + b"\x00" * 32


def _case_unknown_op(rng: random.Random) -> bytes:
    body = bytearray(encode_request(Request(
        op=OP_COMPRESS, request_id=rng.randrange(1, 1 << 31),
        codec="gzipish", payload=b"x",
    )))
    # 0x80 is the trace flag: 0x80 alone claims "traced op 0" and 255
    # "traced op 127" — both must be rejected as unknown ops, not
    # tripped over while parsing the trace header.
    body[0] = rng.choice((0, 9, 77, 128, 255))
    return pack_message(bytes(body))


def _case_unknown_codec(rng: random.Random) -> bytes:
    return pack_message(encode_request(Request(
        op=OP_COMPRESS, request_id=rng.randrange(1, 1 << 31),
        codec=f"no-such-codec-{rng.randrange(100)}", payload=b"x",
    )))


def _case_length_mismatch(rng: random.Random) -> bytes:
    body = bytearray(encode_request(Request(
        op=OP_COMPRESS, request_id=rng.randrange(1, 1 << 31),
        codec="gzipish", payload=b"abcdef",
    )))
    # Corrupt the declared payload length (last 4+6 bytes are len+payload).
    body[-7] ^= 0x55
    return pack_message(bytes(body))


def _case_invalid_compress(rng: random.Random) -> bytes:
    # samc-mips requires word-aligned input; 3 bytes cannot be.
    return pack_message(encode_request(Request(
        op=OP_COMPRESS, request_id=rng.randrange(1, 1 << 31),
        codec="samc-mips", payload=b"\x01\x02\x03",
    )))


def _case_corrupt_archive(rng: random.Random) -> bytes:
    # A truncated RCC1 archive: the deserialiser must reject it and the
    # rejection must come back as a structured reply.
    return pack_message(encode_request(Request(
        op=OP_DECOMPRESS, request_id=rng.randrange(1, 1 << 31),
        codec="samc-bytes",
        payload=b"RCC1" + bytes(rng.randrange(256) for _ in range(9)),
    )))


def _case_empty_message(rng: random.Random) -> bytes:
    # Declared length below the minimum frame size.
    return protocol._LENGTH.pack(rng.randrange(0, 14)) + b"\x00" * 13


def _case_traced_probe(rng: random.Random) -> bytes:
    # A valid traced request with an adversarial trace id (zero, the
    # u64 extremes, or random garbage): any u64 is a legal id, so the
    # server must accept, execute, and echo it — never choke on the
    # extra header.  (The byte-for-byte echo is asserted by the
    # regression tests; here the contract is "traced == still OK".)
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 96)))
    return pack_message(encode_request(Request(
        op=OP_COMPRESS,
        request_id=rng.randrange(1, 1 << 31),
        codec="gzipish",
        payload=payload,
        traced=True,
        trace_id=rng.choice((
            0, 1, (1 << 64) - 1, rng.getrandbits(64),
        )),
    )))


def _case_trace_flag_on_malformed(rng: random.Random) -> bytes:
    # Set the trace flag on a frame encoded *untraced*: the parser now
    # reads the codec length and payload length from what used to be
    # codec/payload bytes — a schema violation it must reject
    # structurally, not by hanging or leaking an exception.
    body = bytearray(encode_request(Request(
        op=rng.choice((OP_COMPRESS, OP_DECOMPRESS)),
        request_id=rng.randrange(1, 1 << 31),
        codec="gzipish",
        payload=bytes(rng.randrange(256) for _ in range(rng.randrange(32))),
    )))
    body[0] |= protocol.FLAG_TRACED
    return pack_message(bytes(body))


def _case_traced_truncated(rng: random.Random) -> bytes:
    # A traced header that stops mid-trace-id: shorter than the 14-byte
    # minimum a traced request needs.
    stub = bytes([OP_COMPRESS | protocol.FLAG_TRACED]) + bytes(
        rng.randrange(256) for _ in range(rng.randrange(0, 13))
    )
    return pack_message(stub)


def _case_deadline_probe(rng: random.Random) -> bytes:
    # A valid request stamped with a generous deadline (seconds of
    # budget), sometimes traced as well: the extra header field must be
    # parsed, honoured, and never break execution.
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(16, 96)))
    traced = rng.random() < 0.5
    return pack_message(encode_request(Request(
        op=OP_COMPRESS,
        request_id=rng.randrange(1, 1 << 31),
        codec="gzipish",
        payload=payload,
        traced=traced,
        trace_id=rng.getrandbits(64) if traced else 0,
        deadline_us=rng.choice((
            10_000_000, 60_000_000, 0xFFFFFFFF,
        )),
    )))


def _case_deadline_expired(rng: random.Random) -> bytes:
    # A zero-microsecond budget is lapsed by the time the dispatcher
    # drains the queue: the server must shed it with the typed
    # ``deadline`` status — a structured rejection, never dead codec
    # work, never an internal error.
    return pack_message(encode_request(Request(
        op=OP_COMPRESS,
        request_id=rng.randrange(1, 1 << 31),
        codec="gzipish",
        payload=bytes(rng.randrange(256) for _ in range(32)),
        deadline_us=0,
    )))


def _case_deadline_flag_on_malformed(rng: random.Random) -> bytes:
    # Set the deadline flag on a frame encoded *without* the deadline
    # field: the parser reads what used to be request-id/codec bytes as
    # the deadline header and must reject the leftover schema
    # structurally.
    body = bytearray(encode_request(Request(
        op=rng.choice((OP_COMPRESS, OP_DECOMPRESS)),
        request_id=rng.randrange(1, 1 << 31),
        codec="gzipish",
        payload=bytes(rng.randrange(256) for _ in range(rng.randrange(32))),
    )))
    body[0] |= protocol.FLAG_DEADLINE
    return pack_message(bytes(body))


def _case_deadline_truncated(rng: random.Random) -> bytes:
    # A deadline-stamped header that stops mid-field: shorter than the
    # 10-byte minimum a deadline-stamped request needs.
    stub = bytes([OP_COMPRESS | protocol.FLAG_DEADLINE]) + bytes(
        rng.randrange(256) for _ in range(rng.randrange(0, 9))
    )
    return pack_message(stub)


CASES: List[Tuple[str, Callable[[random.Random], bytes], str]] = [
    ("garbage", _case_garbage, EXPECT_ERROR),
    ("truncated", _case_truncated, EXPECT_ERROR),
    ("bad-crc", _case_bad_crc, EXPECT_ERROR),
    ("oversized", _case_oversized, EXPECT_ERROR),
    ("short-length", _case_empty_message, EXPECT_ERROR),
    ("unknown-op", _case_unknown_op, EXPECT_ERROR),
    ("unknown-codec", _case_unknown_codec, EXPECT_ERROR),
    ("length-mismatch", _case_length_mismatch, EXPECT_ERROR),
    ("invalid-compress", _case_invalid_compress, EXPECT_ERROR),
    ("corrupt-archive", _case_corrupt_archive, EXPECT_ERROR),
    ("trace-flag-malformed", _case_trace_flag_on_malformed, EXPECT_ERROR),
    ("traced-truncated", _case_traced_truncated, EXPECT_ERROR),
    ("deadline-expired", _case_deadline_expired, EXPECT_ERROR),
    ("deadline-flag-malformed", _case_deadline_flag_on_malformed,
     EXPECT_ERROR),
    ("deadline-truncated", _case_deadline_truncated, EXPECT_ERROR),
    ("valid-probe", _valid_request, EXPECT_OK),
    ("traced-probe", _case_traced_probe, EXPECT_OK),
    ("deadline-probe", _case_deadline_probe, EXPECT_OK),
]


# -- the driver --------------------------------------------------------------

def _one_iteration(
    address: Tuple[str, int],
    label: str,
    data: bytes,
    expect: str,
    budget: float,
    report: ServiceFuzzReport,
) -> None:
    started = perf_seconds()
    try:
        sock = socket.create_connection(address, timeout=budget)
    except OSError as error:
        report.failures.append(f"{label}: cannot connect: {error}")
        return
    try:
        sock.sendall(data)
        # Half-close: the server sees EOF where the bytes stop, which is
        # what forces a truncated-message verdict instead of a wait.
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        try:
            response = recv_response(sock)
        except socket.timeout:
            report.hangs += 1
            report.failures.append(
                f"{label}: no reply within {budget:.1f}s (hang)"
            )
            return
        except CorruptedStreamError as error:
            report.failures.append(
                f"{label}: connection closed without a reply ({error})"
            )
            return
        elapsed = perf_seconds() - started
        report.max_reply_seconds = max(report.max_reply_seconds, elapsed)
        if elapsed > budget:
            report.hangs += 1
            report.failures.append(
                f"{label}: reply took {elapsed:.2f}s (budget {budget:.2f}s)"
            )
        if expect == EXPECT_OK:
            if response.status == STATUS_OK:
                report.ok_probes += 1
            else:
                report.failures.append(
                    f"{label}: valid request rejected "
                    f"[{response.category}] {response.message}"
                )
            return
        if response.status == STATUS_OK:
            report.failures.append(
                f"{label}: malformed request answered with success"
            )
        elif response.category == "internal":
            report.failures.append(
                f"{label}: leaked server exception: {response.message}"
            )
        else:
            report.record_rejection(response.category or "uncategorised")
    finally:
        try:
            sock.close()
        except OSError:
            pass


def fetch_flight_dump(
    address: Tuple[str, int], path: str, timeout: float = 10.0
) -> bool:
    """Pull the daemon's flight-recorder ring (DUMP op) to ``path``.

    The post-mortem hook: when a fuzz run fails, the last ~thousand
    request-lifecycle events the server saw — including the wire errors
    the failing case provoked — land next to the failure report.
    Best-effort; a daemon that cannot even answer DUMP is itself the
    finding.
    """
    from repro.service.client import ServiceClient

    try:
        with ServiceClient(address[0], address[1], timeout=timeout) as cli:
            dump = cli.dump()
    except (OSError, CorruptedStreamError, RuntimeError, ValueError):
        return False
    with open(path, "wb") as handle:
        handle.write(dump)
    return True


def run_service_fuzz(
    seed: int,
    iters: int,
    host: Optional[str] = None,
    port: Optional[int] = None,
    time_budget: float = DEFAULT_TIME_BUDGET,
    dump_path: Optional[str] = None,
) -> ServiceFuzzReport:
    """Fuzz a daemon; spins up an in-process one when no address given.

    With ``dump_path`` set, a failing run fetches the server's flight
    recorder via the DUMP op and writes the JSONL there (CI uploads it
    as the failure artifact).
    """
    rng = random.Random(seed)
    report = ServiceFuzzReport(seed=seed)
    server = None
    if host is None:
        from repro.service.server import ServerThread, ServiceConfig

        server = ServerThread(ServiceConfig(port=0, queue_size=64))
        address = server.start()
    else:
        address = (host, port if port is not None else protocol.DEFAULT_PORT)
    try:
        for iteration in range(iters):
            report.iterations += 1
            name, case, expect = CASES[rng.randrange(len(CASES))]
            data = case(rng)
            label = f"iter {iteration} {name}"
            _one_iteration(
                address, label, data, expect, time_budget, report
            )
        if dump_path and not report.ok:
            if fetch_flight_dump(address, dump_path):
                report.flight_dump = dump_path
    finally:
        if server is not None:
            server.stop()
    return report


__all__ = [
    "CASES",
    "DEFAULT_TIME_BUDGET",
    "ServiceFuzzReport",
    "fetch_flight_dump",
    "run_service_fuzz",
]
