"""Client-side failure policy: retries, taxonomy, circuit breaking.

Three small, composable pieces shared by every service client path
(the blocking client's ``wait_for_service`` probe loop, the load
generator's workers, and the soak driver):

* :class:`RetryPolicy` — seeded, deterministic exponential backoff
  with bounded jitter.  Two policies built from the same seed yield the
  same delay sequence, so a retried run replays exactly — the same
  determinism contract every other seeded component in the repo keeps.
* :func:`classify_failure` — the retryable-vs-fatal taxonomy over the
  exceptions a request can raise.  Transport faults (resets, timeouts,
  truncated or desynchronised streams) and explicit shed replies
  (``busy``, ``deadline``) are *retryable*: the failure says nothing
  about the request itself.  Structured ``error`` replies are *fatal*:
  the server executed the request and rejected it, so an identical
  retry earns an identical rejection.
* :class:`CircuitBreaker` — consecutive transport failures trip the
  breaker open; while open, calls are refused locally (a typed
  ``breaker-open`` outcome, not a connection attempt) until the
  recovery window lapses, then a limited number of half-open probes
  decide between closing it again and re-opening.  This is what keeps
  a retrying client from hammering a dead or draining server with
  connect storms.

Nothing here sleeps or connects on its own: the policy yields delays,
the breaker answers ``allow()``, and the caller owns the loop — so the
pieces work identically under asyncio and blocking sockets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.obs.clock import perf_seconds
from repro.resilience.errors import CorruptedStreamError

#: :func:`classify_failure` verdicts.
RETRYABLE = "retryable"
FATAL = "fatal"

#: Breaker states.
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff: ``base * multiplier**n``, jittered.

    ``max_attempts`` counts *total* tries including the first
    (``None`` = unbounded, for time-capped loops like
    ``wait_for_service``).  ``jitter`` is the +/- fraction applied to
    each delay; the jitter stream comes from ``random.Random(seed)``,
    so the full delay sequence is a pure function of the policy.
    """

    max_attempts: Optional[int] = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def delays(self) -> Iterator[float]:
        """The backoff delays *between* attempts, in order.

        Yields ``max_attempts - 1`` values (unbounded when
        ``max_attempts`` is ``None``): a policy of N attempts sleeps
        N-1 times.
        """
        rng = random.Random(self.seed)
        attempt = 0
        while self.max_attempts is None or attempt < self.max_attempts - 1:
            base = min(
                self.max_delay, self.base_delay * self.multiplier ** attempt
            )
            yield base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
            attempt += 1


def classify_failure(error: BaseException) -> str:
    """``RETRYABLE`` or ``FATAL`` for one request failure.

    Retryable: the transport broke (reset, timeout, truncated or
    corrupted reply stream) or the server shed the request without
    executing it (``busy`` backpressure, a lapsed ``deadline``).
    Fatal: the server executed the request and returned a structured
    ``error`` — retrying the same bytes reproduces the same rejection —
    or the failure is a local programming error.
    """
    # Late import: client.py imports this module.
    from repro.service.client import ServiceError
    from repro.service.protocol import STATUS_BUSY, STATUS_DEADLINE

    if isinstance(error, ServiceError):
        if error.status in (STATUS_BUSY, STATUS_DEADLINE):
            return RETRYABLE
        return FATAL
    if isinstance(error, (CorruptedStreamError, ConnectionError, OSError,
                          TimeoutError)):
        # WireError subclasses CorruptedStreamError; socket.timeout and
        # asyncio.TimeoutError both subclass (or alias) TimeoutError on
        # the supported interpreters.
        return RETRYABLE
    return FATAL


class CircuitBreaker:
    """Trip after N consecutive transport failures; probe to recover.

    State machine (all transitions happen inside ``allow()`` /
    ``record_*``, driven by the injected ``clock`` so tests control
    time):

    * ``closed`` — calls flow; ``failure_threshold`` consecutive
      recorded failures open the breaker.
    * ``open`` — ``allow()`` is ``False`` until ``recovery_time``
      seconds pass, then the breaker goes half-open.
    * ``half-open`` — up to ``half_open_probes`` calls are allowed
      through; one success closes the breaker, one failure re-opens it
      (restarting the recovery clock).

    Single-threaded by design: the asyncio loadgen loop and the
    blocking probe loop each own their breaker.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = perf_seconds,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_time < 0:
            raise ValueError("recovery_time must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self._clock = clock
        self.state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        #: Lifetime transition counters (for reports).
        self.opened = 0
        self.reclosed = 0

    def allow(self) -> bool:
        """May the caller attempt a request now?"""
        if self.state == STATE_OPEN:
            if self._clock() - self._opened_at >= self.recovery_time:
                self.state = STATE_HALF_OPEN
                self._probes_inflight = 0
            else:
                return False
        if self.state == STATE_HALF_OPEN:
            if self._probes_inflight >= self.half_open_probes:
                return False
            self._probes_inflight += 1
        return True

    def record_success(self) -> None:
        """The attempt reached the server and got a healthy reply."""
        if self.state == STATE_HALF_OPEN:
            self.reclosed += 1
        self.state = STATE_CLOSED
        self._consecutive_failures = 0
        self._probes_inflight = 0

    def record_failure(self) -> None:
        """The attempt failed at the transport layer."""
        if self.state == STATE_HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self.opened += 1
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_inflight = 0


__all__ = [
    "CircuitBreaker",
    "FATAL",
    "RETRYABLE",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "classify_failure",
]
