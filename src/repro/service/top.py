"""``python -m repro top`` — a live text dashboard for a running daemon.

Polls the service's ``stats`` op on an interval and renders one screen
per sample: request rate (derived from counter deltas between polls),
queue depth and in-flight count, batch group sizes, per-op latency
percentiles, registry hit rate, and the error split.  Everything the
operator of a saturating daemon reaches for first, without attaching a
debugger or restarting with more logging.

The module splits cleanly for testing: :func:`sample_rates` turns two
stats documents plus the elapsed interval into per-second rates, and
:func:`render_dashboard` turns one stats document (plus optional rates)
into the screen's lines.  The interactive loop (:func:`run_top`) is a
thin driver over those two pure functions — ``--iterations`` bounds it
so tests and scripts can run it headlessly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.service.client import ServiceClient

#: Counters whose deltas the dashboard turns into per-second rates.
RATE_COUNTERS = (
    "service.requests.compress",
    "service.requests.decompress",
    "service.requests.health",
    "service.requests.stats",
    "service.replies.ok",
    "service.replies.busy",
    "service.replies.error",
    "service.bytes_in",
    "service.bytes_out",
)


def sample_rates(
    previous: Optional[Dict[str, object]],
    current: Dict[str, object],
    elapsed: float,
) -> Dict[str, float]:
    """Per-second rates from two consecutive stats documents.

    The first sample has no predecessor, so every rate starts at zero
    rather than misreporting the daemon's lifetime totals as a burst.
    """
    if previous is None or elapsed <= 0:
        return {name: 0.0 for name in RATE_COUNTERS}
    old = previous.get("counters") or {}
    new = current.get("counters") or {}
    return {
        name: max(0, new.get(name, 0) - old.get(name, 0)) / elapsed
        for name in RATE_COUNTERS
    }


def _latency_row(op_name: str, cell: Dict[str, object]) -> str:
    flag = " (saturated)" if cell.get("saturated") else ""
    return (
        f"  {op_name:<12} n={cell['count']:<8} "
        f"p50 {cell['p50'] / 1000:>8.2f}ms  "
        f"p95 {cell['p95'] / 1000:>8.2f}ms  "
        f"p99 {cell['p99'] / 1000:>8.2f}ms{flag}"
    )


def render_dashboard(
    doc: Dict[str, object],
    rates: Optional[Dict[str, float]] = None,
) -> List[str]:
    """One dashboard frame from a ``stats`` document (pure; testable)."""
    counters = doc.get("counters") or {}
    queue = doc.get("queue") or {}
    registry = doc.get("registry") or {}
    rates = rates or {}

    request_rate = sum(
        rates.get(f"service.requests.{op}", 0.0)
        for op in ("compress", "decompress", "health", "stats")
    )
    ok = counters.get("service.replies.ok", 0)
    busy = counters.get("service.replies.busy", 0)
    errors = counters.get("service.replies.error", 0)
    hits = registry.get("hits", 0)
    trained = registry.get("trained", 0)
    lookups = hits + trained
    hit_rate = (100.0 * hits / lookups) if lookups else 0.0

    lines = [
        f"repro service — up {doc.get('uptime_seconds', 0):.0f}s, "
        f"stats schema v{doc.get('schema_version', '?')}",
        f"  rps {request_rate:>8.1f}   "
        f"in {rates.get('service.bytes_in', 0.0) / 1024:>8.1f} KiB/s   "
        f"out {rates.get('service.bytes_out', 0.0) / 1024:>8.1f} KiB/s",
        f"  queue {queue.get('depth', 0)}/{queue.get('capacity', 0)} "
        f"(high-water {queue.get('depth_highwater', 0)})   "
        f"in-flight {queue.get('inflight', 0)}",
        f"  replies: {ok} ok / {busy} busy / {errors} error   "
        f"wire errors {counters.get('service.wire_errors', 0)}, "
        f"bad requests {counters.get('service.bad_requests', 0)}, "
        f"internal {counters.get('service.internal_errors', 0)}",
    ]
    batch = doc.get("batch")
    if batch:
        lines.append(
            f"  batch: mean {batch.get('mean', 0):.0f} "
            f"p99 {batch.get('p99', 0)} over {batch.get('count', 0)} "
            f"dispatches ("
            f"{counters.get('service.batch_grouped', 0)} grouped / "
            f"{counters.get('service.batch_singleton', 0)} singleton)"
        )
    lines.append(
        f"  registry: {registry.get('entries', 0)}/"
        f"{registry.get('max_entries', 0)} models, "
        f"{hit_rate:.1f}% hit rate "
        f"({hits} hits / {trained} trained / "
        f"{registry.get('evictions', 0)} evicted)"
    )
    latency = doc.get("latency_us") or {}
    if latency:
        lines.append("  latency:")
        for op_name in sorted(latency):
            lines.append(_latency_row(op_name, latency[op_name]))
    return lines


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    clear_screen: bool = True,
    write=print,
) -> int:
    """Poll-and-render loop; returns 0, or 1 if the daemon went away.

    ``iterations=None`` runs until interrupted (the interactive mode);
    a bounded count makes the loop scriptable.  ``write`` is injectable
    so tests capture frames instead of a terminal.
    """
    from repro.obs.clock import perf_seconds

    previous: Optional[Dict[str, object]] = None
    previous_at = 0.0
    count = 0
    while iterations is None or count < iterations:
        try:
            with ServiceClient(host, port, timeout=10.0) as client:
                doc = client.stats()
        except (OSError, RuntimeError, ValueError) as error:
            write(f"repro top: stats poll failed: {error}")
            return 1
        now = perf_seconds()
        rates = sample_rates(previous, doc, now - previous_at)
        if clear_screen:
            write("\x1b[2J\x1b[H")
        for line in render_dashboard(doc, rates):
            write(line)
        previous, previous_at = doc, now
        count += 1
        if iterations is None or count < iterations:
            time.sleep(interval)
    return 0


__all__ = [
    "RATE_COUNTERS",
    "render_dashboard",
    "run_top",
    "sample_rates",
]
