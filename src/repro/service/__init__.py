"""Compression-as-a-service: async daemon, clients, loadgen, fuzzing.

The service layer turns the repo's codecs into a long-lived daemon
(``python -m repro serve``) speaking a length-prefixed, RF01-framed
binary protocol, with a warm SAMC model registry so the semiadaptive
training pass is amortised across requests.  Companions: a blocking and
an asyncio client, a paced mixed-workload load generator
(``python -m repro loadgen``), a wire-protocol fuzzer
(``python -m repro fuzz --target service``), and the failure-semantics
layer: seeded retry/backoff policies with a circuit breaker
(:mod:`repro.service.retry`), a seeded TCP fault proxy
(:mod:`repro.service.chaos`), and the chaos soak driver
(``python -m repro soak``).
"""

from repro.service.chaos import ChaosProxy, FaultPlan
from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    wait_for_service,
)
from repro.service.codecs import ServiceCodec, build_codecs
from repro.service.fuzz import ServiceFuzzReport, run_service_fuzz
from repro.service.loadgen import (
    LoadgenReport,
    build_workload,
    find_saturation,
    run_loadgen,
    run_loadgen_async,
)
from repro.service.protocol import (
    DEFAULT_MAX_MESSAGE,
    DEFAULT_PORT,
    OP_COMPRESS,
    OP_DECOMPRESS,
    OP_HEALTH,
    OP_STATS,
    Request,
    Response,
    STATUS_BUSY,
    STATUS_DEADLINE,
    STATUS_ERROR,
    STATUS_OK,
    WireError,
)
from repro.service.registry import WarmModelRegistry
from repro.service.retry import (
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
)
from repro.service.server import CodecService, ServerThread, ServiceConfig
from repro.service.soak import SoakReport, run_soak

__all__ = [
    "AsyncServiceClient",
    "ChaosProxy",
    "CircuitBreaker",
    "CodecService",
    "DEFAULT_MAX_MESSAGE",
    "DEFAULT_PORT",
    "FaultPlan",
    "LoadgenReport",
    "OP_COMPRESS",
    "OP_DECOMPRESS",
    "OP_HEALTH",
    "OP_STATS",
    "Request",
    "Response",
    "RetryPolicy",
    "STATUS_BUSY",
    "STATUS_DEADLINE",
    "STATUS_ERROR",
    "STATUS_OK",
    "ServerThread",
    "ServiceClient",
    "ServiceCodec",
    "ServiceConfig",
    "ServiceError",
    "ServiceFuzzReport",
    "SoakReport",
    "WarmModelRegistry",
    "WireError",
    "build_codecs",
    "build_workload",
    "classify_failure",
    "find_saturation",
    "run_loadgen",
    "run_loadgen_async",
    "run_service_fuzz",
    "run_soak",
    "wait_for_service",
]
