"""Service codec adapters: one compress/decompress pair per wire name.

The wire schema is codec-agnostic — a request names its codec with a
string — and this module is the registry that resolves those names.
Image codecs (SAMC, SADC, byte-Huffman) ship their output through the
on-ROM archive format (:mod:`repro.core.serialize`), so a service
response is exactly the bytes an embedded build would burn; SAMC
variants route their training pass through the
:class:`~repro.service.registry.WarmModelRegistry` so the two-pass cost
is paid once per distinct input, not once per request.  The stream
baselines (LZW, gzipish) pass through their native formats.

Archives travel *unframed* inside the wire message: the RF01 container
around every message already carries a CRC over the whole payload, and
double-framing would just double the integrity overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.service.registry import WarmModelRegistry


@dataclass(frozen=True)
class ServiceCodec:
    """One resolvable wire codec."""

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


def build_codecs(registry: WarmModelRegistry) -> Dict[str, ServiceCodec]:
    """The full wire-name → adapter map served by the daemon."""
    from repro.baselines.byte_huffman import ByteHuffmanCodec
    from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
    from repro.baselines.lzw import lzw_compress, lzw_decompress
    from repro.core import decompress_image
    from repro.core.sadc import MipsSadcCodec, X86SadcCodec
    from repro.core.samc import SamcCodec
    from repro.core.serialize import deserialize_image, serialize_image

    def archive_decompress(data: bytes) -> bytes:
        return decompress_image(deserialize_image(data))

    def warm_samc(name: str, codec: SamcCodec) -> Callable[[bytes], bytes]:
        def compress(data: bytes) -> bytes:
            model = registry.model_for(name, codec, data)
            image = codec.compress_with_model(data, model)
            return serialize_image(image, framed=False)

        return compress

    def image_compress(codec) -> Callable[[bytes], bytes]:
        def compress(data: bytes) -> bytes:
            return serialize_image(codec.compress(data), framed=False)

        return compress

    samc_mips = SamcCodec.for_mips()
    samc_bytes = SamcCodec.for_bytes()
    codecs = [
        ServiceCodec("samc-mips", warm_samc("samc-mips", samc_mips),
                     archive_decompress),
        ServiceCodec("samc-bytes", warm_samc("samc-bytes", samc_bytes),
                     archive_decompress),
        ServiceCodec("sadc-mips", image_compress(MipsSadcCodec()),
                     archive_decompress),
        ServiceCodec("sadc-x86", image_compress(X86SadcCodec()),
                     archive_decompress),
        ServiceCodec("byte-huffman", image_compress(ByteHuffmanCodec()),
                     archive_decompress),
        ServiceCodec("lzw", lzw_compress, lzw_decompress),
        ServiceCodec("gzipish", gzipish_compress, gzipish_decompress),
    ]
    return {codec.name: codec for codec in codecs}


__all__ = ["ServiceCodec", "build_codecs"]
