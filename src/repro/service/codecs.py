"""Service codec adapters: one compress/decompress pair per wire name.

The wire schema is codec-agnostic — a request names its codec with a
string — and this module is the registry that resolves those names.
Image codecs (SAMC, SADC, byte-Huffman) ship their output through the
on-ROM archive format (:mod:`repro.core.serialize`), so a service
response is exactly the bytes an embedded build would burn; SAMC
variants route their training pass through the
:class:`~repro.service.registry.WarmModelRegistry` so the two-pass cost
is paid once per distinct input, not once per request.  The stream
baselines (LZW, gzipish) pass through their native formats.

Archives travel *unframed* inside the wire message: the RF01 container
around every message already carries a CRC over the whole payload, and
double-framing would just double the integrity overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.service.registry import WarmModelRegistry

BatchFn = Callable[[List[bytes]], List[bytes]]


@dataclass(frozen=True)
class ServiceCodec:
    """One resolvable wire codec.

    ``compress_batch`` / ``decompress_batch`` take a list of payloads
    and return the per-payload results in order — semantically identical
    to mapping the scalar callable, which is what the dispatcher falls
    back to when a batch callable is ``None``.  The dispatcher groups
    requests by payload digest, so a batch call typically receives
    *identical* payloads; every adapter here dedups internally and does
    the codec work once per distinct payload.
    """

    name: str
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]
    compress_batch: Optional[BatchFn] = None
    decompress_batch: Optional[BatchFn] = None


def _dedup_batch(fn: Callable[[bytes], bytes]) -> BatchFn:
    """Lift a scalar codec callable to a dedup-ing batch callable."""

    def run(payloads: List[bytes]) -> List[bytes]:
        cache: Dict[bytes, bytes] = {}
        out = []
        for payload in payloads:
            result = cache.get(payload)
            if result is None:
                result = fn(payload)
                cache[payload] = result
            out.append(result)
        return out

    return run


def build_codecs(registry: WarmModelRegistry) -> Dict[str, ServiceCodec]:
    """The full wire-name → adapter map served by the daemon."""
    from repro.baselines.byte_huffman import ByteHuffmanCodec
    from repro.baselines.gzipish import gzipish_compress, gzipish_decompress
    from repro.baselines.lzw import (
        lzw_compress,
        lzw_compress_blocks,
        lzw_decompress,
    )
    from repro.core import decompress_image
    from repro.core.sadc import MipsSadcCodec, X86SadcCodec
    from repro.core.samc import SamcCodec
    from repro.core.serialize import deserialize_image, serialize_image

    def archive_decompress(data: bytes) -> bytes:
        return decompress_image(deserialize_image(data))

    def warm_samc(name: str, codec: SamcCodec) -> Callable[[bytes], bytes]:
        def compress(data: bytes) -> bytes:
            model = registry.model_for(name, codec, data)
            image = codec.compress_with_model(data, model)
            return serialize_image(image, framed=False)

        return compress

    def image_compress(codec) -> Callable[[bytes], bytes]:
        def compress(data: bytes) -> bytes:
            return serialize_image(codec.compress(data), framed=False)

        return compress

    samc_mips = SamcCodec.for_mips()
    samc_bytes = SamcCodec.for_bytes()

    def batched(name, compress, decompress, compress_batch=None):
        # Archive decompression already runs the codec's own batch
        # entry point over all blocks of an image (the vectorised
        # kernel); across requests the win is dedup — one decode per
        # distinct archive in the group.
        return ServiceCodec(
            name, compress, decompress,
            compress_batch=compress_batch or _dedup_batch(compress),
            decompress_batch=_dedup_batch(decompress),
        )

    codecs = [
        batched("samc-mips", warm_samc("samc-mips", samc_mips),
                archive_decompress),
        batched("samc-bytes", warm_samc("samc-bytes", samc_bytes),
                archive_decompress),
        batched("sadc-mips", image_compress(MipsSadcCodec()),
                archive_decompress),
        batched("sadc-x86", image_compress(X86SadcCodec()),
                archive_decompress),
        batched("byte-huffman", image_compress(ByteHuffmanCodec()),
                archive_decompress),
        batched("lzw", lzw_compress, lzw_decompress,
                compress_batch=lzw_compress_blocks),
        batched("gzipish", gzipish_compress, gzipish_decompress),
    ]
    return {codec.name: codec for codec in codecs}


__all__ = ["ServiceCodec", "build_codecs"]
