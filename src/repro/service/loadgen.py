"""Mixed-workload load generator (``python -m repro loadgen``).

Replays a deterministic mixed workload — compress and decompress
requests across every wire codec, plus health probes — against a
running daemon at a target request rate, then reports what the service
actually sustained:

* **achieved RPS** vs the target (and whether the run saturated);
* **client-side latency percentiles** (p50/p95/p99/max, measured
  request-to-reply, exact — not histogram-bucketed);
* **error rate**, split into service errors (structured ``error``
  replies), ``busy`` rejections (backpressure doing its job), and
  protocol errors (anything that breaks the wire contract — the count
  that must be zero on a healthy daemon);
* with ``--sweep``, the **saturation point**: the rate is doubled until
  achieved throughput falls below the sustain threshold.

Resilience mode: passing a :class:`~repro.service.retry.RetryPolicy`
(plus, optionally, a shared :class:`~repro.service.retry.CircuitBreaker`
and a per-request ``request_deadline``) switches the workers onto the
typed-outcome taxonomy — every sent request lands in exactly one
bucket: ``ok``, ``retried_ok`` (succeeded after >= 1 retry), ``busy`` /
``deadline`` (typed sheds that survived the retry budget), ``breaker_open``
(refused locally, no wire attempt), ``connection_faults`` / ``timeouts``
(transport failures that exhausted retries), ``service_errors`` /
``internal_errors`` (structured rejections — fatal, never retried).
Without a policy the legacy single-attempt semantics are unchanged.

Pacing is open-loop per connection: each of ``connections`` asyncio
workers owns an equal slice of the target rate and schedules sends on a
fixed interval grid, so a slow reply delays that worker's next send but
the measured "achieved RPS" honestly reflects the service, not the
generator's politeness.  All workload choice is seeded — two runs with
the same seed replay the same request sequence.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.clock import perf_seconds
from repro.resilience.errors import CorruptedStreamError
from repro.service.client import AsyncServiceClient
from repro.service.protocol import (
    OP_COMPRESS,
    OP_DECOMPRESS,
    OP_HEALTH,
    OP_STATS,
    STATUS_BUSY,
    STATUS_DEADLINE,
    STATUS_OK,
)
from repro.service.retry import CircuitBreaker, RetryPolicy

#: Fraction of the target rate a run must sustain to count as
#: unsaturated.
SUSTAIN_THRESHOLD = 0.90

#: Per-request reply budget; a reply slower than this counts as a
#: protocol failure (the daemon's decode contract bans hangs).
REQUEST_TIMEOUT = 30.0


@dataclass(frozen=True)
class WorkUnit:
    """One replayable request template."""

    label: str
    op: int
    codec: str
    payload: bytes
    weight: int


def build_workload(seed: int = 0) -> List[WorkUnit]:
    """The standard deterministic mix: every codec, both directions.

    Payloads are small synthetic programs (hundreds of bytes to a few
    KB) so a single CPU can clear hundreds of requests per second;
    decompress units are pre-compressed here, once, and the SAMC
    compress units warm the model registry on first touch.
    """
    from repro.baselines.byte_huffman import ByteHuffmanCodec
    from repro.baselines.gzipish import gzipish_compress
    from repro.baselines.lzw import lzw_compress
    from repro.core.samc import SamcCodec
    from repro.core.serialize import serialize_image
    from repro.workloads.suite import generate_benchmark

    mips = generate_benchmark("compress", "mips", scale=0.3, seed=seed).code
    x86 = generate_benchmark("compress", "x86", scale=0.2, seed=seed).code
    tiny = mips[: 512 - (512 % 4)]

    samc_archive = serialize_image(
        SamcCodec.for_bytes().compress(tiny), framed=False
    )
    huffman_archive = serialize_image(
        ByteHuffmanCodec().compress(tiny), framed=False
    )
    units = [
        WorkUnit("gzipish-c", OP_COMPRESS, "gzipish", mips, 5),
        WorkUnit("gzipish-d", OP_DECOMPRESS, "gzipish",
                 gzipish_compress(mips), 5),
        WorkUnit("gzipish-c-x86", OP_COMPRESS, "gzipish", x86, 2),
        WorkUnit("lzw-c", OP_COMPRESS, "lzw", tiny, 2),
        WorkUnit("lzw-d", OP_DECOMPRESS, "lzw", lzw_compress(tiny), 2),
        WorkUnit("samc-bytes-c", OP_COMPRESS, "samc-bytes", tiny, 1),
        WorkUnit("samc-bytes-d", OP_DECOMPRESS, "samc-bytes",
                 samc_archive, 1),
        WorkUnit("byte-huffman-d", OP_DECOMPRESS, "byte-huffman",
                 huffman_archive, 1),
        WorkUnit("health", OP_HEALTH, "", b"", 1),
    ]
    return units


@dataclass
class LoadgenReport:
    """Everything one loadgen run measured."""

    target_rps: float
    duration: float
    connections: int
    seed: int
    sent: int = 0
    ok: int = 0
    busy: int = 0
    service_errors: int = 0
    protocol_errors: int = 0
    #: Resilience-mode buckets (stay zero on the legacy path).
    retried_ok: int = 0
    deadline_shed: int = 0
    breaker_open: int = 0
    connection_faults: int = 0
    timeouts: int = 0
    internal_errors: int = 0
    #: Retry *attempts* spent (informational, not an outcome bucket).
    retries: int = 0
    #: Breaker lifetime transitions, copied off the shared breaker.
    breaker_opened: int = 0
    breaker_reclosed: int = 0
    elapsed: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    error_samples: List[str] = field(default_factory=list)
    #: The daemon's ``stats`` document, fetched right after the run
    #: (``None`` if the fetch failed).  Source of the server-side batch
    #: picture: the achieved ``service.batch_size`` histogram and the
    #: grouped/singleton dispatch split.
    service_stats: Optional[Dict[str, object]] = None

    @property
    def achieved_rps(self) -> float:
        succeeded = self.ok + self.retried_ok
        return succeeded / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def error_rate(self) -> float:
        failed = (self.service_errors + self.internal_errors
                  + self.protocol_errors)
        return failed / self.sent if self.sent else 0.0

    @property
    def outcomes_total(self) -> int:
        """Sum over every outcome bucket.

        The accounting invariant the soak driver asserts: every sent
        request ends in exactly one typed outcome, so this must equal
        ``sent``.
        """
        return (self.ok + self.retried_ok + self.busy + self.deadline_shed
                + self.breaker_open + self.connection_faults + self.timeouts
                + self.service_errors + self.internal_errors
                + self.protocol_errors)

    @property
    def saturated(self) -> bool:
        return self.achieved_rps < SUSTAIN_THRESHOLD * self.target_rps

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]

    def to_dict(self) -> Dict[str, object]:
        return {
            "target_rps": self.target_rps,
            "achieved_rps": round(self.achieved_rps, 2),
            "duration_seconds": self.duration,
            "elapsed_seconds": round(self.elapsed, 3),
            "connections": self.connections,
            "seed": self.seed,
            "requests_sent": self.sent,
            "ok": self.ok,
            "retried_ok": self.retried_ok,
            "busy": self.busy,
            "deadline": self.deadline_shed,
            "breaker_open": self.breaker_open,
            "connection_faults": self.connection_faults,
            "timeouts": self.timeouts,
            "service_errors": self.service_errors,
            "internal_errors": self.internal_errors,
            "protocol_errors": self.protocol_errors,
            "retries": self.retries,
            "breaker": {
                "opened": self.breaker_opened,
                "reclosed": self.breaker_reclosed,
            },
            "error_rate": round(self.error_rate, 6),
            "saturated": self.saturated,
            "latency_ms": {
                "p50": round(self.percentile_ms(0.50), 3),
                "p95": round(self.percentile_ms(0.95), 3),
                "p99": round(self.percentile_ms(0.99), 3),
                "max": round(max(self.latencies_ms), 3)
                if self.latencies_ms else 0.0,
            },
            "batch": self.batch_summary(),
        }

    def batch_summary(self) -> Optional[Dict[str, object]]:
        """Server-side batching picture from the ``stats`` document."""
        if not self.service_stats:
            return None
        counters = self.service_stats.get("counters") or {}
        return {
            "batch_size": self.service_stats.get("batch"),
            "grouped_dispatches": counters.get("service.batch_grouped", 0),
            "singleton_dispatches": counters.get(
                "service.batch_singleton", 0
            ),
        }

    def format_lines(self) -> List[str]:
        from repro.cli_report import format_table

        doc = self.to_dict()
        latency = doc["latency_ms"]
        rows: Sequence[Sequence[object]] = [
            ("target rps", f"{self.target_rps:.0f}"),
            ("achieved rps", f"{self.achieved_rps:.1f}"),
            ("requests", f"{self.sent} sent / {self.ok} ok / "
                         f"{self.busy} busy"),
            ("errors", f"{self.service_errors} service / "
                       f"{self.protocol_errors} protocol "
                       f"({100 * self.error_rate:.2f}%)"),
        ]
        resilient = (self.retried_ok + self.deadline_shed
                     + self.breaker_open + self.connection_faults
                     + self.timeouts + self.internal_errors + self.retries)
        if resilient:
            rows = list(rows) + [
                ("retried ok", f"{self.retried_ok} "
                               f"({self.retries} retry attempts)"),
                ("shed", f"{self.busy} busy / "
                         f"{self.deadline_shed} deadline"),
                ("faults", f"{self.connection_faults} connection / "
                           f"{self.timeouts} timeout / "
                           f"{self.internal_errors} internal"),
                ("breaker", f"{self.breaker_open} refused "
                            f"(opened {self.breaker_opened}x, "
                            f"reclosed {self.breaker_reclosed}x)"),
            ]
        rows = list(rows) + [
            ("latency p50", f"{latency['p50']:.2f} ms"),
            ("latency p95", f"{latency['p95']:.2f} ms"),
            ("latency p99", f"{latency['p99']:.2f} ms"),
            ("latency max", f"{latency['max']:.2f} ms"),
            ("saturated", "yes" if self.saturated else "no"),
        ]
        batch = self.batch_summary()
        if batch is not None:
            rows = list(rows)
            size = batch["batch_size"] or {}
            if size:
                rows.append((
                    "batch size",
                    f"mean {size.get('mean', 0):.2f} / "
                    f"p50 {size.get('p50', 0):.0f} / "
                    f"p99 {size.get('p99', 0):.0f} "
                    f"({size.get('count', 0)} dispatches)",
                ))
            rows.append((
                "vector groups",
                f"{batch['grouped_dispatches']} grouped / "
                f"{batch['singleton_dispatches']} singleton",
            ))
        lines = [f"loadgen: {self.duration:.0f}s @ {self.target_rps:.0f} rps "
                 f"over {self.connections} connections (seed {self.seed})"]
        lines.extend(format_table(rows).splitlines())
        for sample in self.error_samples[:5]:
            lines.append(f"  error: {sample}")
        return lines


def slo_breaches(
    report: LoadgenReport,
    p99_ms: Optional[float] = None,
    max_error_rate: Optional[float] = None,
) -> List[str]:
    """Which SLOs this run breached (empty == the gate passes).

    The gate is what CI runs after a loadgen burst: a breach message per
    violated objective, human-readable and stable enough to grep.
    Protocol errors always breach — no error budget covers a broken
    wire contract.
    """
    breaches: List[str] = []
    if report.protocol_errors:
        breaches.append(
            f"protocol errors: {report.protocol_errors} (budget: 0)"
        )
    if p99_ms is not None:
        observed = report.percentile_ms(0.99)
        if observed > p99_ms:
            breaches.append(
                f"latency p99 {observed:.2f} ms > SLO {p99_ms:.2f} ms"
            )
    if max_error_rate is not None and report.error_rate > max_error_rate:
        breaches.append(
            f"error rate {report.error_rate:.4f} > "
            f"budget {max_error_rate:.4f}"
        )
    return breaches


def write_stats_json(report: LoadgenReport, path: str) -> None:
    """Write the run's machine-readable report (for CI artifacts)."""
    document = dict(report.to_dict())
    document["service_stats"] = report.service_stats
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _sample(report: LoadgenReport, message: str) -> None:
    if len(report.error_samples) < 16:
        report.error_samples.append(message)


async def _worker(
    host: str,
    port: int,
    units: Sequence[WorkUnit],
    weights: Sequence[int],
    rate: float,
    deadline: float,
    start_at: float,
    rng: random.Random,
    report: LoadgenReport,
    request_timeout: float = REQUEST_TIMEOUT,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    request_deadline: Optional[float] = None,
) -> None:
    """One paced connection worth of load.

    Without ``policy`` this is the legacy single-attempt path: any
    transport failure is a protocol error.  With a policy, transport
    failures and ``busy`` sheds are retried on the policy's seeded
    backoff schedule, the shared ``breaker`` refuses sends while open,
    and every request lands in exactly one typed outcome bucket.
    """
    client: Optional[AsyncServiceClient] = None
    interval = 1.0 / rate if rate > 0 else 0.0
    next_send = start_at
    while True:
        now = perf_seconds()
        if now >= deadline:
            break
        if next_send > now:
            await asyncio.sleep(next_send - now)
        next_send = max(next_send + interval, perf_seconds())
        unit = rng.choices(units, weights=weights)[0]
        report.sent += 1
        if breaker is not None and not breaker.allow():
            report.breaker_open += 1
            continue
        delays = policy.delays() if policy is not None else iter(())
        attempts = 0
        started = perf_seconds()
        while True:
            attempts += 1
            try:
                if client is None:
                    client = await AsyncServiceClient.connect(
                        host, port, timeout=request_timeout
                    )
                response = await client.request(
                    unit.op, unit.codec, unit.payload,
                    timeout=request_timeout,
                    deadline=request_deadline,
                )
            except (CorruptedStreamError, asyncio.TimeoutError,
                    ConnectionError, OSError) as error:
                if breaker is not None:
                    breaker.record_failure()
                if client is not None:
                    await client.close()
                    client = None
                if policy is None:
                    report.protocol_errors += 1
                    _sample(report, f"{unit.label}: "
                                    f"{type(error).__name__}: {error}")
                    break
                delay = next(delays, None)
                if delay is not None and (
                    breaker is None or breaker.allow()
                ):
                    report.retries += 1
                    await asyncio.sleep(delay)
                    continue
                if isinstance(error, asyncio.TimeoutError):
                    report.timeouts += 1
                else:
                    report.connection_faults += 1
                _sample(report, f"{unit.label}: "
                                f"{type(error).__name__}: {error}")
                break
            if breaker is not None:
                breaker.record_success()
            if response.status == STATUS_BUSY and policy is not None:
                delay = next(delays, None)
                if delay is not None:
                    report.retries += 1
                    await asyncio.sleep(delay)
                    continue
            report.latencies_ms.append(
                (perf_seconds() - started) * 1000.0
            )
            if response.status == STATUS_OK:
                if attempts > 1:
                    report.retried_ok += 1
                else:
                    report.ok += 1
            elif response.status == STATUS_BUSY:
                report.busy += 1
            elif response.status == STATUS_DEADLINE:
                # The budget already lapsed: retrying cannot beat a
                # clock that has run out, so the shed is terminal.
                report.deadline_shed += 1
            else:
                if policy is not None and response.category == "internal":
                    report.internal_errors += 1
                else:
                    report.service_errors += 1
                _sample(report, f"{unit.label}: [{response.category}] "
                                f"{response.message}")
            break
    if client is not None:
        await client.close()


async def run_loadgen_async(
    host: str,
    port: int,
    rps: float,
    duration: float,
    connections: int,
    seed: int,
    units: Sequence[WorkUnit],
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    request_deadline: Optional[float] = None,
    request_timeout: float = REQUEST_TIMEOUT,
    fetch_stats: bool = True,
) -> LoadgenReport:
    """The loadgen burst as a coroutine, for callers with their own loop
    (the soak driver runs the chaos proxy and the workers on one loop).
    """
    report = LoadgenReport(
        target_rps=rps, duration=duration,
        connections=connections, seed=seed,
    )
    weights = [unit.weight for unit in units]
    start = perf_seconds()
    deadline = start + duration
    per_worker = rps / connections
    tasks = [
        asyncio.ensure_future(_worker(
            host, port, units, weights, per_worker, deadline,
            # Stagger workers across one interval so sends interleave.
            start + (index / connections) / per_worker,
            random.Random(seed * 1_000_003 + index),
            report,
            request_timeout=request_timeout,
            policy=retry,
            breaker=breaker,
            request_deadline=request_deadline,
        ))
        for index in range(connections)
    ]
    await asyncio.gather(*tasks)
    report.elapsed = perf_seconds() - start
    if breaker is not None:
        report.breaker_opened = breaker.opened
        report.breaker_reclosed = breaker.reclosed
    if fetch_stats:
        report.service_stats = await _fetch_stats(host, port)
    return report


async def _fetch_stats(host: str, port: int) -> Optional[Dict[str, object]]:
    """One ``stats`` round-trip after the run; ``None`` on any failure.

    Best-effort on purpose: the run's verdict (latency, errors,
    saturation) must not depend on a post-run bookkeeping fetch.
    """
    try:
        client = await AsyncServiceClient.connect(host, port)
        try:
            response = await asyncio.wait_for(
                client.request(OP_STATS, "", b""),
                timeout=REQUEST_TIMEOUT,
            )
        finally:
            await client.close()
        if response.status != STATUS_OK:
            return None
        return json.loads(response.payload.decode())
    except (CorruptedStreamError, asyncio.TimeoutError, ConnectionError,
            OSError, ValueError):
        return None


def run_loadgen(
    host: str,
    port: int,
    rps: float = 200.0,
    duration: float = 5.0,
    connections: int = 8,
    seed: int = 0,
    units: Optional[Sequence[WorkUnit]] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    request_deadline: Optional[float] = None,
    request_timeout: float = REQUEST_TIMEOUT,
) -> LoadgenReport:
    """Run one paced burst against a live daemon; see the module doc."""
    if rps <= 0 or duration <= 0:
        raise ValueError("rps and duration must be positive")
    connections = max(1, min(connections, int(rps) or 1))
    if units is None:
        units = build_workload(seed)
    return asyncio.run(run_loadgen_async(
        host, port, rps, duration, connections, seed, list(units),
        retry=retry, breaker=breaker,
        request_deadline=request_deadline,
        request_timeout=request_timeout,
    ))


def find_saturation(
    host: str,
    port: int,
    start_rps: float = 50.0,
    duration: float = 3.0,
    connections: int = 8,
    seed: int = 0,
    max_rounds: int = 6,
) -> Tuple[List[LoadgenReport], float]:
    """Double the rate until the service stops keeping up.

    Returns every round's report plus the saturation point: the highest
    target rate the service sustained (>= :data:`SUSTAIN_THRESHOLD` of
    target with no protocol errors).
    """
    reports: List[LoadgenReport] = []
    sustained = 0.0
    rate = start_rps
    for _ in range(max_rounds):
        report = run_loadgen(
            host, port, rps=rate, duration=duration,
            connections=connections, seed=seed,
        )
        reports.append(report)
        if report.saturated or report.protocol_errors:
            break
        sustained = rate
        rate *= 2
    return reports, sustained


__all__ = [
    "LoadgenReport",
    "REQUEST_TIMEOUT",
    "SUSTAIN_THRESHOLD",
    "WorkUnit",
    "build_workload",
    "find_saturation",
    "run_loadgen",
    "run_loadgen_async",
    "slo_breaches",
    "write_stats_json",
]
