"""MIPS general-purpose and floating-point register definitions."""

from __future__ import annotations

from typing import Dict

#: Conventional MIPS o32 register names indexed by register number.
GPR_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Reverse map: name -> number (accepts both "$t0" and "t0" spellings).
GPR_NUMBERS: Dict[str, int] = {}
for _num, _name in enumerate(GPR_NAMES):
    GPR_NUMBERS[_name] = _num
    GPR_NUMBERS["$" + _name] = _num
    GPR_NUMBERS[f"${_num}"] = _num
    GPR_NUMBERS[f"r{_num}"] = _num


def register_number(name: str) -> int:
    """Resolve a register name ("$t0", "t0", "$8", "r8") to its number."""
    key = name.strip().lower()
    if key not in GPR_NUMBERS:
        raise ValueError(f"unknown MIPS register {name!r}")
    return GPR_NUMBERS[key]


def register_name(number: int) -> str:
    """Conventional name for a register number (0..31)."""
    if not 0 <= number < 32:
        raise ValueError(f"register number {number} out of range")
    return "$" + GPR_NAMES[number]


def fpr_name(number: int) -> str:
    """Name of a floating-point register ($f0..$f31)."""
    if not 0 <= number < 32:
        raise ValueError(f"FP register number {number} out of range")
    return f"$f{number}"
