"""A functional MIPS-I interpreter.

The paper's architecture assumes "the processor executes normal
uncompressed code" fetched through the decompressing refill engine; this
interpreter is that processor.  It executes the subset modelled in
:mod:`repro.isa.mips.formats` — integer ALU, loads/stores, branches,
jumps, HI/LO multiply/divide, and COP1 double-precision arithmetic —
over a flat little bit of memory, and exposes an instruction-fetch hook
so execution can be driven *through* a simulated compressed memory
system (see :mod:`repro.memory.fetchsim`).

Simplifications, documented rather than hidden:

* no branch delay slots (branches take effect immediately);
* memory is a single flat byte array, big-endian, no MMU;
* ``syscall`` halts the machine (the embedded "exit" convention here);
* FP registers hold Python floats; ``$f2k`` names a double (even regs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bitstream.fields import sign_extend
from repro.isa.mips.formats import Instruction, decode

#: A fetch hook: word address -> 32-bit instruction word.
FetchHook = Callable[[int], int]


class MachineError(RuntimeError):
    """Raised for invalid execution (bad address, misalignment, …)."""


@dataclass
class MachineState:
    """Architectural state snapshot (for tests and debugging)."""

    pc: int
    registers: List[int]
    hi: int
    lo: int
    halted: bool
    instructions_executed: int


class MipsMachine:
    """Executes MIPS code from a byte-addressed memory image."""

    def __init__(
        self,
        memory_size: int = 1 << 20,
        entry_point: int = 0,
        fetch_hook: Optional[FetchHook] = None,
    ) -> None:
        self.memory = bytearray(memory_size)
        self.registers = [0] * 32
        self.fpr: List[float] = [0.0] * 32
        self.hi = 0
        self.lo = 0
        self.pc = entry_point
        self.halted = False
        self.instructions_executed = 0
        self._fetch_hook = fetch_hook
        # Conventional stack: top of memory, 8-byte aligned.
        self.registers[29] = (memory_size - 16) & ~7

    # -- memory -----------------------------------------------------------

    def load_code(self, code: bytes, address: int = 0) -> None:
        """Place a code image into memory."""
        self._check_range(address, len(code))
        self.memory[address : address + len(code)] = code

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > len(self.memory):
            raise MachineError(
                f"access [{address:#x}, {address + length:#x}) outside memory"
            )

    def read_word(self, address: int) -> int:
        if address % 4 != 0:
            raise MachineError(f"misaligned word read at {address:#x}")
        self._check_range(address, 4)
        return int.from_bytes(self.memory[address : address + 4], "big")

    def write_word(self, address: int, value: int) -> None:
        if address % 4 != 0:
            raise MachineError(f"misaligned word write at {address:#x}")
        self._check_range(address, 4)
        self.memory[address : address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")

    def read_byte(self, address: int) -> int:
        self._check_range(address, 1)
        return self.memory[address]

    def write_byte(self, address: int, value: int) -> None:
        self._check_range(address, 1)
        self.memory[address] = value & 0xFF

    def read_half(self, address: int) -> int:
        if address % 2 != 0:
            raise MachineError(f"misaligned half read at {address:#x}")
        self._check_range(address, 2)
        return int.from_bytes(self.memory[address : address + 2], "big")

    def write_half(self, address: int, value: int) -> None:
        if address % 2 != 0:
            raise MachineError(f"misaligned half write at {address:#x}")
        self._check_range(address, 2)
        self.memory[address : address + 2] = (value & 0xFFFF).to_bytes(2, "big")

    def read_double(self, address: int) -> float:
        import struct

        self._check_range(address, 8)
        return struct.unpack(">d", self.memory[address : address + 8])[0]

    def write_double(self, address: int, value: float) -> None:
        import struct

        self._check_range(address, 8)
        self.memory[address : address + 8] = struct.pack(">d", value)

    # -- registers ---------------------------------------------------------

    def reg(self, number: int) -> int:
        """Read a GPR (register 0 is hardwired zero)."""
        return 0 if number == 0 else self.registers[number] & 0xFFFFFFFF

    def set_reg(self, number: int, value: int) -> None:
        if number != 0:
            self.registers[number] = value & 0xFFFFFFFF

    def _sreg(self, number: int) -> int:
        """Signed view of a GPR."""
        return sign_extend(self.reg(number), 32)

    def fpr_double(self, number: int) -> float:
        return self.fpr[number & ~1]

    def set_fpr_double(self, number: int, value: float) -> None:
        self.fpr[number & ~1] = float(value)

    # -- execution -----------------------------------------------------------

    def fetch(self, address: int) -> int:
        """Fetch an instruction word, via the hook when installed."""
        if self._fetch_hook is not None:
            return self._fetch_hook(address)
        return self.read_word(address)

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise MachineError("machine is halted")
        word = self.fetch(self.pc)
        instruction = decode(word)
        self.instructions_executed += 1
        next_pc = self.pc + 4
        next_pc = self._execute(instruction, next_pc)
        self.pc = next_pc

    def run(self, max_instructions: int = 1_000_000) -> MachineState:
        """Run until ``syscall`` halts the machine or the budget expires."""
        while not self.halted:
            if self.instructions_executed >= max_instructions:
                raise MachineError(
                    f"instruction budget {max_instructions} exhausted"
                )
            self.step()
        return self.state()

    def state(self) -> MachineState:
        return MachineState(
            pc=self.pc,
            registers=[self.reg(i) for i in range(32)],
            hi=self.hi,
            lo=self.lo,
            halted=self.halted,
            instructions_executed=self.instructions_executed,
        )

    # -- semantics -------------------------------------------------------------

    def _execute(self, instr: Instruction, next_pc: int) -> int:
        handler = _HANDLERS.get(instr.mnemonic)
        if handler is None:
            raise MachineError(f"no semantics for {instr.mnemonic!r}")
        return handler(self, instr, next_pc)


def _branch_target(machine: MipsMachine, instr: Instruction, next_pc: int) -> int:
    return next_pc + 4 * sign_extend(instr.imm, 16)


def _alu_r(op):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        m.set_reg(i.rd, op(m, i))
        return next_pc

    return handler


def _alu_i(op):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        m.set_reg(i.rt, op(m, i))
        return next_pc

    return handler


def _branch(condition):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        # MIPS branch targets are relative to the instruction after the
        # branch (we model no delay slot, but keep the encoding).
        if condition(m, i):
            return _branch_target(m, i, next_pc)
        return next_pc

    return handler


def _load(read, extend):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        address = (m.reg(i.rs) + sign_extend(i.imm, 16)) & 0xFFFFFFFF
        m.set_reg(i.rt, extend(read(m, address)))
        return next_pc

    return handler


def _store(write, mask):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        address = (m.reg(i.rs) + sign_extend(i.imm, 16)) & 0xFFFFFFFF
        write(m, address, m.reg(i.rt) & mask)
        return next_pc

    return handler


def _fp_arith(op):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        # COP1 layout: ft->rt, fs->rd, fd->shamt.
        result = op(m.fpr_double(i.rd), m.fpr_double(i.rt))
        m.set_fpr_double(i.shamt, result)
        return next_pc

    return handler


def _syscall(m: MipsMachine, i: Instruction, next_pc: int) -> int:
    m.halted = True
    return next_pc


def _jr(m: MipsMachine, i: Instruction, next_pc: int) -> int:
    return m.reg(i.rs)


def _jalr(m: MipsMachine, i: Instruction, next_pc: int) -> int:
    m.set_reg(i.rd if i.rd else 31, next_pc)
    return m.reg(i.rs)


def _j(m: MipsMachine, i: Instruction, next_pc: int) -> int:
    return ((next_pc - 4) & 0xF0000000) | (i.target << 2)


def _jal(m: MipsMachine, i: Instruction, next_pc: int) -> int:
    m.set_reg(31, next_pc)
    return _j(m, i, next_pc)


def _mult(signed: bool):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        a = m._sreg(i.rs) if signed else m.reg(i.rs)
        b = m._sreg(i.rt) if signed else m.reg(i.rt)
        product = a * b
        m.lo = product & 0xFFFFFFFF
        m.hi = (product >> 32) & 0xFFFFFFFF
        return next_pc

    return handler


def _div(signed: bool):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        a = m._sreg(i.rs) if signed else m.reg(i.rs)
        b = m._sreg(i.rt) if signed else m.reg(i.rt)
        if b == 0:
            m.lo, m.hi = 0, 0  # MIPS leaves these undefined; pin to zero
        else:
            quotient = int(a / b) if signed else a // b
            remainder = a - quotient * b
            m.lo = quotient & 0xFFFFFFFF
            m.hi = remainder & 0xFFFFFFFF
        return next_pc

    return handler


def _fp_load(double: bool):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        address = (m.reg(i.rs) + sign_extend(i.imm, 16)) & 0xFFFFFFFF
        if double:
            m.set_fpr_double(i.rt, m.read_double(address))
        else:
            import struct

            raw = m.read_word(address)
            m.fpr[i.rt] = struct.unpack(">f", raw.to_bytes(4, "big"))[0]
        return next_pc

    return handler


def _fp_store(double: bool):
    def handler(m: MipsMachine, i: Instruction, next_pc: int) -> int:
        address = (m.reg(i.rs) + sign_extend(i.imm, 16)) & 0xFFFFFFFF
        if double:
            m.write_double(address, m.fpr_double(i.rt))
        else:
            import struct

            raw = struct.pack(">f", m.fpr[i.rt])
            m.write_word(address, int.from_bytes(raw, "big"))
        return next_pc

    return handler


def _to_single(value: float) -> float:
    """Round a double through IEEE single precision."""
    import struct

    return struct.unpack(">f", struct.pack(">f", value))[0]


_HANDLERS: Dict[str, Callable] = {
    # R-type ALU
    "addu": _alu_r(lambda m, i: m.reg(i.rs) + m.reg(i.rt)),
    "add": _alu_r(lambda m, i: m.reg(i.rs) + m.reg(i.rt)),
    "subu": _alu_r(lambda m, i: m.reg(i.rs) - m.reg(i.rt)),
    "sub": _alu_r(lambda m, i: m.reg(i.rs) - m.reg(i.rt)),
    "and": _alu_r(lambda m, i: m.reg(i.rs) & m.reg(i.rt)),
    "or": _alu_r(lambda m, i: m.reg(i.rs) | m.reg(i.rt)),
    "xor": _alu_r(lambda m, i: m.reg(i.rs) ^ m.reg(i.rt)),
    "nor": _alu_r(lambda m, i: ~(m.reg(i.rs) | m.reg(i.rt))),
    "slt": _alu_r(lambda m, i: int(m._sreg(i.rs) < m._sreg(i.rt))),
    "sltu": _alu_r(lambda m, i: int(m.reg(i.rs) < m.reg(i.rt))),
    "sll": _alu_r(lambda m, i: m.reg(i.rt) << i.shamt),
    "srl": _alu_r(lambda m, i: m.reg(i.rt) >> i.shamt),
    "sra": _alu_r(lambda m, i: m._sreg(i.rt) >> i.shamt),
    "sllv": _alu_r(lambda m, i: m.reg(i.rt) << (m.reg(i.rs) & 31)),
    "srlv": _alu_r(lambda m, i: m.reg(i.rt) >> (m.reg(i.rs) & 31)),
    "srav": _alu_r(lambda m, i: m._sreg(i.rt) >> (m.reg(i.rs) & 31)),
    "mfhi": _alu_r(lambda m, i: m.hi),
    "mflo": _alu_r(lambda m, i: m.lo),
    # I-type ALU
    "addiu": _alu_i(lambda m, i: m.reg(i.rs) + sign_extend(i.imm, 16)),
    "addi": _alu_i(lambda m, i: m.reg(i.rs) + sign_extend(i.imm, 16)),
    "andi": _alu_i(lambda m, i: m.reg(i.rs) & i.imm),
    "ori": _alu_i(lambda m, i: m.reg(i.rs) | i.imm),
    "xori": _alu_i(lambda m, i: m.reg(i.rs) ^ i.imm),
    "slti": _alu_i(lambda m, i: int(m._sreg(i.rs) < sign_extend(i.imm, 16))),
    "sltiu": _alu_i(
        lambda m, i: int(m.reg(i.rs) < (sign_extend(i.imm, 16) & 0xFFFFFFFF))
    ),
    "lui": _alu_i(lambda m, i: i.imm << 16),
    # loads / stores
    "lw": _load(lambda m, a: m.read_word(a), lambda v: v),
    "lb": _load(lambda m, a: m.read_byte(a), lambda v: sign_extend(v, 8)),
    "lbu": _load(lambda m, a: m.read_byte(a), lambda v: v),
    "lh": _load(lambda m, a: m.read_half(a), lambda v: sign_extend(v, 16)),
    "lhu": _load(lambda m, a: m.read_half(a), lambda v: v),
    "sw": _store(lambda m, a, v: m.write_word(a, v), 0xFFFFFFFF),
    "sb": _store(lambda m, a, v: m.write_byte(a, v), 0xFF),
    "sh": _store(lambda m, a, v: m.write_half(a, v), 0xFFFF),
    # branches
    "beq": _branch(lambda m, i: m.reg(i.rs) == m.reg(i.rt)),
    "bne": _branch(lambda m, i: m.reg(i.rs) != m.reg(i.rt)),
    "blez": _branch(lambda m, i: m._sreg(i.rs) <= 0),
    "bgtz": _branch(lambda m, i: m._sreg(i.rs) > 0),
    "bltz": _branch(lambda m, i: m._sreg(i.rs) < 0),
    "bgez": _branch(lambda m, i: m._sreg(i.rs) >= 0),
    # jumps and control
    "j": _j,
    "jal": _jal,
    "jr": _jr,
    "jalr": _jalr,
    "syscall": _syscall,
    # HI/LO
    "mult": _mult(True),
    "multu": _mult(False),
    "div": _div(True),
    "divu": _div(False),
    "mthi": lambda m, i, n: (setattr(m, "hi", m.reg(i.rs)), n)[1],
    "mtlo": lambda m, i, n: (setattr(m, "lo", m.reg(i.rs)), n)[1],
    # FP (double precision; single-precision arithmetic maps onto floats)
    "add.d": _fp_arith(lambda a, b: a + b),
    "sub.d": _fp_arith(lambda a, b: a - b),
    "mul.d": _fp_arith(lambda a, b: a * b),
    "div.d": _fp_arith(lambda a, b: a / b if b else 0.0),
    "add.s": _fp_arith(lambda a, b: a + b),
    "sub.s": _fp_arith(lambda a, b: a - b),
    "mul.s": _fp_arith(lambda a, b: a * b),
    "div.s": _fp_arith(lambda a, b: a / b if b else 0.0),
    "mov.d": _fp_arith(lambda a, b: a),
    "mov.s": _fp_arith(lambda a, b: a),
    # Format conversions: registers hold Python floats, so conversion is
    # a move plus (for cvt.s.d) a precision clamp.
    "cvt.d.s": _fp_arith(lambda a, b: a),
    "cvt.s.d": _fp_arith(lambda a, b: _to_single(a)),
    "ldc1": _fp_load(True),
    "lwc1": _fp_load(False),
    "sdc1": _fp_store(True),
    "swc1": _fp_store(False),
}
