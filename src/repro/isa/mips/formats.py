"""MIPS-I instruction formats, opcode tables, and field codecs.

The model covers the integer and floating-point subset a C compiler emits
for SPEC95-class programs: ALU R-type, ALU immediate, loads/stores,
branches, jumps, HI/LO multiply/divide, and coprocessor-1 arithmetic and
loads/stores.  Every instruction is 32 bits; the three hardware formats
are:

====  =========================================================
R     ``op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)``
I     ``op(6) rs(5) rt(5) imm(16)``
J     ``op(6) target(26)``
====  =========================================================

Coprocessor-1 arithmetic reuses the R layout with ``op=0x11`` and the
``rs`` field holding the format selector (``fmt``), so it round-trips
through the same field machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

WORD_BITS = 32
WORD_BYTES = 4

OP_SPECIAL = 0x00
OP_REGIMM = 0x01
OP_COP1 = 0x11

#: Bit-field tilings of the three hardware formats, as
#: ``(field, msb_start, width)`` triples in this package's MSB-first
#: convention.  Each layout must partition the 32-bit word exactly —
#: no overlap, no gap — which ``repro verify`` checks statically.
FIELD_LAYOUTS: Dict[str, Tuple[Tuple[str, int, int], ...]] = {
    "R": (
        ("op", 0, 6),
        ("rs", 6, 5),
        ("rt", 11, 5),
        ("rd", 16, 5),
        ("shamt", 21, 5),
        ("funct", 26, 6),
    ),
    "I": (
        ("op", 0, 6),
        ("rs", 6, 5),
        ("rt", 11, 5),
        ("imm", 16, 16),
    ),
    "J": (
        ("op", 0, 6),
        ("target", 6, 26),
    ),
}

FMT_SINGLE = 0x10
FMT_DOUBLE = 0x11


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description of one mnemonic.

    ``fmt`` is "R", "I", or "J".  ``op`` is the primary opcode; R-type
    instructions additionally carry ``funct`` and COP1 arithmetic carries
    ``cop_fmt``.  ``operands`` names the fields the assembler expects, in
    assembly order.
    """

    mnemonic: str
    fmt: str
    op: int
    funct: Optional[int] = None
    cop_fmt: Optional[int] = None
    regimm_rt: Optional[int] = None
    operands: Tuple[str, ...] = ()


def _r(mnemonic: str, funct: int, operands: Tuple[str, ...]) -> OpcodeSpec:
    return OpcodeSpec(mnemonic, "R", OP_SPECIAL, funct=funct, operands=operands)


def _i(mnemonic: str, op: int, operands: Tuple[str, ...]) -> OpcodeSpec:
    return OpcodeSpec(mnemonic, "I", op, operands=operands)


def _f(mnemonic: str, funct: int, fmt: int) -> OpcodeSpec:
    return OpcodeSpec(
        mnemonic, "R", OP_COP1, funct=funct, cop_fmt=fmt, operands=("fd", "fs", "ft")
    )


#: The instruction inventory.  Roughly 70 mnemonics — the working set the
#: paper observes ("all our benchmark programs tend to use no more than 50
#: instructions" per program).
OPCODES: Tuple[OpcodeSpec, ...] = (
    # R-type ALU
    _r("sll", 0x00, ("rd", "rt", "shamt")),
    _r("srl", 0x02, ("rd", "rt", "shamt")),
    _r("sra", 0x03, ("rd", "rt", "shamt")),
    _r("sllv", 0x04, ("rd", "rt", "rs")),
    _r("srlv", 0x06, ("rd", "rt", "rs")),
    _r("srav", 0x07, ("rd", "rt", "rs")),
    _r("jr", 0x08, ("rs",)),
    _r("jalr", 0x09, ("rd", "rs")),
    _r("syscall", 0x0C, ()),
    _r("break", 0x0D, ()),
    _r("mfhi", 0x10, ("rd",)),
    _r("mthi", 0x11, ("rs",)),
    _r("mflo", 0x12, ("rd",)),
    _r("mtlo", 0x13, ("rs",)),
    _r("mult", 0x18, ("rs", "rt")),
    _r("multu", 0x19, ("rs", "rt")),
    _r("div", 0x1A, ("rs", "rt")),
    _r("divu", 0x1B, ("rs", "rt")),
    _r("add", 0x20, ("rd", "rs", "rt")),
    _r("addu", 0x21, ("rd", "rs", "rt")),
    _r("sub", 0x22, ("rd", "rs", "rt")),
    _r("subu", 0x23, ("rd", "rs", "rt")),
    _r("and", 0x24, ("rd", "rs", "rt")),
    _r("or", 0x25, ("rd", "rs", "rt")),
    _r("xor", 0x26, ("rd", "rs", "rt")),
    _r("nor", 0x27, ("rd", "rs", "rt")),
    _r("slt", 0x2A, ("rd", "rs", "rt")),
    _r("sltu", 0x2B, ("rd", "rs", "rt")),
    # I-type ALU / branches / memory
    _i("beq", 0x04, ("rs", "rt", "imm")),
    _i("bne", 0x05, ("rs", "rt", "imm")),
    _i("blez", 0x06, ("rs", "imm")),
    _i("bgtz", 0x07, ("rs", "imm")),
    _i("addi", 0x08, ("rt", "rs", "imm")),
    _i("addiu", 0x09, ("rt", "rs", "imm")),
    _i("slti", 0x0A, ("rt", "rs", "imm")),
    _i("sltiu", 0x0B, ("rt", "rs", "imm")),
    _i("andi", 0x0C, ("rt", "rs", "imm")),
    _i("ori", 0x0D, ("rt", "rs", "imm")),
    _i("xori", 0x0E, ("rt", "rs", "imm")),
    _i("lui", 0x0F, ("rt", "imm")),
    _i("lb", 0x20, ("rt", "imm", "rs")),
    _i("lh", 0x21, ("rt", "imm", "rs")),
    _i("lw", 0x23, ("rt", "imm", "rs")),
    _i("lbu", 0x24, ("rt", "imm", "rs")),
    _i("lhu", 0x25, ("rt", "imm", "rs")),
    _i("sb", 0x28, ("rt", "imm", "rs")),
    _i("sh", 0x29, ("rt", "imm", "rs")),
    _i("sw", 0x2B, ("rt", "imm", "rs")),
    _i("lwc1", 0x31, ("rt", "imm", "rs")),
    _i("ldc1", 0x35, ("rt", "imm", "rs")),
    _i("swc1", 0x39, ("rt", "imm", "rs")),
    _i("sdc1", 0x3D, ("rt", "imm", "rs")),
    # REGIMM branches (rt field selects the condition)
    OpcodeSpec("bltz", "I", OP_REGIMM, regimm_rt=0x00, operands=("rs", "imm")),
    OpcodeSpec("bgez", "I", OP_REGIMM, regimm_rt=0x01, operands=("rs", "imm")),
    # J-type
    OpcodeSpec("j", "J", 0x02, operands=("target",)),
    OpcodeSpec("jal", "J", 0x03, operands=("target",)),
    # COP1 arithmetic, single and double precision
    _f("add.s", 0x00, FMT_SINGLE),
    _f("add.d", 0x00, FMT_DOUBLE),
    _f("sub.s", 0x01, FMT_SINGLE),
    _f("sub.d", 0x01, FMT_DOUBLE),
    _f("mul.s", 0x02, FMT_SINGLE),
    _f("mul.d", 0x02, FMT_DOUBLE),
    _f("div.s", 0x03, FMT_SINGLE),
    _f("div.d", 0x03, FMT_DOUBLE),
    _f("mov.s", 0x06, FMT_SINGLE),
    _f("mov.d", 0x06, FMT_DOUBLE),
    _f("cvt.d.s", 0x21, FMT_SINGLE),
    _f("cvt.s.d", 0x20, FMT_DOUBLE),
)

#: Lookup by mnemonic.
BY_MNEMONIC: Dict[str, OpcodeSpec] = {spec.mnemonic: spec for spec in OPCODES}

#: Lookup keys for decode: (op,) for plain I/J, (op, funct, cop_fmt) for R,
#: (op, rt) for REGIMM.
_DECODE_R: Dict[Tuple[int, int, Optional[int]], OpcodeSpec] = {}
_DECODE_I: Dict[int, OpcodeSpec] = {}
_DECODE_REGIMM: Dict[int, OpcodeSpec] = {}
for _spec in OPCODES:
    if _spec.regimm_rt is not None:
        _DECODE_REGIMM[_spec.regimm_rt] = _spec
    elif _spec.fmt == "R":
        _DECODE_R[(_spec.op, _spec.funct, _spec.cop_fmt)] = _spec
    else:
        _DECODE_I[_spec.op] = _spec


@dataclass(frozen=True)
class Instruction:
    """A decoded MIPS instruction: a spec plus its field values."""

    spec: OpcodeSpec
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def encode(self) -> int:
        """Pack the instruction into its 32-bit machine word."""
        spec = self.spec
        if spec.fmt == "J":
            return (spec.op << 26) | (self.target & 0x3FFFFFF)
        if spec.fmt == "R":
            rs_field = spec.cop_fmt if spec.cop_fmt is not None else self.rs
            return (
                (spec.op << 26)
                | ((rs_field & 0x1F) << 21)
                | ((self.rt & 0x1F) << 16)
                | ((self.rd & 0x1F) << 11)
                | ((self.shamt & 0x1F) << 6)
                | (spec.funct & 0x3F)
            )
        rt_field = spec.regimm_rt if spec.regimm_rt is not None else self.rt
        return (
            (spec.op << 26)
            | ((self.rs & 0x1F) << 21)
            | ((rt_field & 0x1F) << 16)
            | (self.imm & 0xFFFF)
        )


def decode(word: int) -> Instruction:
    """Decode a 32-bit machine word into an :class:`Instruction`.

    Raises :class:`ValueError` for encodings outside the modelled subset.
    """
    if not 0 <= word < (1 << 32):
        raise ValueError(f"word {word:#x} is not a 32-bit value")
    op = (word >> 26) & 0x3F
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF
    target = word & 0x3FFFFFF

    if op == OP_SPECIAL:
        spec = _DECODE_R.get((op, funct, None))
        if spec is None:
            raise ValueError(f"unknown SPECIAL funct {funct:#x}")
        return Instruction(spec, rs=rs, rt=rt, rd=rd, shamt=shamt)
    if op == OP_COP1:
        spec = _DECODE_R.get((op, funct, rs))
        if spec is None:
            raise ValueError(f"unknown COP1 funct {funct:#x} fmt {rs:#x}")
        return Instruction(spec, rt=rt, rd=rd, shamt=shamt)
    if op == OP_REGIMM:
        spec = _DECODE_REGIMM.get(rt)
        if spec is None:
            raise ValueError(f"unknown REGIMM rt {rt:#x}")
        return Instruction(spec, rs=rs, imm=imm)
    spec = _DECODE_I.get(op)
    if spec is None:
        raise ValueError(f"unknown opcode {op:#x}")
    if spec.fmt == "J":
        return Instruction(spec, target=target)
    return Instruction(spec, rs=rs, rt=rt, imm=imm)
