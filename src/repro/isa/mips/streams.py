"""SADC stream subdivision for MIPS (Section 4 of the paper).

MIPS instructions are divided into four streams of different widths:

* **opcode stream** — one canonical opcode id per instruction.  This is
  the "simplified opcode" the paper's decoder works with: it identifies
  the mnemonic, and through the operand-length unit it determines how many
  register and immediate entries the instruction consumes.
* **register stream** — 5-bit entries: the register fields (and shift
  amounts) of each instruction, in a fixed per-opcode order.
* **immediate stream** — 16-bit entries for I-type immediates.
* **long-immediate stream** — 26-bit entries for J-type targets.

The split is exactly invertible: :func:`merge_streams` is the software
model of the paper's instruction-generator unit (Figure 6), which ORs the
decompressed streams back into 32-bit words.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bitstream.fields import chunk_words, words_to_bytes
from repro.isa.mips.formats import (
    OPCODES,
    Instruction,
    OpcodeSpec,
    decode,
)

#: Stable numbering of mnemonics: the "simplified opcode" values.
OPCODE_IDS: Dict[str, int] = {spec.mnemonic: i for i, spec in enumerate(OPCODES)}
ID_TO_SPEC: Dict[int, OpcodeSpec] = {i: spec for i, spec in enumerate(OPCODES)}

#: Per-format register-slot order.  ``shamt`` rides in the register stream
#: (it is a 5-bit field, statistically register-like).
_REGISTER_SLOTS: Dict[str, Tuple[str, ...]] = {}
for _spec in OPCODES:
    slots: List[str] = []
    for operand in _spec.operands:
        if operand in ("rs", "rt", "rd", "shamt"):
            slots.append(operand)
        elif operand in ("fd", "fs", "ft"):
            slots.append({"ft": "rt", "fs": "rd", "fd": "shamt"}[operand])
    _REGISTER_SLOTS[_spec.mnemonic] = tuple(slots)


def register_slots(spec: OpcodeSpec) -> Tuple[str, ...]:
    """Register-stream slots an opcode consumes, in stream order."""
    return _REGISTER_SLOTS[spec.mnemonic]


def uses_imm16(spec: OpcodeSpec) -> bool:
    """True when the opcode consumes one 16-bit immediate-stream entry."""
    return spec.fmt == "I" and "imm" in spec.operands


def uses_imm26(spec: OpcodeSpec) -> bool:
    """True when the opcode consumes one 26-bit long-immediate entry."""
    return spec.fmt == "J"


@dataclass
class MipsStreams:
    """The four SADC streams extracted from a MIPS code image."""

    opcodes: List[int] = field(default_factory=list)
    registers: List[int] = field(default_factory=list)
    imm16: List[int] = field(default_factory=list)
    imm26: List[int] = field(default_factory=list)

    def bit_sizes(self) -> Dict[str, int]:
        """Raw (uncompressed) size of each stream in bits."""
        return {
            "opcodes": 8 * len(self.opcodes),
            "registers": 5 * len(self.registers),
            "imm16": 16 * len(self.imm16),
            "imm26": 26 * len(self.imm26),
        }

    def total_bits(self) -> int:
        return sum(self.bit_sizes().values())


def split_streams(code: bytes) -> MipsStreams:
    """Split a big-endian MIPS code image into its four SADC streams."""
    streams = MipsStreams()
    for word in chunk_words(code, 4):
        instruction = decode(word)
        spec = instruction.spec
        streams.opcodes.append(OPCODE_IDS[spec.mnemonic])
        for slot in register_slots(spec):
            streams.registers.append(getattr(instruction, slot))
        if uses_imm16(spec):
            streams.imm16.append(instruction.imm)
        if uses_imm26(spec):
            streams.imm26.append(instruction.target)
    return streams


def merge_streams(streams: MipsStreams) -> bytes:
    """Reassemble a code image from its streams (instruction generator)."""
    registers = iter(streams.registers)
    imm16 = iter(streams.imm16)
    imm26 = iter(streams.imm26)
    words: List[int] = []
    for opcode_id in streams.opcodes:
        spec = ID_TO_SPEC[opcode_id]
        fields = {"rs": 0, "rt": 0, "rd": 0, "shamt": 0, "imm": 0, "target": 0}
        for slot in register_slots(spec):
            fields[slot] = next(registers)
        if uses_imm16(spec):
            fields["imm"] = next(imm16)
        if uses_imm26(spec):
            fields["target"] = next(imm26)
        words.append(Instruction(spec, **fields).encode())
    return words_to_bytes(words, 4)
