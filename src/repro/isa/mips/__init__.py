"""MIPS-I instruction-set model: formats, assembler, SADC streams."""

from repro.isa.mips.asm import (
    assemble,
    assemble_one,
    assemble_to_bytes,
    disassemble,
    disassemble_one,
)
from repro.isa.mips.formats import (
    BY_MNEMONIC,
    OPCODES,
    WORD_BITS,
    WORD_BYTES,
    Instruction,
    OpcodeSpec,
    decode,
)
from repro.isa.mips.registers import register_name, register_number
from repro.isa.mips.streams import (
    OPCODE_IDS,
    MipsStreams,
    merge_streams,
    split_streams,
)

__all__ = [
    "BY_MNEMONIC",
    "OPCODES",
    "OPCODE_IDS",
    "WORD_BITS",
    "WORD_BYTES",
    "Instruction",
    "MipsStreams",
    "OpcodeSpec",
    "assemble",
    "assemble_one",
    "assemble_to_bytes",
    "decode",
    "disassemble",
    "disassemble_one",
    "merge_streams",
    "register_name",
    "register_number",
    "split_streams",
]
