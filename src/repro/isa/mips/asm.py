"""A small MIPS assembler and disassembler.

Supports the subset in :mod:`repro.isa.mips.formats` with conventional
assembly syntax, including ``lw $t0, 4($sp)`` memory operands.  The
assembler exists so that tests and examples can build instruction streams
readably; the workload generator drives :class:`Instruction` directly.
"""

from __future__ import annotations

import re
from typing import Iterable, List

from repro.bitstream.fields import sign_extend
from repro.isa.mips.formats import BY_MNEMONIC, Instruction, decode
from repro.isa.mips.registers import fpr_name, register_name, register_number

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\$?\w+)\)$")


def _parse_int(text: str) -> int:
    return int(text, 0)


def assemble_one(line: str) -> Instruction:
    """Assemble a single instruction from text."""
    text = line.split("#", 1)[0].strip()
    if not text:
        raise ValueError("empty instruction")
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in BY_MNEMONIC:
        raise ValueError(f"unknown mnemonic {mnemonic!r}")
    spec = BY_MNEMONIC[mnemonic]
    operand_text = parts[1] if len(parts) > 1 else ""
    tokens: List[str] = [t.strip() for t in operand_text.split(",") if t.strip()]

    # Memory form "imm(rs)" expands to the imm and rs operand slots.
    expanded: List[str] = []
    for token in tokens:
        match = _MEM_OPERAND.match(token)
        if match and spec.operands and "imm" in spec.operands:
            expanded.append(match.group(1))
            expanded.append(match.group(2))
        else:
            expanded.append(token)

    if len(expanded) != len(spec.operands):
        raise ValueError(
            f"{mnemonic} expects {len(spec.operands)} operands "
            f"{spec.operands}, got {len(expanded)}: {expanded}"
        )

    fields = {"rs": 0, "rt": 0, "rd": 0, "shamt": 0, "imm": 0, "target": 0}
    for name, token in zip(spec.operands, expanded):
        if name in ("rs", "rt", "rd"):
            # COP1 loads/stores carry the FP register in the rt field.
            # ("$fp" is the GPR frame pointer, not an FP register.)
            if re.match(r"^\$f\d+$", token.strip().lower()):
                fields[name] = _parse_fp_register(token)
            else:
                fields[name] = register_number(token)
        elif name in ("fd", "fs", "ft"):
            fields[_FP_TO_HW[name]] = _parse_fp_register(token)
        elif name == "shamt":
            fields["shamt"] = _parse_int(token) & 0x1F
        elif name == "imm":
            fields["imm"] = _parse_int(token) & 0xFFFF
        elif name == "target":
            # Assembly writes byte addresses; the hardware field stores
            # the word address (address >> 2).
            fields["target"] = (_parse_int(token) >> 2) & 0x3FFFFFF
        else:  # pragma: no cover - spec tables only name the above
            raise ValueError(f"unknown operand kind {name!r}")
    return Instruction(spec, **fields)


#: COP1.FMT layout is ``op fmt ft fs fd funct``; the FP operand slots land
#: in the R-type rt/rd/shamt field positions respectively.
_FP_TO_HW = {"ft": "rt", "fs": "rd", "fd": "shamt"}


def _parse_fp_register(token: str) -> int:
    token = token.strip().lower()
    if token.startswith("$f"):
        return int(token[2:])
    if token.startswith("f"):
        return int(token[1:])
    raise ValueError(f"bad FP register {token!r}")


def assemble(lines: Iterable[str]) -> List[Instruction]:
    """Assemble a sequence of instruction lines, skipping blanks/comments."""
    out = []
    for line in lines:
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            out.append(assemble_one(stripped))
    return out


_LABEL_DEF = re.compile(r"^([A-Za-z_][\w$.]*):\s*(.*)$")
_LABEL_REF = re.compile(r"^[A-Za-z_][\w$.]*$")


def assemble_program(lines: Iterable[str], base_address: int = 0) -> List[Instruction]:
    """Two-pass assembly with labels.

    ``loop:`` defines a label; branch instructions may name a label as
    their immediate (assembled to the MIPS-relative offset, counted from
    the instruction *after* the branch), and ``j``/``jal`` may name one
    as their target (assembled to the absolute word address).
    """
    # Pass 1: strip labels, record their instruction addresses.
    labels = {}
    stripped_lines: List[str] = []
    for line in lines:
        text = line.split("#", 1)[0].strip()
        if not text:
            continue
        match = _LABEL_DEF.match(text)
        if match:
            label, rest = match.group(1), match.group(2).strip()
            if label in labels:
                raise ValueError(f"duplicate label {label!r}")
            labels[label] = base_address + 4 * len(stripped_lines)
            if not rest:
                continue
            text = rest
        stripped_lines.append(text)

    # Pass 2: resolve label operands, then assemble.
    out: List[Instruction] = []
    for index, text in enumerate(stripped_lines):
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = [t.strip() for t in operand_text.split(",")]
        if mnemonic in BY_MNEMONIC and tokens and _LABEL_REF.match(tokens[-1]) \
                and tokens[-1] not in ("",) and tokens[-1] in labels:
            spec = BY_MNEMONIC[mnemonic]
            target_address = labels[tokens[-1]]
            here = base_address + 4 * index
            if spec.fmt == "J":
                tokens[-1] = hex(target_address)
            elif "imm" in spec.operands:
                offset = (target_address - (here + 4)) // 4
                tokens[-1] = str(offset)
            text = f"{mnemonic} " + ", ".join(tokens)
        out.append(assemble_one(text))
    return out


def assemble_to_bytes(lines: Iterable[str], base_address: int = 0) -> bytes:
    """Assemble straight to a big-endian machine-code image.

    Accepts labels (see :func:`assemble_program`).
    """
    code = bytearray()
    for instruction in assemble_program(lines, base_address):
        code.extend(instruction.encode().to_bytes(4, "big"))
    return bytes(code)


def disassemble_one(word: int) -> str:
    """Render a 32-bit word as assembly text."""
    instruction = decode(word)
    spec = instruction.spec
    rendered = []
    for name in spec.operands:
        if name in ("rs", "rt", "rd"):
            rendered.append(register_name(getattr(instruction, name)))
        elif name in ("fd", "fs", "ft"):
            rendered.append(fpr_name(getattr(instruction, _FP_TO_HW[name])))
        elif name == "shamt":
            rendered.append(str(instruction.shamt))
        elif name == "imm":
            rendered.append(str(sign_extend(instruction.imm, 16)))
        elif name == "target":
            rendered.append(hex(instruction.target << 2))
    if not rendered:
        return spec.mnemonic
    return f"{spec.mnemonic} " + ", ".join(rendered)


def disassemble(code: bytes) -> List[str]:
    """Disassemble a big-endian machine-code image."""
    if len(code) % 4 != 0:
        raise ValueError("MIPS code image must be a multiple of 4 bytes")
    return [
        disassemble_one(int.from_bytes(code[i : i + 4], "big"))
        for i in range(0, len(code), 4)
    ]
