"""A compact IA-32 interpreter for the modelled opcode subset.

The x86 counterpart of :mod:`repro.isa.mips.interp`: enough semantics to
execute the kernels in :mod:`repro.workloads.x86_kernels` — 32-bit MOV
(register/immediate/memory forms), the ALU group, PUSH/POP, INC/DEC,
LEA, TEST, MOVZX, short conditional branches with real EFLAGS
(ZF/SF/OF/CF), CALL/RET, LEAVE, and NOP — over a flat little-endian
memory.  A ``ret`` executed at call depth 0 halts the machine (the
embedded "exit" convention).

Addressing support matches what compilers emit in straight-line kernels:
``mod=11`` register operands, ``[reg]`` and ``[reg+disp8/32]`` memory
operands.  SIB-based forms raise :class:`X86MachineError` rather than
mis-execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.bitstream.fields import sign_extend
from repro.isa.x86.formats import X86Instruction, decode_one, modrm_fields

#: A byte-granular fetch hook: (address, length) -> bytes.
FetchBytes = Callable[[int, int], bytes]

EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI = range(8)


class X86MachineError(RuntimeError):
    """Raised for unsupported encodings or invalid execution."""


@dataclass
class X86Flags:
    """The EFLAGS bits the modelled subset reads."""

    zf: bool = False
    sf: bool = False
    of: bool = False
    cf: bool = False


class X86Machine:
    """Executes IA-32 code from a byte-addressed little-endian memory."""

    #: Generous per-fetch window: the longest modelled instruction.
    MAX_INSTRUCTION_BYTES = 12

    def __init__(
        self,
        memory_size: int = 1 << 20,
        entry_point: int = 0,
        fetch_bytes: Optional[FetchBytes] = None,
    ) -> None:
        self.memory = bytearray(memory_size)
        self.regs = [0] * 8
        self.flags = X86Flags()
        self.eip = entry_point
        self.halted = False
        self.instructions_executed = 0
        self.call_depth = 0
        self._fetch_bytes = fetch_bytes
        self.regs[ESP] = (memory_size - 16) & ~3

    # -- memory ------------------------------------------------------------

    def load_code(self, code: bytes, address: int = 0) -> None:
        self._check(address, len(code))
        self.memory[address : address + len(code)] = code

    def _check(self, address: int, length: int) -> None:
        if address < 0 or address + length > len(self.memory):
            raise X86MachineError(
                f"access [{address:#x}, {address + length:#x}) outside memory"
            )

    def read32(self, address: int) -> int:
        self._check(address, 4)
        return int.from_bytes(self.memory[address : address + 4], "little")

    def write32(self, address: int, value: int) -> None:
        self._check(address, 4)
        self.memory[address : address + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little"
        )

    def read8(self, address: int) -> int:
        self._check(address, 1)
        return self.memory[address]

    def write8(self, address: int, value: int) -> None:
        self._check(address, 1)
        self.memory[address] = value & 0xFF

    # -- stack --------------------------------------------------------------

    def push(self, value: int) -> None:
        self.regs[ESP] = (self.regs[ESP] - 4) & 0xFFFFFFFF
        self.write32(self.regs[ESP], value)

    def pop(self) -> int:
        value = self.read32(self.regs[ESP])
        self.regs[ESP] = (self.regs[ESP] + 4) & 0xFFFFFFFF
        return value

    # -- flags ----------------------------------------------------------------

    def _set_logic_flags(self, result: int) -> None:
        result &= 0xFFFFFFFF
        self.flags.zf = result == 0
        self.flags.sf = bool(result >> 31)
        self.flags.cf = False
        self.flags.of = False

    def _set_add_flags(self, a: int, b: int, result: int) -> None:
        masked = result & 0xFFFFFFFF
        self.flags.zf = masked == 0
        self.flags.sf = bool(masked >> 31)
        self.flags.cf = result > 0xFFFFFFFF
        sa, sb, sr = a >> 31, b >> 31, masked >> 31
        self.flags.of = (sa == sb) and (sr != sa)

    def _set_sub_flags(self, a: int, b: int) -> None:
        result = (a - b) & 0xFFFFFFFF
        self.flags.zf = result == 0
        self.flags.sf = bool(result >> 31)
        self.flags.cf = a < b
        sa, sb, sr = a >> 31, b >> 31, result >> 31
        self.flags.of = (sa != sb) and (sr != sa)

    def _condition(self, cc: int) -> bool:
        f = self.flags
        table = {
            0x2: f.cf,                      # b
            0x3: not f.cf,                  # ae
            0x4: f.zf,                      # e
            0x5: not f.zf,                  # ne
            0x6: f.cf or f.zf,              # be
            0x7: not (f.cf or f.zf),        # a
            0xC: f.sf != f.of,              # l
            0xD: f.sf == f.of,              # ge
            0xE: f.zf or (f.sf != f.of),    # le
            0xF: not f.zf and f.sf == f.of, # g
        }
        if cc not in table:
            raise X86MachineError(f"unsupported condition code {cc:#x}")
        return table[cc]

    # -- ModRM operand resolution ------------------------------------------------

    def _effective_address(self, instr: X86Instruction) -> int:
        mod, _reg, rm = modrm_fields(instr.modrm)
        if mod == 3:
            raise X86MachineError("register form has no effective address")
        if rm == 4:
            raise X86MachineError("SIB addressing not supported by interpreter")
        if mod == 0 and rm == 5:
            return int.from_bytes(instr.disp, "little")
        base = self.regs[rm]
        disp = 0
        if instr.disp:
            disp = int.from_bytes(instr.disp, "little", signed=True)
        return (base + disp) & 0xFFFFFFFF

    def _read_rm32(self, instr: X86Instruction) -> int:
        mod, _reg, rm = modrm_fields(instr.modrm)
        if mod == 3:
            return self.regs[rm]
        return self.read32(self._effective_address(instr))

    def _write_rm32(self, instr: X86Instruction, value: int) -> None:
        mod, _reg, rm = modrm_fields(instr.modrm)
        if mod == 3:
            self.regs[rm] = value & 0xFFFFFFFF
        else:
            self.write32(self._effective_address(instr), value)

    def _read_rm8(self, instr: X86Instruction) -> int:
        mod, _reg, rm = modrm_fields(instr.modrm)
        if mod == 3:
            return self.regs[rm] & 0xFF  # low byte registers only
        return self.read8(self._effective_address(instr))

    def _write_rm8(self, instr: X86Instruction, value: int) -> None:
        mod, _reg, rm = modrm_fields(instr.modrm)
        if mod == 3:
            self.regs[rm] = (self.regs[rm] & 0xFFFFFF00) | (value & 0xFF)
        else:
            self.write8(self._effective_address(instr), value)

    # -- execution -------------------------------------------------------------

    def fetch_instruction(self) -> X86Instruction:
        if self._fetch_bytes is not None:
            window = self._fetch_bytes(self.eip, self.MAX_INSTRUCTION_BYTES)
        else:
            end = min(len(self.memory), self.eip + self.MAX_INSTRUCTION_BYTES)
            window = bytes(self.memory[self.eip : end])
        return decode_one(window)

    def step(self) -> None:
        if self.halted:
            raise X86MachineError("machine is halted")
        instr = self.fetch_instruction()
        self.instructions_executed += 1
        self.eip = self._execute(instr, self.eip + instr.length)

    def run(self, max_instructions: int = 1_000_000) -> None:
        while not self.halted:
            if self.instructions_executed >= max_instructions:
                raise X86MachineError(
                    f"instruction budget {max_instructions} exhausted"
                )
            self.step()

    # -- semantics ----------------------------------------------------------------

    _ALU_BY_REG = {0: "add", 1: "or", 4: "and", 5: "sub", 6: "xor", 7: "cmp"}

    def _alu(self, name: str, a: int, b: int) -> Optional[int]:
        """Perform an ALU op, set flags, return result (None for cmp)."""
        if name == "add":
            result = a + b
            self._set_add_flags(a, b, result)
            return result & 0xFFFFFFFF
        if name == "sub":
            self._set_sub_flags(a, b)
            return (a - b) & 0xFFFFFFFF
        if name == "cmp":
            self._set_sub_flags(a, b)
            return None
        if name == "and":
            result = a & b
        elif name == "or":
            result = a | b
        elif name == "xor":
            result = a ^ b
        else:
            raise X86MachineError(f"unsupported ALU op {name!r}")
        self._set_logic_flags(result)
        return result & 0xFFFFFFFF

    _ALU_RM_R = {0x01: "add", 0x09: "or", 0x21: "and", 0x29: "sub",
                 0x31: "xor", 0x39: "cmp"}
    _ALU_R_RM = {0x03: "add", 0x0B: "or", 0x23: "and", 0x2B: "sub",
                 0x33: "xor", 0x3B: "cmp"}

    def _execute(self, instr: X86Instruction, next_eip: int) -> int:
        opcode = instr.opcode
        op = opcode[-1]

        if len(opcode) == 2:  # 0F xx
            return self._execute_0f(instr, op, next_eip)

        if op == 0x90:  # nop
            return next_eip
        if op in self._ALU_RM_R:  # op r/m32, r32
            _mod, reg, _rm = modrm_fields(instr.modrm)
            result = self._alu(self._ALU_RM_R[op], self._read_rm32(instr),
                               self.regs[reg])
            if result is not None:
                self._write_rm32(instr, result)
            return next_eip
        if op in self._ALU_R_RM:  # op r32, r/m32
            _mod, reg, _rm = modrm_fields(instr.modrm)
            result = self._alu(self._ALU_R_RM[op], self.regs[reg],
                               self._read_rm32(instr))
            if result is not None:
                self.regs[reg] = result
            return next_eip
        if op in (0x83, 0x81):  # grp1 r/m32, imm8/imm32
            _mod, reg, _rm = modrm_fields(instr.modrm)
            if reg not in self._ALU_BY_REG:
                raise X86MachineError(f"unsupported grp1 /{reg}")
            imm = int.from_bytes(instr.imm, "little", signed=True) & 0xFFFFFFFF
            result = self._alu(self._ALU_BY_REG[reg],
                               self._read_rm32(instr), imm)
            if result is not None:
                self._write_rm32(instr, result)
            return next_eip
        if op == 0x85:  # test r/m32, r32
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self._set_logic_flags(self._read_rm32(instr) & self.regs[reg])
            return next_eip
        if op == 0x89:  # mov r/m32, r32
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self._write_rm32(instr, self.regs[reg])
            return next_eip
        if op == 0x8B:  # mov r32, r/m32
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self.regs[reg] = self._read_rm32(instr)
            return next_eip
        if op == 0x88:  # mov r/m8, r8
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self._write_rm8(instr, self.regs[reg] & 0xFF)
            return next_eip
        if op == 0x8A:  # mov r8, r/m8
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self.regs[reg] = (self.regs[reg] & 0xFFFFFF00) | self._read_rm8(instr)
            return next_eip
        if op == 0x8D:  # lea r32, m
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self.regs[reg] = self._effective_address(instr)
            return next_eip
        if 0xB8 <= op <= 0xBF:  # mov r32, imm32
            self.regs[op - 0xB8] = int.from_bytes(instr.imm, "little")
            return next_eip
        if 0x50 <= op <= 0x57:  # push r32
            self.push(self.regs[op - 0x50])
            return next_eip
        if 0x58 <= op <= 0x5F:  # pop r32
            self.regs[op - 0x58] = self.pop()
            return next_eip
        if 0x40 <= op <= 0x47:  # inc r32 (CF unaffected)
            reg = op - 0x40
            saved_cf = self.flags.cf
            result = self._alu("add", self.regs[reg], 1)
            self.regs[reg] = result
            self.flags.cf = saved_cf
            return next_eip
        if 0x48 <= op <= 0x4F:  # dec r32 (CF unaffected)
            reg = op - 0x48
            saved_cf = self.flags.cf
            self._set_sub_flags(self.regs[reg], 1)
            self.regs[reg] = (self.regs[reg] - 1) & 0xFFFFFFFF
            self.flags.cf = saved_cf
            return next_eip
        if 0x70 <= op <= 0x7F:  # jcc rel8
            if self._condition(op - 0x70):
                return next_eip + sign_extend(instr.imm[0], 8)
            return next_eip
        if op == 0xEB:  # jmp rel8
            return next_eip + sign_extend(instr.imm[0], 8)
        if op == 0xE9:  # jmp rel32
            return next_eip + int.from_bytes(instr.imm, "little", signed=True)
        if op == 0xE8:  # call rel32
            self.push(next_eip)
            self.call_depth += 1
            return next_eip + int.from_bytes(instr.imm, "little", signed=True)
        if op == 0xC3:  # ret (halts at depth 0)
            if self.call_depth == 0:
                self.halted = True
                return next_eip
            self.call_depth -= 1
            return self.pop()
        if op == 0xC9:  # leave
            self.regs[ESP] = self.regs[EBP]
            self.regs[EBP] = self.pop()
            return next_eip
        raise X86MachineError(
            f"no semantics for opcode {opcode.hex()} "
            f"({instr.info.name})"
        )

    def _execute_0f(self, instr: X86Instruction, op: int, next_eip: int) -> int:
        if op == 0xB6:  # movzx r32, r/m8
            _mod, reg, _rm = modrm_fields(instr.modrm)
            self.regs[reg] = self._read_rm8(instr)
            return next_eip
        if 0x80 <= op <= 0x8F:  # jcc rel32
            if self._condition(op - 0x80):
                return next_eip + int.from_bytes(instr.imm, "little",
                                                 signed=True)
            return next_eip
        raise X86MachineError(f"no semantics for 0F {op:02x}")
