"""Structural IA-32 instruction model: grammar, length decoder, streams."""

from repro.isa.x86.formats import (
    ONE_BYTE_TABLE,
    TWO_BYTE_TABLE,
    X86DecodeError,
    X86Instruction,
    X86OpcodeInfo,
    decode_all,
    decode_one,
    modrm_fields,
)
from repro.isa.x86.interp import X86Machine, X86MachineError
from repro.isa.x86.streams import X86Streams, merge_streams, split_streams

__all__ = [
    "ONE_BYTE_TABLE",
    "TWO_BYTE_TABLE",
    "X86DecodeError",
    "X86Instruction",
    "X86Machine",
    "X86MachineError",
    "X86OpcodeInfo",
    "X86Streams",
    "decode_all",
    "decode_one",
    "merge_streams",
    "modrm_fields",
    "split_streams",
]
