"""SADC stream subdivision for x86 (Section 5 of the paper).

On Pentium the paper forms **three byte-wide streams**: opcode bytes
(including prefixes), ModRM + SIB bytes, and immediate + displacement
bytes.  All streams are sequences of whole bytes ("The Pentium streams
are 8 consecutive bits wide"), so the Pentium decompressor needs no
instruction-generator bit-scatter unit.

As with MIPS, the split is invertible given the opcode grammar: the
lengths of the ModRM/SIB/disp/imm pieces are implied by the opcode and
ModRM bytes themselves, so :func:`merge_streams` can re-interleave the
streams without side information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.x86.formats import X86Instruction, decode_all


@dataclass
class X86Streams:
    """The three SADC byte streams for an x86 code image."""

    opcodes: bytes = b""
    modrm_sib: bytes = b""
    imm_disp: bytes = b""
    #: Per-instruction opcode-stream entry lengths (prefixes + opcode
    #: bytes), needed to walk the opcode stream instruction-by-instruction.
    opcode_lengths: List[int] = field(default_factory=list)

    def bit_sizes(self) -> Dict[str, int]:
        """Raw size of each stream in bits."""
        return {
            "opcodes": 8 * len(self.opcodes),
            "modrm_sib": 8 * len(self.modrm_sib),
            "imm_disp": 8 * len(self.imm_disp),
        }

    def total_bits(self) -> int:
        return sum(self.bit_sizes().values())


def split_streams(code: bytes) -> X86Streams:
    """Split an x86 code image into opcode / ModRM+SIB / imm+disp streams."""
    opcodes = bytearray()
    modrm_sib = bytearray()
    imm_disp = bytearray()
    lengths: List[int] = []
    for instruction in decode_all(code):
        entry = instruction.prefixes + instruction.opcode
        opcodes.extend(entry)
        lengths.append(len(entry))
        if instruction.modrm is not None:
            modrm_sib.append(instruction.modrm)
        if instruction.sib is not None:
            modrm_sib.append(instruction.sib)
        imm_disp.extend(instruction.disp)
        imm_disp.extend(instruction.imm)
    return X86Streams(
        opcodes=bytes(opcodes),
        modrm_sib=bytes(modrm_sib),
        imm_disp=bytes(imm_disp),
        opcode_lengths=lengths,
    )


def merge_streams(streams: X86Streams) -> bytes:
    """Re-interleave the three streams back into a code image.

    Walks the opcode stream entry-by-entry; for each instruction the
    opcode grammar plus the next ModRM/SIB bytes determine how many
    displacement and immediate bytes to pull, mirroring the control-logic
    unit of the paper's decompressor.
    """
    # Reconstruct instruction boundaries in the opcode stream, then decode
    # a synthetic interleaving.  We rebuild by re-running the structural
    # decoder over a merged buffer assembled instruction at a time.
    out = bytearray()
    op_pos = 0
    ms_pos = 0
    id_pos = 0
    for entry_len in streams.opcode_lengths:
        entry = streams.opcodes[op_pos : op_pos + entry_len]
        op_pos += entry_len
        instruction, n_ms, n_id = _reassemble_one(
            entry, streams.modrm_sib, ms_pos, streams.imm_disp, id_pos
        )
        ms_pos += n_ms
        id_pos += n_id
        out.extend(instruction.encode())
    return bytes(out)


def _reassemble_one(
    entry: bytes,
    modrm_sib: bytes,
    ms_pos: int,
    imm_disp: bytes,
    id_pos: int,
) -> tuple:
    """Rebuild one instruction from its opcode-stream entry plus the next
    bytes of the ModRM+SIB and imm+disp streams.

    Returns ``(instruction, modrm_sib_bytes_consumed, imm_disp_bytes_consumed)``.
    The opcode grammar plus the ModRM byte fully determine the field
    lengths, mirroring the control-logic unit of the paper's decompressor.
    """
    from repro.isa.x86.formats import (
        IMM_NONE,
        ONE_BYTE_TABLE,
        OPERAND_SIZE_PREFIX,
        TWO_BYTE_TABLE,
        _disp_size,
        _imm_size,
        modrm_fields,
    )

    if len(entry) >= 2 and entry[-2] == 0x0F:
        prefixes, opcode = entry[:-2], entry[-2:]
    else:
        prefixes, opcode = entry[:-1], entry[-1:]
    if len(opcode) == 2:
        info = TWO_BYTE_TABLE[opcode[1]]
    else:
        info = ONE_BYTE_TABLE[opcode[0]]

    modrm = None
    sib = None
    n_ms = 0
    if info.has_modrm:
        modrm = modrm_sib[ms_pos]
        n_ms = 1
        mod, _reg, rm = modrm_fields(modrm)
        if mod != 3 and rm == 4:
            sib = modrm_sib[ms_pos + 1]
            n_ms = 2

    mod, reg, rm = modrm_fields(modrm) if modrm is not None else (3, 0, 0)
    disp_len = _disp_size(mod, rm, sib) if modrm is not None else 0
    imm_kind = info.imm
    if info.imm_by_reg is not None:
        imm_kind = info.imm_by_reg.get(reg, IMM_NONE)
    imm_len = _imm_size(imm_kind, OPERAND_SIZE_PREFIX in prefixes)

    disp = imm_disp[id_pos : id_pos + disp_len]
    imm = imm_disp[id_pos + disp_len : id_pos + disp_len + imm_len]
    instruction = X86Instruction(
        prefixes=bytes(prefixes), opcode=bytes(opcode), modrm=modrm, sib=sib,
        disp=bytes(disp), imm=bytes(imm),
    )
    return instruction, n_ms, disp_len + imm_len
