"""A structural IA-32 (Pentium Pro era) instruction model.

x86 instructions are variable length::

    [prefixes] opcode(1-2) [ModRM] [SIB] [disp 0/1/4] [imm 0/1/2/4]

The paper's x86 experiments need exactly this structural decomposition:
SADC on Pentium forms three byte streams — opcode bytes, ModRM+SIB bytes,
and immediate+displacement bytes — and file-oriented baselines just see
the raw bytes.  We therefore model the *encoding grammar* (which bytes an
instruction comprises and why), not execution semantics.

The opcode inventory covers what a 1990s C compiler emits: MOV, the ALU
group, PUSH/POP, LEA, TEST, INC/DEC, shifts, IMUL, Jcc/JMP/CALL/RET,
LEAVE, SETcc, MOVZX/MOVSX, and NOP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Immediate kinds.  ``iz`` is 4 bytes (2 with an operand-size prefix).
IMM_NONE = "none"
IMM_IB = "ib"  # 1 byte
IMM_IW = "iw"  # 2 bytes
IMM_IZ = "iz"  # 4 bytes (2 with 0x66 prefix)

#: Recognised prefixes (operand size, address size, the common segment
#: overrides, REP/REPNE, LOCK).
PREFIXES = frozenset({0x66, 0x67, 0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65, 0xF0, 0xF2, 0xF3})

OPERAND_SIZE_PREFIX = 0x66

#: Bit-field tilings of the fixed-layout operand bytes, as
#: ``(field, msb_start, width)`` triples.  x86 opcodes are a
#: variable-length grammar, but ModRM and SIB are rigid 8-bit tilings
#: — which ``repro verify`` checks statically, like the MIPS formats.
FIELD_LAYOUTS: Dict[str, Tuple[Tuple[str, int, int], ...]] = {
    "modrm": (("mod", 0, 2), ("reg", 2, 3), ("rm", 5, 3)),
    "sib": (("scale", 0, 2), ("index", 2, 3), ("base", 5, 3)),
}


@dataclass(frozen=True)
class X86OpcodeInfo:
    """Encoding grammar for one opcode byte (or 0F-escaped byte)."""

    name: str
    has_modrm: bool = False
    imm: str = IMM_NONE
    #: For group opcodes whose immediate depends on the ModRM reg field
    #: (e.g. F7 /0 TEST has imm32, F7 /3 NEG has none), maps reg -> imm kind.
    imm_by_reg: Optional[Dict[int, str]] = None


def _alu_block(base: int, name: str) -> Dict[int, X86OpcodeInfo]:
    """The classic 6-opcode ALU pattern at ``base``: /r forms + imm forms."""
    return {
        base + 0: X86OpcodeInfo(f"{name} r/m8, r8", has_modrm=True),
        base + 1: X86OpcodeInfo(f"{name} r/m32, r32", has_modrm=True),
        base + 2: X86OpcodeInfo(f"{name} r8, r/m8", has_modrm=True),
        base + 3: X86OpcodeInfo(f"{name} r32, r/m32", has_modrm=True),
        base + 4: X86OpcodeInfo(f"{name} al, imm8", imm=IMM_IB),
        base + 5: X86OpcodeInfo(f"{name} eax, imm32", imm=IMM_IZ),
    }


ONE_BYTE_TABLE: Dict[int, X86OpcodeInfo] = {}
for _base, _name in (
    (0x00, "add"), (0x08, "or"), (0x10, "adc"), (0x18, "sbb"),
    (0x20, "and"), (0x28, "sub"), (0x30, "xor"), (0x38, "cmp"),
):
    ONE_BYTE_TABLE.update(_alu_block(_base, _name))

for _reg in range(8):
    ONE_BYTE_TABLE[0x40 + _reg] = X86OpcodeInfo(f"inc r{_reg}")
    ONE_BYTE_TABLE[0x48 + _reg] = X86OpcodeInfo(f"dec r{_reg}")
    ONE_BYTE_TABLE[0x50 + _reg] = X86OpcodeInfo(f"push r{_reg}")
    ONE_BYTE_TABLE[0x58 + _reg] = X86OpcodeInfo(f"pop r{_reg}")
    ONE_BYTE_TABLE[0xB0 + _reg] = X86OpcodeInfo(f"mov r{_reg}b, imm8", imm=IMM_IB)
    ONE_BYTE_TABLE[0xB8 + _reg] = X86OpcodeInfo(f"mov r{_reg}, imm32", imm=IMM_IZ)

ONE_BYTE_TABLE.update({
    0x68: X86OpcodeInfo("push imm32", imm=IMM_IZ),
    0x69: X86OpcodeInfo("imul r32, r/m32, imm32", has_modrm=True, imm=IMM_IZ),
    0x6A: X86OpcodeInfo("push imm8", imm=IMM_IB),
    0x6B: X86OpcodeInfo("imul r32, r/m32, imm8", has_modrm=True, imm=IMM_IB),
    0x80: X86OpcodeInfo("grp1 r/m8, imm8", has_modrm=True, imm=IMM_IB),
    0x81: X86OpcodeInfo("grp1 r/m32, imm32", has_modrm=True, imm=IMM_IZ),
    0x83: X86OpcodeInfo("grp1 r/m32, imm8", has_modrm=True, imm=IMM_IB),
    0x84: X86OpcodeInfo("test r/m8, r8", has_modrm=True),
    0x85: X86OpcodeInfo("test r/m32, r32", has_modrm=True),
    0x88: X86OpcodeInfo("mov r/m8, r8", has_modrm=True),
    0x89: X86OpcodeInfo("mov r/m32, r32", has_modrm=True),
    0x8A: X86OpcodeInfo("mov r8, r/m8", has_modrm=True),
    0x8B: X86OpcodeInfo("mov r32, r/m32", has_modrm=True),
    0x8D: X86OpcodeInfo("lea r32, m", has_modrm=True),
    0x90: X86OpcodeInfo("nop"),
    0x98: X86OpcodeInfo("cwde"),
    0x99: X86OpcodeInfo("cdq"),
    0xA8: X86OpcodeInfo("test al, imm8", imm=IMM_IB),
    0xA9: X86OpcodeInfo("test eax, imm32", imm=IMM_IZ),
    0xC0: X86OpcodeInfo("grp2 r/m8, imm8", has_modrm=True, imm=IMM_IB),
    0xC1: X86OpcodeInfo("grp2 r/m32, imm8", has_modrm=True, imm=IMM_IB),
    0xC2: X86OpcodeInfo("ret imm16", imm=IMM_IW),
    0xC3: X86OpcodeInfo("ret"),
    0xC6: X86OpcodeInfo("mov r/m8, imm8", has_modrm=True, imm=IMM_IB),
    0xC7: X86OpcodeInfo("mov r/m32, imm32", has_modrm=True, imm=IMM_IZ),
    0xC9: X86OpcodeInfo("leave"),
    0xD1: X86OpcodeInfo("grp2 r/m32, 1", has_modrm=True),
    0xD3: X86OpcodeInfo("grp2 r/m32, cl", has_modrm=True),
    0xE8: X86OpcodeInfo("call rel32", imm=IMM_IZ),
    0xE9: X86OpcodeInfo("jmp rel32", imm=IMM_IZ),
    0xEB: X86OpcodeInfo("jmp rel8", imm=IMM_IB),
    0xF6: X86OpcodeInfo(
        "grp3 r/m8", has_modrm=True,
        imm_by_reg={0: IMM_IB, 1: IMM_IB},
    ),
    0xF7: X86OpcodeInfo(
        "grp3 r/m32", has_modrm=True,
        imm_by_reg={0: IMM_IZ, 1: IMM_IZ},
    ),
    0xFE: X86OpcodeInfo("grp4 r/m8", has_modrm=True),
    0xFF: X86OpcodeInfo("grp5 r/m32", has_modrm=True),
})

for _cc in range(16):
    ONE_BYTE_TABLE[0x70 + _cc] = X86OpcodeInfo(f"jcc{_cc} rel8", imm=IMM_IB)

TWO_BYTE_TABLE: Dict[int, X86OpcodeInfo] = {
    0xAF: X86OpcodeInfo("imul r32, r/m32", has_modrm=True),
    0xB6: X86OpcodeInfo("movzx r32, r/m8", has_modrm=True),
    0xB7: X86OpcodeInfo("movzx r32, r/m16", has_modrm=True),
    0xBE: X86OpcodeInfo("movsx r32, r/m8", has_modrm=True),
    0xBF: X86OpcodeInfo("movsx r32, r/m16", has_modrm=True),
    0xA2: X86OpcodeInfo("cpuid"),
    0x31: X86OpcodeInfo("rdtsc"),
}
for _cc in range(16):
    TWO_BYTE_TABLE[0x80 + _cc] = X86OpcodeInfo(f"jcc{_cc} rel32", imm=IMM_IZ)
    TWO_BYTE_TABLE[0x90 + _cc] = X86OpcodeInfo(f"setcc{_cc} r/m8", has_modrm=True)


@dataclass
class X86Instruction:
    """One decoded x86 instruction, broken into its structural pieces."""

    prefixes: bytes = b""
    opcode: bytes = b"\x90"
    modrm: Optional[int] = None
    sib: Optional[int] = None
    disp: bytes = b""
    imm: bytes = b""

    @property
    def length(self) -> int:
        """Total encoded length in bytes."""
        return (
            len(self.prefixes)
            + len(self.opcode)
            + (1 if self.modrm is not None else 0)
            + (1 if self.sib is not None else 0)
            + len(self.disp)
            + len(self.imm)
        )

    @property
    def info(self) -> X86OpcodeInfo:
        """The grammar entry for this instruction's opcode."""
        if len(self.opcode) == 2:
            return TWO_BYTE_TABLE[self.opcode[1]]
        return ONE_BYTE_TABLE[self.opcode[0]]

    def encode(self) -> bytes:
        """Serialise back to machine bytes."""
        out = bytearray(self.prefixes)
        out.extend(self.opcode)
        if self.modrm is not None:
            out.append(self.modrm)
        if self.sib is not None:
            out.append(self.sib)
        out.extend(self.disp)
        out.extend(self.imm)
        return bytes(out)


def modrm_fields(modrm: int) -> Tuple[int, int, int]:
    """Split a ModRM byte into (mod, reg, rm)."""
    return (modrm >> 6) & 0x3, (modrm >> 3) & 0x7, modrm & 0x7


def _disp_size(mod: int, rm: int, sib: Optional[int]) -> int:
    """Displacement size implied by ModRM (32-bit addressing)."""
    if mod == 0:
        if rm == 5:
            return 4
        if sib is not None and (sib & 0x7) == 5:
            return 4
        return 0
    if mod == 1:
        return 1
    if mod == 2:
        return 4
    return 0  # mod == 3: register operand, no displacement


def _imm_size(kind: str, operand_size_override: bool) -> int:
    if kind == IMM_NONE:
        return 0
    if kind == IMM_IB:
        return 1
    if kind == IMM_IW:
        return 2
    if kind == IMM_IZ:
        return 2 if operand_size_override else 4
    raise ValueError(f"unknown immediate kind {kind!r}")


class X86DecodeError(ValueError):
    """Raised when a byte sequence is not a modelled x86 instruction."""


def decode_one(code: bytes, offset: int = 0) -> X86Instruction:
    """Decode the instruction starting at ``offset``.

    This is a *length* decoder: it recovers the structural decomposition
    (prefixes / opcode / ModRM / SIB / disp / imm) that stream subdivision
    and the decompressor block diagram rely on.
    """
    pos = offset
    prefixes = bytearray()
    while pos < len(code) and code[pos] in PREFIXES:
        prefixes.append(code[pos])
        pos += 1
        if len(prefixes) > 4:
            raise X86DecodeError(f"too many prefixes at offset {offset}")
    if pos >= len(code):
        raise X86DecodeError(f"truncated instruction at offset {offset}")

    if code[pos] == 0x0F:
        if pos + 1 >= len(code):
            raise X86DecodeError(f"truncated 0F opcode at offset {offset}")
        opcode = bytes(code[pos : pos + 2])
        info = TWO_BYTE_TABLE.get(code[pos + 1])
        pos += 2
    else:
        opcode = bytes(code[pos : pos + 1])
        info = ONE_BYTE_TABLE.get(code[pos])
        pos += 1
    if info is None:
        raise X86DecodeError(f"unknown opcode {opcode.hex()} at offset {offset}")

    modrm = None
    sib = None
    if info.has_modrm:
        if pos >= len(code):
            raise X86DecodeError(f"truncated ModRM at offset {offset}")
        modrm = code[pos]
        pos += 1
        mod, _reg, rm = modrm_fields(modrm)
        if mod != 3 and rm == 4:
            if pos >= len(code):
                raise X86DecodeError(f"truncated SIB at offset {offset}")
            sib = code[pos]
            pos += 1

    mod, reg, rm = modrm_fields(modrm) if modrm is not None else (3, 0, 0)
    disp_len = _disp_size(mod, rm, sib) if modrm is not None else 0
    disp = bytes(code[pos : pos + disp_len])
    if len(disp) != disp_len:
        raise X86DecodeError(f"truncated displacement at offset {offset}")
    pos += disp_len

    imm_kind = info.imm
    if info.imm_by_reg is not None:
        imm_kind = info.imm_by_reg.get(reg, IMM_NONE)
    imm_len = _imm_size(imm_kind, OPERAND_SIZE_PREFIX in prefixes)
    imm = bytes(code[pos : pos + imm_len])
    if len(imm) != imm_len:
        raise X86DecodeError(f"truncated immediate at offset {offset}")

    return X86Instruction(
        prefixes=bytes(prefixes), opcode=opcode, modrm=modrm, sib=sib,
        disp=disp, imm=imm,
    )


def decode_all(code: bytes) -> List[X86Instruction]:
    """Decode an entire code image into its instruction sequence."""
    out: List[X86Instruction] = []
    pos = 0
    while pos < len(code):
        instruction = decode_one(code, pos)
        out.append(instruction)
        pos += instruction.length
    return out
