"""Instruction-set architecture models (MIPS and x86)."""
