"""Command-line interface: ``python -m repro`` or ``repro-codec``.

Subcommands
-----------
``ratio``       one benchmark × one algorithm → compression ratio
``suite``       a Figure-7/8 style sweep for one ISA
``figure``      regenerate fig7 / fig8 / fig9 directly
``simulate``    run the decompress-on-miss memory-system simulation
``stats``       run a sweep with telemetry on; render bit attribution
``bench-diff``  compare two BENCH_codec.json snapshots, flag regressions
``check``       static verification: codec invariants + repo lint rules
``fuzz``        deterministic fault injection: decoders or the live service
``serve``       run the compression service daemon
``loadgen``     drive a running daemon with a paced mixed workload
``soak``        chaos soak: loadgen through the seeded fault proxy
``trace``       trace one request end-to-end; emit a Chrome trace JSON
``top``         live dashboard over a running daemon's ``stats`` op
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    ALL_ALGORITHMS,
    FIGURE_ALGORITHMS,
    average_ratios,
    compression_ratio,
    run_suite_with_report,
)
from repro.analysis.tables import format_averages, format_mapping, format_suite
from repro.baselines.byte_huffman import ByteHuffmanCodec
from repro.cli_report import emit_json, print_lines, report_failures
from repro.core import decompress_image, load_image, save_image
from repro.core.sadc import sadc_compress
from repro.core.samc import SamcCodec
from repro.memory import CompressedMemorySystem, RefillTiming, generate_trace
from repro.resilience.errors import CorruptedStreamError
from repro.workloads.profiles import BENCHMARK_NAMES
from repro.workloads.suite import generate_benchmark


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--isa", choices=("mips", "x86"), default="mips")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="benchmark size multiplier")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--block-size", type=int, default=32)


def _add_pipeline(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = serial reference path)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist compression results, keyed by "
                             "SHA-256(code image) + codec config")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable result caching entirely")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-run a failing job up to N times before "
                             "recording it as failed (default 0)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock budget; enforced on the "
                             "pool path (--jobs > 1), over-budget jobs are "
                             "recorded as failures")


def _make_cache(args: argparse.Namespace):
    from repro.pipeline import NullCache, ResultCache

    if args.no_cache:
        return NullCache()
    return ResultCache(args.cache_dir)


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--obs", action="store_true",
                        help="enable codec telemetry; bit-attribution and "
                             "span summaries go to stderr (stdout is "
                             "unchanged)")


def _obs_context(args: argparse.Namespace):
    """An :func:`repro.obs.obs_session` when ``--obs`` was passed, else a
    no-op context yielding ``None``."""
    from contextlib import nullcontext

    from repro.obs import obs_session

    if getattr(args, "obs", False):
        return obs_session()
    return nullcontext(None)


def _print_obs_summary(recorder) -> None:
    """Render a session recorder's telemetry to stderr."""
    from repro.obs.render import format_bits_table, format_span_tree

    snapshot = recorder.snapshot()
    print(format_bits_table(snapshot["bits"]), file=sys.stderr)
    print(file=sys.stderr)
    print(format_span_tree(snapshot["spans"]), file=sys.stderr)


def _cmd_ratio(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.isa, args.scale, args.seed)
    ratio = compression_ratio(program.code, args.algorithm, args.isa, args.block_size)
    print(f"{args.benchmark}/{args.isa} {args.algorithm}: "
          f"{len(program.code)} bytes, ratio {ratio:.3f}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    with _obs_context(args) as recorder:
        rows, report = run_suite_with_report(
            args.isa,
            algorithms=args.algorithms,
            scale=args.scale,
            block_size=args.block_size,
            names=args.benchmarks or None,
            seed=args.seed,
            jobs=args.jobs,
            cache=_make_cache(args),
            job_timeout=args.job_timeout,
            retries=args.retries,
        )
        print(format_suite(rows, title=f"Compression ratios — {args.isa}"))
        # Timing/cache counters go to stderr: stdout stays bit-identical
        # across --jobs widths and cache states.
        print(report.format(), file=sys.stderr)
        if recorder is not None:
            _print_obs_summary(recorder)
    # A degraded (partial-table) run exits non-zero so scripts notice.
    return 1 if report.failures else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    with _obs_context(args) as recorder:
        status = _run_figure(args, cache)
        if status == 0 and recorder is not None:
            _print_obs_summary(recorder)
    return status


def _run_figure(args: argparse.Namespace, cache) -> int:
    if args.name in ("fig7", "fig8"):
        isa = "mips" if args.name == "fig7" else "x86"
        rows, report = run_suite_with_report(
            isa, FIGURE_ALGORITHMS, scale=args.scale, seed=args.seed,
            jobs=args.jobs, cache=cache,
            job_timeout=args.job_timeout, retries=args.retries,
        )
        print(format_suite(rows, title=f"Figure {args.name[-1]} — {isa} ratios"))
        print(report.format(), file=sys.stderr)
        return 1 if report.failures else 0
    if args.name == "fig9":
        averages = {}
        degraded = False
        for isa in ("mips", "x86"):
            rows, report = run_suite_with_report(
                isa, ("huffman", "SAMC", "SADC"), scale=args.scale,
                seed=args.seed, jobs=args.jobs, cache=cache,
                job_timeout=args.job_timeout, retries=args.retries,
            )
            averages[isa] = average_ratios(rows)
            degraded = degraded or bool(report.failures)
            print(report.format(), file=sys.stderr)
        print(format_averages(averages, title="Figure 9 — average ratios"))
        return 1 if degraded else 0
    print(f"unknown figure {args.name!r}", file=sys.stderr)
    return 2


def _cmd_simulate(args: argparse.Namespace) -> int:
    with _obs_context(args) as recorder:
        status = _run_simulate(args)
        if status == 0 and recorder is not None:
            _print_obs_summary(recorder)
    return status


def _run_simulate(args: argparse.Namespace) -> int:
    program = generate_benchmark(args.benchmark, args.isa, args.scale, args.seed)
    if args.algorithm == "SAMC":
        codec = (SamcCodec.for_mips() if args.isa == "mips"
                 else SamcCodec.for_bytes())
        image = codec.compress(program.code)
    elif args.algorithm == "SADC":
        image = sadc_compress(program.code, isa=args.isa)
    else:
        print("simulate supports SAMC or SADC", file=sys.stderr)
        return 2
    trace = list(generate_trace(len(program.code), args.fetches, seed=args.seed))
    timing = RefillTiming()
    baseline = CompressedMemorySystem(
        len(program.code), image=None, cache_size=args.cache_size, timing=timing
    ).run(trace)
    compressed = CompressedMemorySystem(
        len(program.code), image=image, cache_size=args.cache_size, timing=timing
    ).run(trace)
    print(format_mapping({
        "benchmark": program.name,
        "algorithm": image.algorithm,
        "compression ratio": image.compression_ratio,
        "icache hit ratio": compressed.cache.hit_ratio,
        "clb hit ratio": compressed.clb.hit_ratio if compressed.clb else 1.0,
        "baseline cycles": baseline.cycles,
        "compressed cycles": compressed.cycles,
        "slowdown": compressed.slowdown_vs(baseline),
    }, title=f"Memory-system simulation — {args.benchmark}/{args.isa}"))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.entropy_report import analyze_mips

    program = generate_benchmark(args.benchmark, "mips", args.scale, args.seed)
    report = analyze_mips(program.code)
    print(format_mapping(
        report.summary(),
        title=f"Compressibility analysis — {args.benchmark}/mips",
    ))
    achieved = compression_ratio(program.code, "SAMC", "mips")
    print(f"\nSAMC achieved ratio: {achieved:.3f} "
          f"(Markov bound {report.markov_bound / 32:.3f} + tables/LAT)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a sweep with telemetry enabled and render the bit attribution.

    Every output bit of every (benchmark, algorithm) cell is attributed
    to a source category (per-stream coder bits, dictionary tokens,
    model tables, LAT, padding…); per-cell totals equal the compressed
    size in bits exactly.  ``--format json`` emits the stable
    ``repro.obs.render.stats_document`` schema on stdout.
    """
    from repro.obs import obs_session
    from repro.obs.render import (
        format_bits_table,
        format_span_tree,
        stats_document,
    )

    with obs_session() as recorder:
        _rows, report = run_suite_with_report(
            args.isa,
            algorithms=args.algorithms,
            scale=args.scale,
            block_size=args.block_size,
            names=args.benchmarks or None,
            seed=args.seed,
            jobs=args.jobs,
            cache=_make_cache(args),
            job_timeout=args.job_timeout,
            retries=args.retries,
        )
        snapshot = recorder.snapshot()
    if args.format == "json":
        emit_json(stats_document(snapshot))
    else:
        print(format_bits_table(snapshot["bits"]))
        print()
        print(format_span_tree(snapshot["spans"]))
    print(report.format(), file=sys.stderr)
    # A degraded sweep (failed cells) must not exit 0: the attribution
    # table is partial, and CI treats stats output as authoritative.
    return report_failures(
        len(report.failures),
        f"stats: {len(report.failures)} benchmark cell(s) failed",
    )


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    """Compare two ``BENCH_codec.json`` snapshots from the benchmark harness.

    A benchmark regresses when its metric (ns/byte when both snapshots
    carry it, otherwise median ns) grew by more than ``--threshold``
    (default 15%).  Exit status 1 when any benchmark regressed — or when
    a benchmark in the baseline is missing from the candidate snapshot
    (a silently dropped benchmark must not read as a pass); benchmarks
    only in the candidate are new and merely reported, and a whole
    benchmark *group* present only in the candidate is reported as a
    new group (exit 0) — adding a benchmark group must never fail the
    gate.  ``--group`` restricts the comparison to one group.
    """
    import json

    with open(args.old) as handle:
        old = json.load(handle)
    with open(args.new) as handle:
        new = json.load(handle)
    old_results = old.get("results", {})
    new_results = new.get("results", {})
    if args.group is not None:
        old_results = {
            name: entry for name, entry in old_results.items()
            if entry.get("group") == args.group
        }
        new_results = {
            name: entry for name, entry in new_results.items()
            if entry.get("group") == args.group
        }
    regressions = []
    missing = []
    lines = []
    old_groups = {e.get("group") for e in old_results.values()}
    new_groups = {e.get("group") for e in new_results.values()}
    for group in sorted(g for g in new_groups - old_groups if g):
        count = sum(
            1 for e in new_results.values() if e.get("group") == group
        )
        lines.append(
            f"group {group!r}: new in {args.new} ({count} benchmark(s))"
        )
    for name in sorted(set(old_results) & set(new_results)):
        before, after = old_results[name], new_results[name]
        if "ns_per_byte" in before and "ns_per_byte" in after:
            metric, b, a = "ns/byte", before["ns_per_byte"], after["ns_per_byte"]
        else:
            metric, b, a = "median ns", before["median_ns"], after["median_ns"]
        if b <= 0:
            continue
        change = a / b - 1.0
        flag = ""
        if change > args.threshold:
            flag = "  <-- REGRESSION"
            regressions.append(name)
        elif change < -args.threshold:
            flag = "  (improved)"
        lines.append(
            f"{name}: {b:.1f} -> {a:.1f} {metric} ({change:+.1%}){flag}"
        )
    for name in sorted(set(old_results) - set(new_results)):
        missing.append(name)
        lines.append(f"{name}: missing from {args.new}  <-- MISSING")
    for name in sorted(set(new_results) - set(old_results)):
        lines.append(f"{name}: only in {args.new}")
    print_lines(lines, empty="no comparable benchmarks")
    if missing:
        report_failures(
            len(missing),
            f"{len(missing)} benchmark(s) from {args.old} missing in "
            f"{args.new}",
        )
    status = report_failures(
        len(regressions),
        f"{len(regressions)} benchmark(s) regressed more than "
        f"{args.threshold:.0%}",
    )
    return 1 if missing else status


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the static verifier: invariants, lint, and flow analyses.

    Layer 1 rebuilds representative codec artifacts from a deterministic
    corpus and checks decodability invariants; layer 2 lints the package
    sources against repo-specific AST rules; layer 3 runs the
    whole-program contract analyses over the project call graph.
    Accepted findings listed in ``.repro-check-baseline.json`` are
    subtracted (auto-detected; ``--no-baseline`` disables, ``--baseline
    PATH`` overrides).  ``--strict`` fails on any non-baselined finding
    (warnings included) — the CI configuration.
    """
    from pathlib import Path

    from repro.verify import exit_status, run_all_checks
    from repro.verify.baseline import (
        apply_baseline,
        default_baseline_path,
        load_baseline,
        write_baseline,
    )

    findings = run_all_checks(
        artifact_scale=args.scale,
        artifacts=not args.no_artifacts,
        lint=not args.no_lint,
        flow=not args.no_flow,
    )

    baseline_path = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif not args.no_baseline:
        baseline_path = default_baseline_path()

    if args.write_baseline:
        target = baseline_path if baseline_path is not None else Path(
            ".repro-check-baseline.json"
        )
        write_baseline(findings, target)
        print(f"wrote {len(findings)} accepted finding(s) to {target}")
        return 0

    matched = 0
    stale: list = []
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"baseline error: {exc}", file=sys.stderr)
            return 2
        findings, matched, stale = apply_baseline(findings, entries)

    if args.format == "json":
        emit_json({
            "findings": [f.to_dict() for f in findings],
            "strict": args.strict,
            "status": exit_status(findings, strict=args.strict),
            "baselined": matched,
            "stale_baseline_entries": len(stale),
        })
    elif args.format == "sarif":
        from repro.verify.sarif import to_sarif

        print(json.dumps(to_sarif(findings), indent=2))
    else:
        print_lines(
            (f.format() for f in findings),
            empty="all checks passed",
        )
        if matched:
            print(
                f"note: {matched} baselined finding(s) suppressed "
                f"({baseline_path})",
                file=sys.stderr,
            )
    for entry in stale:
        print(
            "warning: stale baseline entry (no longer matches): "
            f"{entry['file']}: [{entry['rule']}] {entry['message']}",
            file=sys.stderr,
        )
    errors = sum(f.severity == "error" for f in findings)
    warnings = len(findings) - errors
    failing = len(findings) if args.strict else errors
    report_failures(
        failing,
        f"verification failed: {errors} error(s), {warnings} warning(s)",
    )
    return exit_status(findings, strict=args.strict)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Deterministic fault injection: decoders, or the live service.

    ``--target decoders`` (default) builds real compressed artifacts
    (SAMC, SADC, byte-Huffman, LZW, gzipish), corrupts them with seeded
    faults (bit flips, truncation, splices, duplicated spans, LAT-entry
    edits), and asserts the decode contract: every corrupted input
    either round-trips exactly or raises ``CorruptedStreamError`` —
    within a time budget, never a hang, never a raw low-level exception.

    ``--target service`` drives seeded malformed wire messages at a
    daemon (``--host``/``--port``, or a self-hosted in-process one) and
    asserts the service contract: every request gets a structured reply
    — never a hang, a silent disconnect, a success for garbage, or a
    leaked ``internal`` exception.  Exit 1 on any violation.
    """
    if args.target == "service":
        from repro.service.fuzz import run_service_fuzz

        report = run_service_fuzz(
            seed=args.seed,
            iters=args.iters,
            host=args.host,
            port=args.port,
            time_budget=args.time_budget,
            dump_path=args.flightrec_dump,
        )
        failure_count = report.failure_count
    else:
        from repro.resilience.fuzz import run_fuzz

        report = run_fuzz(
            seed=args.seed,
            iters=args.iters,
            time_budget=args.time_budget,
        )
        failure_count = len(report.failures) + report.timeouts
    if args.format == "json":
        emit_json(report.to_dict())
    else:
        print_lines(report.format_lines(), empty="fuzz: no iterations run")
    status = report_failures(
        failure_count,
        f"fuzz ({args.target}): {failure_count} contract violation(s)",
    )
    return status if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compression service daemon until interrupted.

    SIGTERM and SIGINT both trigger a graceful drain: the listener
    closes (no new connections), every queued and in-flight request is
    answered, and the process exits 0 within ``--drain-deadline``
    seconds — so an orchestrator's stop never loses accepted replies.
    """
    import asyncio
    import signal

    from repro.service.server import CodecService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        batch_max=args.batch_max,
        workers=args.workers,
        max_inflight=args.max_inflight,
        registry_entries=args.registry_entries,
        metrics_port=args.metrics_port,
        flightrec_capacity=args.flightrec_capacity,
        flightrec_dump=args.flightrec_dump,
        drain_deadline=args.drain_deadline,
    )

    async def _serve() -> None:
        service = CodecService(config)
        host, port = await service.start()
        print(f"repro service on {host}:{port} "
              f"(codecs: {', '.join(sorted(service.codecs))})",
              file=sys.stderr, flush=True)
        if service.metrics_address is not None:
            mhost, mport = service.metrics_address
            print(f"metrics (Prometheus) on http://{mhost}:{mport}/metrics",
                  file=sys.stderr, flush=True)
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal handlers: Ctrl-C path below
        serve_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(shutdown.wait())
        try:
            await asyncio.wait(
                {serve_task, stop_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if shutdown.is_set():
                print("repro service: draining "
                      f"({service.inflight} request(s) in flight)",
                      file=sys.stderr, flush=True)
        finally:
            serve_task.cancel()
            stop_task.cancel()
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    """Chaos soak: loadgen through the seeded fault proxy, with a drain.

    Spawns an in-process daemon, fronts it with the seeded TCP fault
    proxy (:mod:`repro.service.chaos`), drives retrying load-generator
    workers through the proxy, triggers a mid-soak graceful drain (the
    SIGTERM analogue), and verifies the failure-semantics contract:
    every request ends in a typed outcome, zero hangs, zero leaked
    internal errors, zero reply loss across the drain.  Exit 1 on any
    violation; ``--flightrec-dump`` writes the daemon's lifecycle ring
    as JSONL for post-mortems.
    """
    from repro.service.soak import run_soak

    report = run_soak(
        seed=args.seed,
        duration=args.duration,
        rps=args.rps,
        connections=args.connections,
        dump_path=args.flightrec_dump,
    )
    if args.format == "json":
        emit_json(report.to_dict())
    else:
        print_lines(report.format_lines(), empty="soak: nothing ran")
    return report_failures(
        len(report.violations),
        f"soak: {len(report.violations)} contract violation(s)",
    )


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running daemon with a paced mixed workload.

    Exit 1 when the wire contract broke (any protocol error), when
    ``--min-rps`` was given and achieved throughput fell below it, or
    when an SLO gate (``--slo-p99-ms`` / ``--max-error-rate``) was
    breached.  ``--stats-json`` writes the full machine-readable report
    (client percentiles plus the daemon's post-run stats document) for
    CI artifacts.
    """
    from repro.service.client import wait_for_service
    from repro.service.loadgen import (
        find_saturation,
        run_loadgen,
        slo_breaches,
        write_stats_json,
    )

    if not wait_for_service(args.host, args.port, timeout=args.wait):
        print(f"no service at {args.host}:{args.port} "
              f"after {args.wait:.0f}s", file=sys.stderr)
        return 1
    if args.sweep:
        reports, sustained = find_saturation(
            args.host, args.port, start_rps=args.rps,
            duration=args.duration, connections=args.connections,
            seed=args.seed,
        )
        report = reports[-1]
        if args.format == "json":
            emit_json({
                "rounds": [r.to_dict() for r in reports],
                "sustained_rps": sustained,
            })
        else:
            for r in reports:
                print_lines(r.format_lines(), empty="loadgen: no rounds")
                print()
            print(f"saturation sweep: sustained {sustained:.0f} rps")
    else:
        report = run_loadgen(
            args.host, args.port, rps=args.rps, duration=args.duration,
            connections=args.connections, seed=args.seed,
        )
        if args.format == "json":
            emit_json(report.to_dict())
        else:
            print_lines(report.format_lines(), empty="loadgen: nothing sent")
    if args.stats_json is not None:
        write_stats_json(report, args.stats_json)
    status = report_failures(
        report.protocol_errors,
        f"loadgen: {report.protocol_errors} protocol error(s) — "
        "the wire contract must hold under load",
    )
    if args.min_rps is not None and report.achieved_rps < args.min_rps:
        status |= report_failures(
            1,
            f"loadgen: achieved {report.achieved_rps:.1f} rps, "
            f"floor is {args.min_rps:.1f}",
        )
    breaches = slo_breaches(
        report,
        p99_ms=args.slo_p99_ms,
        max_error_rate=args.max_error_rate,
    )
    if args.slo_p99_ms is not None or args.max_error_rate is not None:
        for breach in breaches:
            print(f"SLO breach: {breach}", file=sys.stderr)
        status |= report_failures(
            len(breaches),
            f"loadgen: {len(breaches)} SLO breach(es)",
        )
    return status


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace requests end-to-end; print the timeline, export Chrome JSON.

    Sends ``--repeat`` traced requests to a daemon (``--spawn`` runs an
    in-process one), prints each server-side segment timeline, checks
    it reconciles with the client-observed wire latency, and — with
    ``--out`` — writes a Chrome trace-event JSON document
    (``chrome://tracing`` / Perfetto loads it directly).
    """
    from repro.obs.clock import perf_seconds
    from repro.obs.trace import (
        annex_to_chrome_events,
        chrome_trace_document,
    )
    from repro.service.client import ServiceClient
    from repro.service.protocol import OP_COMPRESS, OP_DECOMPRESS

    server = None
    host, port = args.host, args.port
    if args.spawn:
        from repro.service.server import ServerThread, ServiceConfig

        server = ServerThread(ServiceConfig(port=0))
        host, port = server.start()
    op = OP_COMPRESS if args.op == "compress" else OP_DECOMPRESS
    if args.payload_file is not None:
        with open(args.payload_file, "rb") as handle:
            payload = handle.read()
    else:
        code = generate_benchmark("compress", "mips", 0.2, args.seed).code
        payload = code[: 4096 - (4096 % 4)]
    events: List[dict] = []
    status = 0
    try:
        with ServiceClient(host, port) as client:
            for index in range(args.repeat):
                trace_id = args.trace_id + index
                started = perf_seconds()
                response = client.request(
                    op, args.codec, payload, trace_id=trace_id
                )
                wire_ms = (perf_seconds() - started) * 1000.0
                annex = response.trace()
                if annex is None:
                    print(f"request {index}: reply carried no trace annex",
                          file=sys.stderr)
                    status = 1
                    continue
                total_ms = annex["total_ns"] / 1e6
                segment_sum = sum(
                    s["dur_ns"] for s in annex["segments"]
                )
                print(f"trace {annex['trace_id']:#018x}: "
                      f"server {total_ms:.3f} ms inside "
                      f"{wire_ms:.3f} ms wire latency")
                for segment in annex["segments"]:
                    print(f"  {segment['name']:<16} "
                          f"+{segment['start_ns'] / 1e6:>9.3f} ms  "
                          f"{segment['dur_ns'] / 1e6:>9.3f} ms")
                for note in annex.get("annotations", ()):
                    fields = ", ".join(
                        f"{k}={v}" for k, v in sorted(note.items())
                        if k not in ("name", "at_ns")
                    )
                    print(f"  @ {note['name']:<14} "
                          f"+{note['at_ns'] / 1e6:>9.3f} ms  {fields}")
                if segment_sum != annex["total_ns"]:
                    print(f"  WARNING: segments sum to {segment_sum} ns, "
                          f"total is {annex['total_ns']} ns",
                          file=sys.stderr)
                    status = 1
                if total_ms > wire_ms:
                    print("  WARNING: server total exceeds wire latency",
                          file=sys.stderr)
                    status = 1
                events.extend(annex_to_chrome_events(
                    annex, pid=1, tid=index + 1
                ))
    finally:
        if server is not None:
            server.stop()
    if args.out is not None:
        document = chrome_trace_document(events)
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(events)} trace events to {args.out}")
    return status


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a running daemon's ``stats`` op."""
    from repro.service.top import run_top

    try:
        return run_top(
            args.host,
            args.port,
            interval=args.interval,
            iterations=args.iterations,
            clear_screen=not args.no_clear,
        )
    except KeyboardInterrupt:
        return 0


def _cmd_compress_file(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        data = handle.read()
    if args.algorithm == "SAMC":
        # Byte-oriented SAMC: works for any binary, any length.
        image = SamcCodec.for_bytes(block_size=args.block_size).compress(data)
    else:
        image = ByteHuffmanCodec(args.block_size).compress(data)
    written = save_image(image, args.output)
    print(f"{args.input}: {len(data)} -> {written} bytes on disk "
          f"(accounted ratio {image.compression_ratio:.3f})")
    return 0


def _cmd_decompress_file(args: argparse.Namespace) -> int:
    try:
        image = load_image(args.input)
        data = decompress_image(image)
    except CorruptedStreamError as error:
        print(f"{args.input}: corrupted archive: {error}", file=sys.stderr)
        return 1
    with open(args.output, "wb") as handle:
        handle.write(data)
    print(f"{args.input}: restored {len(data)} bytes ({image.algorithm})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-codec",
        description="Code compression for embedded systems (DAC'98 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ratio = sub.add_parser("ratio", help="one benchmark × one algorithm")
    _add_common(ratio)
    ratio.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="gcc")
    ratio.add_argument("--algorithm", choices=ALL_ALGORITHMS, default="SAMC")
    ratio.set_defaults(func=_cmd_ratio)

    suite = sub.add_parser("suite", help="full benchmark sweep for one ISA")
    _add_common(suite)
    suite.add_argument("--algorithms", nargs="+", choices=ALL_ALGORITHMS,
                       default=list(FIGURE_ALGORITHMS))
    suite.add_argument("--benchmarks", nargs="*", choices=BENCHMARK_NAMES)
    _add_pipeline(suite)
    _add_obs(suite)
    suite.set_defaults(func=_cmd_suite)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", choices=("fig7", "fig8", "fig9"))
    figure.add_argument("--scale", type=float, default=1.0)
    figure.add_argument("--seed", type=int, default=0)
    _add_pipeline(figure)
    _add_obs(figure)
    figure.set_defaults(func=_cmd_figure)

    simulate = sub.add_parser("simulate", help="memory-system simulation")
    _add_common(simulate)
    simulate.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="gcc")
    simulate.add_argument("--algorithm", choices=("SAMC", "SADC"), default="SAMC")
    simulate.add_argument("--cache-size", type=int, default=4096)
    simulate.add_argument("--fetches", type=int, default=100_000)
    _add_obs(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    stats = sub.add_parser(
        "stats",
        help="run a sweep with telemetry on; render per-benchmark bit "
             "attribution and span timings",
    )
    _add_common(stats)
    stats.add_argument("--algorithms", nargs="+", choices=ALL_ALGORITHMS,
                       default=list(FIGURE_ALGORITHMS))
    stats.add_argument("--benchmarks", nargs="*", choices=BENCHMARK_NAMES)
    stats.add_argument("--format", choices=("text", "json"), default="text")
    _add_pipeline(stats)
    stats.set_defaults(func=_cmd_stats)

    analyze = sub.add_parser(
        "analyze", help="entropy/compressibility breakdown of a benchmark"
    )
    _add_common(analyze)
    analyze.add_argument("--benchmark", choices=BENCHMARK_NAMES, default="gcc")
    analyze.set_defaults(func=_cmd_analyze)

    bench_diff = sub.add_parser(
        "bench-diff",
        help="compare two benchmark-harness JSON snapshots for regressions",
    )
    bench_diff.add_argument("old", help="baseline BENCH_codec.json")
    bench_diff.add_argument("new", help="candidate BENCH_codec.json")
    bench_diff.add_argument("--threshold", type=float, default=0.15,
                            metavar="FRACTION",
                            help="relative slowdown that counts as a "
                                 "regression (default 0.15 = 15%%)")
    bench_diff.add_argument("--group", default=None, metavar="NAME",
                            help="compare only benchmarks in this harness "
                                 "group (e.g. throughput-batch)")
    bench_diff.set_defaults(func=_cmd_bench_diff)

    check = sub.add_parser(
        "check",
        help="static verification: codec invariants + repo lint rules",
    )
    check.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text")
    check.add_argument("--strict", action="store_true",
                       help="fail on any finding, warnings included")
    check.add_argument("--scale", type=float, default=0.25,
                       help="sample-corpus size for artifact checks")
    check.add_argument("--no-artifacts", action="store_true",
                       help="skip layer 1 (codec artifact invariants)")
    check.add_argument("--no-lint", action="store_true",
                       help="skip layer 2 (AST lint rules)")
    check.add_argument("--no-flow", action="store_true",
                       help="skip layer 3 (whole-program flow analyses)")
    check.add_argument("--baseline", default=None, metavar="PATH",
                       help="accepted-findings file (default: auto-detect "
                            ".repro-check-baseline.json)")
    check.add_argument("--no-baseline", action="store_true",
                       help="ignore any baseline file; report raw findings")
    check.add_argument("--write-baseline", action="store_true",
                       help="accept every current finding into the baseline "
                            "file and exit")
    check.set_defaults(func=_cmd_check)

    fuzz = sub.add_parser(
        "fuzz",
        help="deterministic fault injection: decoders or the live service",
    )
    fuzz.add_argument("--target", choices=("decoders", "service"),
                      default="decoders",
                      help="what to fuzz: every decode path (default), or "
                           "the wire protocol of a live daemon")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--iters", type=int, default=200, metavar="N",
                      help="fault-injection iterations per sweep "
                           "(default 200)")
    fuzz.add_argument("--time-budget", type=float, default=5.0,
                      metavar="SECONDS",
                      help="per-decode (or per-reply) wall-clock budget; "
                           "anything over budget is a failure (default 5.0)")
    fuzz.add_argument("--host", default=None,
                      help="service target: daemon host (default: spawn an "
                           "in-process daemon)")
    fuzz.add_argument("--port", type=int, default=None,
                      help="service target: daemon port")
    fuzz.add_argument("--format", choices=("text", "json"), default="text")
    fuzz.add_argument("--flightrec-dump", default=None, metavar="PATH",
                      help="service target: on failure, fetch the "
                           "daemon's flight-recorder ring (DUMP op) and "
                           "write the JSONL here (the CI artifact)")
    fuzz.set_defaults(func=_cmd_fuzz)

    serve = sub.add_parser(
        "serve", help="run the compression service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7341)
    serve.add_argument("--queue-size", type=int, default=256,
                       help="bounded request queue; full answers `busy`")
    serve.add_argument("--batch-max", type=int, default=8,
                       help="requests drained per dispatch batch — also "
                            "the ceiling on one vectorised request "
                            "group, since grouping happens within a "
                            "drain")
    serve.add_argument("--workers", type=int, default=4,
                       help="executor threads running codec work")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="per-connection in-flight request cap")
    serve.add_argument("--registry-entries", type=int, default=32,
                       help="warm SAMC model registry bound (LRU)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="serve Prometheus text exposition on this "
                            "port (disabled by default)")
    serve.add_argument("--flightrec-capacity", type=int, default=1024,
                       metavar="N",
                       help="flight-recorder ring size: last N "
                            "request-lifecycle events (default 1024)")
    serve.add_argument("--flightrec-dump", default=None, metavar="PATH",
                       help="dump the flight-recorder ring (JSONL) here "
                            "on every wire-protocol error")
    serve.add_argument("--drain-deadline", type=float, default=10.0,
                       metavar="SECONDS",
                       help="graceful-drain budget on SIGTERM/SIGINT: "
                            "how long to wait for in-flight requests "
                            "before force-closing (default 10)")
    serve.set_defaults(func=_cmd_serve)

    soak = sub.add_parser(
        "soak",
        help="chaos soak: loadgen through the seeded fault proxy, "
             "with a mid-soak graceful drain",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--duration", type=float, default=20.0,
                      metavar="SECONDS",
                      help="soak length (default 20); the graceful "
                           "drain fires at ~60%% of it")
    soak.add_argument("--rps", type=float, default=80.0,
                      help="target request rate through the proxy "
                           "(default 80)")
    soak.add_argument("--connections", type=int, default=4,
                      help="concurrent retrying workers (default 4)")
    soak.add_argument("--format", choices=("text", "json"),
                      default="text")
    soak.add_argument("--flightrec-dump", default=None, metavar="PATH",
                      help="write the daemon's flight-recorder ring "
                           "(JSONL) here after the soak — the CI "
                           "artifact on failure")
    soak.set_defaults(func=_cmd_soak)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running daemon with a paced mixed workload",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7341)
    loadgen.add_argument("--rps", type=float, default=200.0,
                         help="target request rate (default 200)")
    loadgen.add_argument("--duration", type=float, default=5.0,
                         metavar="SECONDS")
    loadgen.add_argument("--connections", type=int, default=8,
                         help="concurrent client connections (default 8)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--wait", type=float, default=10.0,
                         metavar="SECONDS",
                         help="how long to wait for the daemon to answer "
                              "health before giving up (default 10)")
    loadgen.add_argument("--min-rps", type=float, default=None,
                         metavar="RPS",
                         help="fail unless achieved throughput reaches "
                              "this floor")
    loadgen.add_argument("--sweep", action="store_true",
                         help="double the rate until saturation; report "
                              "the highest sustained rps")
    loadgen.add_argument("--format", choices=("text", "json"),
                         default="text")
    loadgen.add_argument("--stats-json", default=None, metavar="PATH",
                         help="write the machine-readable run report "
                              "(client percentiles + the daemon's stats "
                              "document) to this file")
    loadgen.add_argument("--slo-p99-ms", type=float, default=None,
                         metavar="MS",
                         help="SLO gate: fail when client-observed p99 "
                              "latency exceeds this many milliseconds")
    loadgen.add_argument("--max-error-rate", type=float, default=None,
                         metavar="FRACTION",
                         help="SLO gate: fail when the error rate "
                              "(service + protocol errors over sent) "
                              "exceeds this fraction")
    loadgen.set_defaults(func=_cmd_loadgen)

    trace = sub.add_parser(
        "trace",
        help="trace one request end-to-end; emit Chrome trace JSON",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=7341)
    trace.add_argument("--spawn", action="store_true",
                       help="run an in-process daemon instead of "
                            "connecting to --host/--port")
    trace.add_argument("--op", choices=("compress", "decompress"),
                       default="compress")
    trace.add_argument("--codec", default="gzipish")
    trace.add_argument("--payload-file", default=None, metavar="PATH",
                       help="request payload (default: a synthetic "
                            "MIPS code image)")
    trace.add_argument("--trace-id", type=int, default=1,
                       help="client-stamped trace id of the first "
                            "request (default 1; increments per repeat)")
    trace.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="traced requests to send (default 1)")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON document "
                            "(chrome://tracing, Perfetto)")
    trace.set_defaults(func=_cmd_trace)

    top = sub.add_parser(
        "top",
        help="live dashboard over a running daemon's stats op",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7341)
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="poll interval (default 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="render N frames then exit (default: run "
                          "until interrupted)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")
    top.set_defaults(func=_cmd_top)

    compress_file = sub.add_parser(
        "compress-file", help="compress any binary to the on-ROM format"
    )
    compress_file.add_argument("input")
    compress_file.add_argument("output")
    compress_file.add_argument("--algorithm", choices=("SAMC", "huffman"),
                               default="SAMC")
    compress_file.add_argument("--block-size", type=int, default=32)
    compress_file.set_defaults(func=_cmd_compress_file)

    decompress_file = sub.add_parser(
        "decompress-file", help="restore a binary from the on-ROM format"
    )
    decompress_file.add_argument("input")
    decompress_file.add_argument("output")
    decompress_file.set_defaults(func=_cmd_decompress_file)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # The consumer (e.g. `| head`) closed stdout early; that is its
        # call, not an error.  Point stdout at devnull so the interpreter
        # does not raise again while flushing at shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
