"""Hand-written MIPS assembly kernels that really execute.

The synthetic SPEC95 generator produces statistically realistic but
non-executable code; these kernels are the complement — small, real
programs (memcpy, dot product, Fibonacci, bubble sort, checksum) used to
demonstrate and test *execution out of compressed memory*: the machine
fetches every instruction through the decompressing memory system and
must produce bit-identical results.

Each kernel is a :class:`Kernel` with source, input setup, and an
expected-result check, so tests and examples share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.isa.mips.asm import assemble_to_bytes
from repro.isa.mips.interp import MipsMachine

#: Scratch data area, well above any kernel's code.
DATA_BASE = 0x4000


@dataclass(frozen=True)
class Kernel:
    """A runnable assembly program with a self-check."""

    name: str
    source: Tuple[str, ...]
    setup: Callable[[MipsMachine], None]
    check: Callable[[MipsMachine], bool]

    def code(self) -> bytes:
        return assemble_to_bytes(self.source)


def _memcpy_setup(machine: MipsMachine) -> None:
    payload = bytes((i * 37 + 11) & 0xFF for i in range(256))
    machine.memory[DATA_BASE : DATA_BASE + 256] = payload
    machine.set_reg(4, DATA_BASE)          # a0 = src
    machine.set_reg(5, DATA_BASE + 0x400)  # a1 = dst
    machine.set_reg(6, 256)                # a2 = length


def _memcpy_check(machine: MipsMachine) -> bool:
    src = bytes(machine.memory[DATA_BASE : DATA_BASE + 256])
    dst = bytes(machine.memory[DATA_BASE + 0x400 : DATA_BASE + 0x400 + 256])
    return src == dst


MEMCPY = Kernel(
    name="memcpy",
    source=(
        "loop:",
        "    blez $a2, done",
        "    lb   $t0, 0($a0)",
        "    sb   $t0, 0($a1)",
        "    addiu $a0, $a0, 1",
        "    addiu $a1, $a1, 1",
        "    addiu $a2, $a2, -1",
        "    j    loop",
        "done:",
        "    syscall",
    ),
    setup=_memcpy_setup,
    check=_memcpy_check,
)


def _dot_setup(machine: MipsMachine) -> None:
    for index in range(32):
        machine.write_word(DATA_BASE + 4 * index, index + 1)
        machine.write_word(DATA_BASE + 0x200 + 4 * index, 2 * index + 1)
    machine.set_reg(4, DATA_BASE)
    machine.set_reg(5, DATA_BASE + 0x200)
    machine.set_reg(6, 32)


def _dot_check(machine: MipsMachine) -> bool:
    expected = sum((i + 1) * (2 * i + 1) for i in range(32))
    return machine.reg(2) == expected


DOT_PRODUCT = Kernel(
    name="dot_product",
    source=(
        "    addiu $v0, $zero, 0",
        "loop:",
        "    blez $a2, done",
        "    lw   $t0, 0($a0)",
        "    lw   $t1, 0($a1)",
        "    mult $t0, $t1",
        "    mflo $t2",
        "    addu $v0, $v0, $t2",
        "    addiu $a0, $a0, 4",
        "    addiu $a1, $a1, 4",
        "    addiu $a2, $a2, -1",
        "    j    loop",
        "done:",
        "    syscall",
    ),
    setup=_dot_setup,
    check=_dot_check,
)


def _fib_setup(machine: MipsMachine) -> None:
    machine.set_reg(4, 20)  # a0 = n


def _fib_check(machine: MipsMachine) -> bool:
    return machine.reg(2) == 6765  # fib(20)


FIBONACCI = Kernel(
    name="fibonacci",
    source=(
        "    addiu $t0, $zero, 0",    # fib(0)
        "    addiu $t1, $zero, 1",    # fib(1)
        "loop:",
        "    blez $a0, done",
        "    addu $t2, $t0, $t1",
        "    or   $t0, $t1, $zero",
        "    or   $t1, $t2, $zero",
        "    addiu $a0, $a0, -1",
        "    j    loop",
        "done:",
        "    or   $v0, $t0, $zero",
        "    syscall",
    ),
    setup=_fib_setup,
    check=_fib_check,
)


def _sort_values() -> List[int]:
    return [(i * 193 + 7) % 256 for i in range(24)]


def _sort_setup(machine: MipsMachine) -> None:
    for index, value in enumerate(_sort_values()):
        machine.write_word(DATA_BASE + 4 * index, value)
    machine.set_reg(4, DATA_BASE)
    machine.set_reg(5, 24)


def _sort_check(machine: MipsMachine) -> bool:
    got = [machine.read_word(DATA_BASE + 4 * i) for i in range(24)]
    return got == sorted(_sort_values())


BUBBLE_SORT = Kernel(
    name="bubble_sort",
    source=(
        # for (i = n-1; i > 0; i--) for (j = 0; j < i; j++) cmp/swap
        "    addiu $t0, $a1, -1",     # i = n - 1
        "outer:",
        "    blez $t0, done",
        "    addiu $t1, $zero, 0",    # j = 0
        "    or   $t4, $a0, $zero",   # p = base
        "inner:",
        "    slt  $t5, $t1, $t0",
        "    beq  $t5, $zero, next",
        "    lw   $t2, 0($t4)",
        "    lw   $t3, 4($t4)",
        "    slt  $t5, $t3, $t2",
        "    beq  $t5, $zero, noswap",
        "    sw   $t3, 0($t4)",
        "    sw   $t2, 4($t4)",
        "noswap:",
        "    addiu $t4, $t4, 4",
        "    addiu $t1, $t1, 1",
        "    j    inner",
        "next:",
        "    addiu $t0, $t0, -1",
        "    j    outer",
        "done:",
        "    syscall",
    ),
    setup=_sort_setup,
    check=_sort_check,
)


def _checksum_setup(machine: MipsMachine) -> None:
    payload = bytes((i * 61 + 3) & 0xFF for i in range(512))
    machine.memory[DATA_BASE : DATA_BASE + 512] = payload
    machine.set_reg(4, DATA_BASE)
    machine.set_reg(5, 512)


def _checksum_check(machine: MipsMachine) -> bool:
    expected = 0
    for byte in bytes((i * 61 + 3) & 0xFF for i in range(512)):
        expected = ((expected << 1) & 0xFFFFFFFF) ^ byte
    return machine.reg(2) == expected


CHECKSUM = Kernel(
    name="checksum",
    source=(
        "    addiu $v0, $zero, 0",
        "loop:",
        "    blez $a1, done",
        "    lbu  $t0, 0($a0)",
        "    sll  $v0, $v0, 1",
        "    xor  $v0, $v0, $t0",
        "    addiu $a0, $a0, 1",
        "    addiu $a1, $a1, -1",
        "    j    loop",
        "done:",
        "    syscall",
    ),
    setup=_checksum_setup,
    check=_checksum_check,
)


#: All kernels, for parametrised tests and the example.
KERNELS: Tuple[Kernel, ...] = (
    MEMCPY, DOT_PRODUCT, FIBONACCI, BUBBLE_SORT, CHECKSUM,
)


def run_kernel(kernel: Kernel, machine: MipsMachine = None) -> MipsMachine:
    """Assemble, load, set up, and run a kernel to completion."""
    if machine is None:
        machine = MipsMachine()
    machine.load_code(kernel.code())
    kernel.setup(machine)
    machine.run()
    return machine
