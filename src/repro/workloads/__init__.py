"""Synthetic SPEC95-like workload generation for MIPS and x86."""

from repro.workloads.kernels import KERNELS, Kernel, run_kernel
from repro.workloads.mips_gen import MipsGenerator
from repro.workloads.profiles import (
    BENCHMARK_NAMES,
    SPEC95,
    BenchmarkProfile,
    get_profile,
)
from repro.workloads.sampling import ZipfSampler, weighted_choice
from repro.workloads.suite import Program, generate_benchmark, generate_suite
from repro.workloads.x86_gen import X86Generator
from repro.workloads.x86_kernels import X86_KERNELS, X86Kernel, run_x86_kernel

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkProfile",
    "KERNELS",
    "Kernel",
    "MipsGenerator",
    "X86Kernel",
    "X86_KERNELS",
    "run_kernel",
    "run_x86_kernel",
    "Program",
    "SPEC95",
    "X86Generator",
    "ZipfSampler",
    "generate_benchmark",
    "generate_suite",
    "get_profile",
    "weighted_choice",
]
