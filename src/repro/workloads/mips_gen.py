"""Synthetic MIPS code generator.

Emits machine code with the statistical fingerprint of compiled SPEC95
programs: function prologue/epilogue idioms, basic blocks drawn from a
per-program *motif pool* (compilers emit the same short sequences over
and over — the redundancy SADC's dictionary harvests), Zipf-skewed
register usage, and small, highly non-uniform immediates (the low-entropy
fields SAMC's Markov streams exploit).

Generation is fully deterministic given (profile, seed, scale).
"""

from __future__ import annotations

import random
from typing import Callable, List

from repro.isa.mips.formats import BY_MNEMONIC, Instruction
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.sampling import ZipfSampler, weighted_choice

#: GPRs in rough descending order of use in compiled code.
_REGISTER_PREFERENCE = (
    29,  # sp
    2,   # v0
    4,   # a0
    8,   # t0
    16,  # s0
    5,   # a1
    3,   # v1
    9,   # t1
    17,  # s1
    6,   # a2
    10,  # t2
    31,  # ra
    18,  # s2
    7,   # a3
    11,  # t3
    0,   # zero
    19, 12, 20, 13, 21, 14, 22, 15, 23, 24, 25, 30, 28, 1, 26, 27,
)

#: Even FP registers (doubles), most used first.
_FPR_PREFERENCE = (0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20)


def _instruction(mnemonic: str, **fields) -> Instruction:
    return Instruction(BY_MNEMONIC[mnemonic], **fields)


class MipsGenerator:
    """Generates one benchmark's MIPS code image."""

    def __init__(
        self, profile: BenchmarkProfile, seed: int = 0, scale: float = 1.0
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.profile = profile
        self.target = max(64, int(profile.instructions * scale))
        # zlib.crc32, not hash(): str hashing is randomised per process,
        # and generation must be reproducible across runs.
        import zlib

        name_seed = zlib.crc32(profile.name.encode()) & 0xFFFF
        self._rng = random.Random(name_seed ^ seed)
        self._registers = ZipfSampler(_REGISTER_PREFERENCE, profile.register_skew)
        self._fprs = ZipfSampler(_FPR_PREFERENCE, profile.register_skew)
        #: A handful of code pages: lui values cluster heavily.
        self._pages = [0x1000 + 8 * i for i in range(4)]
        #: Call-target pool: function entry word addresses.
        self._call_targets = [
            (0x0040_0000 >> 2) + 64 * i for i in range(max(8, self.target // 96))
        ]
        self._motifs: List[List[Instruction]] = []

    # -- operand sampling -------------------------------------------------

    def _reg(self) -> int:
        return self._registers.sample(self._rng)

    def _fpr(self) -> int:
        return self._fprs.sample(self._rng)

    def _mem_offset(self) -> int:
        """Load/store offsets: small multiples of 4, occasionally negative."""
        rng = self._rng
        kind = weighted_choice(rng, [(6, "small"), (2, "medium"), (1, "neg")])
        if kind == "small":
            return 4 * rng.randrange(0, 16)
        if kind == "medium":
            return 4 * rng.randrange(16, 64)
        return (-4 * rng.randrange(1, 9)) & 0xFFFF

    def _alu_imm(self) -> int:
        rng = self._rng
        kind = weighted_choice(rng, [(4, "tiny"), (3, "pow"), (2, "byte"), (1, "wide")])
        if kind == "tiny":
            return rng.choice([0, 1, 2, 3, 4, 8])
        if kind == "pow":
            return 1 << rng.randrange(0, 12)
        if kind == "byte":
            return rng.randrange(0, 256)
        return rng.randrange(0, 1 << 16)

    def _branch_offset(self) -> int:
        magnitude = self._rng.randrange(1, 48)
        if self._rng.random() < 0.55:  # backward branches dominate (loops)
            return (-magnitude) & 0xFFFF
        return magnitude

    # -- instruction kinds -------------------------------------------------

    def _gen_load(self) -> Instruction:
        op = weighted_choice(self._rng, [(7, "lw"), (1, "lb"), (1, "lbu"), (1, "lhu")])
        return _instruction(op, rt=self._reg(), rs=self._reg(), imm=self._mem_offset())

    def _gen_store(self) -> Instruction:
        op = weighted_choice(self._rng, [(7, "sw"), (1, "sb"), (1, "sh")])
        return _instruction(op, rt=self._reg(), rs=self._reg(), imm=self._mem_offset())

    def _gen_alu_reg(self) -> Instruction:
        op = weighted_choice(
            self._rng,
            [(6, "addu"), (2, "subu"), (2, "or"), (1, "and"), (1, "xor"),
             (2, "slt"), (1, "sltu")],
        )
        return _instruction(op, rd=self._reg(), rs=self._reg(), rt=self._reg())

    def _gen_alu_imm(self) -> Instruction:
        op = weighted_choice(
            self._rng,
            [(6, "addiu"), (2, "andi"), (2, "ori"), (1, "slti"), (1, "xori")],
        )
        return _instruction(op, rt=self._reg(), rs=self._reg(), imm=self._alu_imm())

    def _gen_shift(self) -> Instruction:
        op = weighted_choice(self._rng, [(3, "sll"), (2, "srl"), (1, "sra")])
        shamt = self._rng.choice([1, 2, 2, 3, 4, 8])
        return _instruction(op, rd=self._reg(), rt=self._reg(), shamt=shamt)

    def _gen_branch(self) -> Instruction:
        op = weighted_choice(
            self._rng, [(4, "bne"), (4, "beq"), (1, "blez"), (1, "bgtz")]
        )
        if op in ("blez", "bgtz"):
            return _instruction(op, rs=self._reg(), imm=self._branch_offset())
        return _instruction(
            op, rs=self._reg(), rt=self._reg(), imm=self._branch_offset()
        )

    def _gen_lui_pair(self) -> List[Instruction]:
        reg = self._reg()
        page = self._rng.choice(self._pages)
        return [
            _instruction("lui", rt=reg, imm=page),
            _instruction("addiu", rt=reg, rs=reg, imm=4 * self._rng.randrange(0, 64)),
        ]

    def _gen_call(self) -> Instruction:
        return _instruction("jal", target=self._rng.choice(self._call_targets))

    def _gen_fp(self) -> Instruction:
        kind = weighted_choice(
            self._rng,
            [(3, "ldc1"), (2, "sdc1"), (3, "arith"), (1, "lwc1"), (1, "swc1")],
        )
        if kind in ("ldc1", "sdc1", "lwc1", "swc1"):
            return _instruction(
                kind, rt=self._fpr(), rs=self._reg(), imm=8 * self._rng.randrange(0, 32)
            )
        op = weighted_choice(
            self._rng, [(3, "add.d"), (3, "mul.d"), (1, "sub.d"), (1, "div.d")]
        )
        return _instruction(op, shamt=self._fpr(), rd=self._fpr(), rt=self._fpr())

    # -- block / function structure ----------------------------------------

    def _fresh_block(self) -> List[Instruction]:
        """Generate a new basic block from the profile's instruction mix."""
        rng = self._rng
        length = rng.randrange(3, 10)
        block: List[Instruction] = []
        fp = self.profile.fp_fraction
        table = [
            (0.22 * (1 - fp), self._gen_load),
            (0.12 * (1 - fp), self._gen_store),
            (0.20 * (1 - fp), self._gen_alu_reg),
            (0.20 * (1 - fp), self._gen_alu_imm),
            (0.05, self._gen_shift),
            (fp, self._gen_fp),
        ]
        while len(block) < length:
            if rng.random() < 0.05:
                block.extend(self._gen_lui_pair())
                continue
            generator: Callable[[], Instruction] = weighted_choice(rng, table)
            block.append(generator())
        # Basic blocks usually end in a branch or call.
        terminator = weighted_choice(
            rng, [(5, "branch"), (2, "call"), (3, "none")]
        )
        if terminator == "branch":
            block.append(self._gen_branch())
        elif terminator == "call":
            block.append(self._gen_call())
        return block

    def _next_block(self) -> List[Instruction]:
        """Reuse a pooled motif or mint a fresh block (and pool it)."""
        rng = self._rng
        if self._motifs and rng.random() < self.profile.motif_reuse:
            motif = rng.choice(self._motifs)
            if rng.random() < 0.65 and motif:
                # Compilers re-emit idioms with different temporaries and
                # offsets far more often than byte-for-byte: perturb one
                # or two instructions so the *opcode sequence* repeats
                # (what SADC's dictionary harvests) while raw bytes
                # diverge (curbing unrealistic long LZ matches).
                clone = list(motif)
                for _ in range(rng.randrange(1, 3)):
                    index = rng.randrange(len(clone))
                    clone[index] = self._perturb(clone[index])
                return clone
            return list(motif)
        block = self._fresh_block()
        if len(self._motifs) < self.profile.motif_pool:
            self._motifs.append(block)
        else:
            self._motifs[rng.randrange(len(self._motifs))] = block
        return block

    def _perturb(self, old: Instruction) -> Instruction:
        """Vary one instruction's register or immediate, staying canonical."""
        rng = self._rng
        fields = {
            "rs": old.rs, "rt": old.rt, "rd": old.rd,
            "shamt": old.shamt, "imm": old.imm, "target": old.target,
        }
        mutable = [f for f in ("rt", "rd", "rs") if f in old.spec.operands]
        if "imm" in old.spec.operands and rng.random() < 0.5:
            delta = rng.choice((-8, -4, 4, 8))
            fields["imm"] = (old.imm + delta) & 0xFFFF
        elif mutable:
            fields[rng.choice(mutable)] = self._reg()
        return Instruction(old.spec, **fields)

    def _function(self) -> List[Instruction]:
        """One function: prologue, blocks, epilogue."""
        rng = self._rng
        frame = 8 * rng.randrange(2, 8)
        saved = rng.randrange(0, 3)
        body: List[Instruction] = [
            _instruction("addiu", rt=29, rs=29, imm=(-frame) & 0xFFFF),
            _instruction("sw", rt=31, rs=29, imm=frame - 4),
        ]
        for i in range(saved):
            body.append(_instruction("sw", rt=16 + i, rs=29, imm=frame - 8 - 4 * i))
        blocks = rng.randrange(2, 9)
        for _ in range(blocks):
            body.extend(self._next_block())
        for i in range(saved):
            body.append(_instruction("lw", rt=16 + i, rs=29, imm=frame - 8 - 4 * i))
        body.append(_instruction("lw", rt=31, rs=29, imm=frame - 4))
        body.append(_instruction("addiu", rt=29, rs=29, imm=frame))
        body.append(_instruction("jr", rs=31))
        return body

    def generate_instructions(self) -> List[Instruction]:
        """Generate at least ``target`` instructions of whole functions."""
        out: List[Instruction] = []
        while len(out) < self.target:
            out.extend(self._function())
        return out

    def generate(self) -> bytes:
        """Generate the benchmark's big-endian code image."""
        code = bytearray()
        for instruction in self.generate_instructions():
            code.extend(instruction.encode().to_bytes(4, "big"))
        return bytes(code)
