"""Shared sampling utilities for the workload generators."""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Samples items with Zipf-like weights: p(rank r) ∝ 1/(r+1)**skew.

    Compiler output concentrates on a few registers (stack pointer,
    return address, first temporaries) and a few opcodes; a Zipf rank
    distribution over a preference-ordered list reproduces that skew.
    """

    def __init__(self, items: Sequence[T], skew: float) -> None:
        if not items:
            raise ValueError("need at least one item")
        self._items: List[T] = list(items)
        weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> T:
        point = rng.random()
        for item, cum in zip(self._items, self._cumulative):
            if point <= cum:
                return item
        return self._items[-1]


def weighted_choice(rng: random.Random, table: Sequence) -> object:
    """Choose from ``[(weight, item), ...]`` pairs."""
    total = sum(weight for weight, _item in table)
    point = rng.random() * total
    acc = 0.0
    for weight, item in table:
        acc += weight
        if point <= acc:
            return item
    return table[-1][1]
