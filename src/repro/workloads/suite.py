"""The benchmark suite front end.

``generate_benchmark("gcc", "mips")`` deterministically produces the
synthetic stand-in for that SPEC95 binary; ``generate_suite`` yields all
eighteen, in the order of the paper's Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.workloads.mips_gen import MipsGenerator
from repro.workloads.profiles import BENCHMARK_NAMES, BenchmarkProfile, get_profile
from repro.workloads.x86_gen import X86Generator


@dataclass(frozen=True)
class Program:
    """One generated benchmark binary."""

    name: str
    isa: str
    code: bytes
    profile: BenchmarkProfile

    @property
    def size_bytes(self) -> int:
        return len(self.code)


def generate_benchmark(
    name: str, isa: str = "mips", scale: float = 1.0, seed: int = 0
) -> Program:
    """Generate one benchmark for the given ISA, deterministically."""
    profile = get_profile(name)
    if isa == "mips":
        code = MipsGenerator(profile, seed=seed, scale=scale).generate()
    elif isa == "x86":
        code = X86Generator(profile, seed=seed, scale=scale).generate()
    else:
        raise ValueError(f"unknown ISA {isa!r} (expected 'mips' or 'x86')")
    return Program(name=name, isa=isa, code=code, profile=profile)


def generate_suite(
    isa: str = "mips",
    scale: float = 1.0,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
) -> Iterator[Program]:
    """Generate the full SPEC95 suite (or a named subset), figure order."""
    for name in names or BENCHMARK_NAMES:
        yield generate_benchmark(name, isa, scale=scale, seed=seed)
