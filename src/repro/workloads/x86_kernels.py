"""Executable x86 kernels and a tiny structural assembler with labels.

The x86 counterpart of :mod:`repro.workloads.kernels`: real programs
built from :class:`~repro.isa.x86.formats.X86Instruction` objects, with
a two-pass label resolver for the relative branches (x86 instructions
are variable-length, so offsets depend on every instruction's size).
Used to validate execution through byte-oriented compressed memory.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro.isa.x86.formats import X86Instruction
from repro.isa.x86.interp import X86Machine

DATA_BASE = 0x4000

#: Condition-code mnemonic suffixes for Jcc.
CC = {"e": 4, "ne": 5, "l": 12, "ge": 13, "le": 14, "g": 15,
      "b": 2, "ae": 3, "be": 6, "a": 7}


@dataclass(frozen=True)
class Label:
    name: str


@dataclass(frozen=True)
class JccTo:
    """A pending conditional branch to a label (rel8)."""

    cc: int
    target: str


@dataclass(frozen=True)
class JmpTo:
    """A pending unconditional jump to a label (rel8)."""

    target: str


Item = Union[X86Instruction, Label, JccTo, JmpTo]


def _modrm(mod: int, reg: int, rm: int) -> int:
    return (mod << 6) | (reg << 3) | rm


def mov_ri(reg: int, value: int) -> X86Instruction:
    """mov r32, imm32"""
    return X86Instruction(opcode=bytes([0xB8 + reg]),
                          imm=struct.pack("<i", value))


def mov_rr(dst: int, src: int) -> X86Instruction:
    """mov dst, src (89 /r with mod=11: r/m=dst, reg=src)"""
    return X86Instruction(opcode=b"\x89", modrm=_modrm(3, src, dst))


def mov_r_mem(dst: int, base: int) -> X86Instruction:
    """mov dst, [base]"""
    return X86Instruction(opcode=b"\x8b", modrm=_modrm(0, dst, base))


def mov_mem_r(base: int, src: int) -> X86Instruction:
    """mov [base], src"""
    return X86Instruction(opcode=b"\x89", modrm=_modrm(0, src, base))


def mov_r_mem8(dst: int, base: int) -> X86Instruction:
    """mov dst8, [base] (byte load)"""
    return X86Instruction(opcode=b"\x8a", modrm=_modrm(0, dst, base))


def mov_mem8_r(base: int, src: int) -> X86Instruction:
    """mov [base], src8 (byte store)"""
    return X86Instruction(opcode=b"\x88", modrm=_modrm(0, src, base))


def alu_rr(opcode: int, dst: int, src: int) -> X86Instruction:
    """ALU op r/m32(dst), r32(src): 01 add, 29 sub, 31 xor, 39 cmp, …"""
    return X86Instruction(opcode=bytes([opcode]), modrm=_modrm(3, src, dst))


def alu_ri8(group: int, reg: int, imm: int) -> X86Instruction:
    """grp1 r/m32, imm8: /0 add, /5 sub, /7 cmp"""
    return X86Instruction(opcode=b"\x83", modrm=_modrm(3, group, reg),
                          imm=struct.pack("<b", imm))


def inc(reg: int) -> X86Instruction:
    return X86Instruction(opcode=bytes([0x40 + reg]))


def dec(reg: int) -> X86Instruction:
    return X86Instruction(opcode=bytes([0x48 + reg]))


def ret() -> X86Instruction:
    return X86Instruction(opcode=b"\xc3")


def assemble(items: List[Item]) -> bytes:
    """Two-pass assembly: place instructions, then patch rel8 branches."""
    placeholder = {
        JccTo: lambda item: X86Instruction(
            opcode=bytes([0x70 + item.cc]), imm=b"\x00"
        ),
        JmpTo: lambda item: X86Instruction(opcode=b"\xeb", imm=b"\x00"),
    }
    # Pass 1: offsets of every item (labels resolve to the next offset).
    offsets: Dict[str, int] = {}
    position = 0
    encodings: List[Tuple[Item, int]] = []
    for item in items:
        if isinstance(item, Label):
            if item.name in offsets:
                raise ValueError(f"duplicate label {item.name!r}")
            offsets[item.name] = position
            continue
        length = (
            placeholder[type(item)](item).length
            if type(item) in placeholder
            else item.length
        )
        encodings.append((item, position))
        position += length

    # Pass 2: patch branch displacements.
    out = bytearray()
    for item, start in encodings:
        if isinstance(item, (JccTo, JmpTo)):
            instruction = placeholder[type(item)](item)
            next_eip = start + instruction.length
            rel = offsets[item.target] - next_eip
            if not -128 <= rel <= 127:
                raise ValueError(f"branch to {item.target!r} out of rel8 range")
            instruction = X86Instruction(
                opcode=instruction.opcode, imm=struct.pack("<b", rel)
            )
            out.extend(instruction.encode())
        else:
            out.extend(item.encode())
    return bytes(out)


@dataclass(frozen=True)
class X86Kernel:
    """A runnable x86 program with setup and self-check."""

    name: str
    items: Tuple[Item, ...]
    setup: Callable[[X86Machine], None]
    check: Callable[[X86Machine], bool]

    def code(self) -> bytes:
        return assemble(list(self.items))


from repro.isa.x86.interp import EAX, EBX, ECX, EDX, EDI, ESI  # noqa: E402


def _sum_setup(machine: X86Machine) -> None:
    for index in range(48):
        machine.write32(DATA_BASE + 4 * index, 3 * index + 2)
    machine.regs[ESI] = DATA_BASE
    machine.regs[ECX] = 48


def _sum_check(machine: X86Machine) -> bool:
    return machine.regs[EAX] == sum(3 * i + 2 for i in range(48))


SUM_ARRAY = X86Kernel(
    name="sum_array",
    items=(
        mov_ri(EAX, 0),
        Label("loop"),
        alu_ri8(7, ECX, 0),            # cmp ecx, 0
        JccTo(CC["le"], "done"),
        mov_r_mem(EDX, ESI),           # edx = [esi]
        alu_rr(0x01, EAX, EDX),        # eax += edx
        alu_ri8(0, ESI, 4),            # esi += 4
        dec(ECX),
        JmpTo("loop"),
        Label("done"),
        ret(),
    ),
    setup=_sum_setup,
    check=_sum_check,
)


def _memcpy_setup(machine: X86Machine) -> None:
    payload = bytes((i * 73 + 5) & 0xFF for i in range(128))
    machine.memory[DATA_BASE : DATA_BASE + 128] = payload
    machine.regs[ESI] = DATA_BASE
    machine.regs[EDI] = DATA_BASE + 0x400
    machine.regs[ECX] = 128


def _memcpy_check(machine: X86Machine) -> bool:
    return (machine.memory[DATA_BASE : DATA_BASE + 128]
            == machine.memory[DATA_BASE + 0x400 : DATA_BASE + 0x400 + 128])


MEMCPY_X86 = X86Kernel(
    name="memcpy",
    items=(
        Label("loop"),
        alu_ri8(7, ECX, 0),            # cmp ecx, 0
        JccTo(CC["le"], "done"),
        mov_r_mem8(EAX, ESI),          # al = [esi]
        mov_mem8_r(EDI, EAX),          # [edi] = al
        inc(ESI),
        inc(EDI),
        dec(ECX),
        JmpTo("loop"),
        Label("done"),
        ret(),
    ),
    setup=_memcpy_setup,
    check=_memcpy_check,
)


def _fib_setup(machine: X86Machine) -> None:
    machine.regs[ECX] = 20


def _fib_check(machine: X86Machine) -> bool:
    return machine.regs[EAX] == 6765


FIBONACCI_X86 = X86Kernel(
    name="fibonacci",
    items=(
        mov_ri(EAX, 0),
        mov_ri(EBX, 1),
        Label("loop"),
        alu_ri8(7, ECX, 0),
        JccTo(CC["le"], "done"),
        mov_rr(EDX, EAX),              # edx = a
        alu_rr(0x01, EDX, EBX),        # edx = a + b
        mov_rr(EAX, EBX),              # a = b
        mov_rr(EBX, EDX),              # b = a + b
        dec(ECX),
        JmpTo("loop"),
        Label("done"),
        ret(),
    ),
    setup=_fib_setup,
    check=_fib_check,
)


X86_KERNELS: Tuple[X86Kernel, ...] = (SUM_ARRAY, MEMCPY_X86, FIBONACCI_X86)


def run_x86_kernel(kernel: X86Kernel, machine: X86Machine = None) -> X86Machine:
    """Assemble, load, set up, and run a kernel to completion."""
    if machine is None:
        machine = X86Machine()
    machine.load_code(kernel.code())
    kernel.setup(machine)
    machine.run()
    return machine
