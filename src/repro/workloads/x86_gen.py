"""Synthetic x86 (Pentium Pro) code generator.

Mirrors :mod:`repro.workloads.mips_gen` for IA-32: function idioms
(``push ebp; mov ebp, esp``), EBP-relative loads/stores with small
displacements, register-register ALU ops, short conditional branches,
CALL rel32 into a small target pool, and a motif pool for compiler-like
sequence reuse.  Instructions are emitted as structural
:class:`~repro.isa.x86.formats.X86Instruction` objects, so everything
round-trips through the length decoder.
"""

from __future__ import annotations

import random
import struct
from typing import List

from repro.isa.x86.formats import X86Instruction
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.sampling import ZipfSampler, weighted_choice

#: IA-32 GPR numbers in rough descending order of compiled-code use.
_REGISTER_PREFERENCE = (0, 5, 1, 2, 3, 6, 7)  # eax, ebp, ecx, edx, ebx, esi, edi


def _modrm(mod: int, reg: int, rm: int) -> int:
    return (mod << 6) | (reg << 3) | rm


def _disp8(value: int) -> bytes:
    return bytes([value & 0xFF])


def _imm32(value: int) -> bytes:
    return struct.pack("<i", value)


class X86Generator:
    """Generates one benchmark's x86 code image."""

    def __init__(
        self, profile: BenchmarkProfile, seed: int = 0, scale: float = 1.0
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.profile = profile
        # x86 code for the same program has fewer, denser instructions.
        self.target = max(64, int(profile.instructions * scale * 0.85))
        # zlib.crc32, not hash(): str hashing is randomised per process,
        # and generation must be reproducible across runs.
        import zlib

        name_seed = zlib.crc32(profile.name.encode()) & 0xFFFF
        self._rng = random.Random(name_seed ^ seed ^ 0x5A5A)
        self._registers = ZipfSampler(_REGISTER_PREFERENCE, profile.register_skew)
        self._call_offsets = [
            0x40 + 0x30 * i for i in range(max(8, self.target // 96))
        ]
        self._motifs: List[List[X86Instruction]] = []

    def _reg(self) -> int:
        return self._registers.sample(self._rng)

    def _frame_disp(self) -> int:
        """EBP-relative displacement: small multiples of 4, mostly negative."""
        slot = 4 * self._rng.randrange(1, 16)
        return -slot if self._rng.random() < 0.7 else slot + 8

    # -- instruction kinds -------------------------------------------------

    def _gen_load(self) -> X86Instruction:
        # mov r32, [ebp+disp8]
        return X86Instruction(
            opcode=b"\x8b",
            modrm=_modrm(1, self._reg(), 5),
            disp=_disp8(self._frame_disp()),
        )

    def _gen_store(self) -> X86Instruction:
        # mov [ebp+disp8], r32
        return X86Instruction(
            opcode=b"\x89",
            modrm=_modrm(1, self._reg(), 5),
            disp=_disp8(self._frame_disp()),
        )

    def _gen_alu_reg(self) -> X86Instruction:
        opcode = weighted_choice(
            self._rng,
            [(5, 0x01), (2, 0x29), (2, 0x31), (3, 0x39), (2, 0x21), (1, 0x09),
             (3, 0x85), (4, 0x89), (3, 0x8B)],
        )
        return X86Instruction(
            opcode=bytes([opcode]), modrm=_modrm(3, self._reg(), self._reg())
        )

    def _gen_alu_imm8(self) -> X86Instruction:
        group = weighted_choice(self._rng, [(5, 0), (2, 5), (3, 7), (1, 4)])
        imm = self._rng.choice([1, 1, 2, 4, 4, 8, 16, 0x10, 0x3F])
        return X86Instruction(
            opcode=b"\x83",
            modrm=_modrm(3, group, self._reg()),
            imm=bytes([imm]),
        )

    def _gen_mov_imm32(self) -> X86Instruction:
        value = weighted_choice(
            self._rng, [(5, 0), (3, 1), (2, self._rng.randrange(0, 256))]
        )
        return X86Instruction(
            opcode=bytes([0xB8 + self._reg()]), imm=_imm32(value)
        )

    def _gen_push_pop(self) -> X86Instruction:
        base = 0x50 if self._rng.random() < 0.6 else 0x58
        return X86Instruction(opcode=bytes([base + self._reg()]))

    def _gen_inc_dec(self) -> X86Instruction:
        base = 0x40 if self._rng.random() < 0.6 else 0x48
        return X86Instruction(opcode=bytes([base + self._reg()]))

    def _gen_jcc(self) -> X86Instruction:
        cc = weighted_choice(
            self._rng, [(4, 4), (4, 5), (2, 12), (2, 15), (1, 2), (1, 14)]
        )
        magnitude = self._rng.randrange(2, 48)
        if self._rng.random() < 0.55:
            magnitude = -magnitude
        return X86Instruction(opcode=bytes([0x70 + cc]), imm=_disp8(magnitude))

    def _gen_call(self) -> X86Instruction:
        return X86Instruction(
            opcode=b"\xe8", imm=_imm32(self._rng.choice(self._call_offsets))
        )

    def _gen_lea(self) -> X86Instruction:
        # lea r32, [ebp+disp8]
        return X86Instruction(
            opcode=b"\x8d",
            modrm=_modrm(1, self._reg(), 5),
            disp=_disp8(self._frame_disp()),
        )

    def _gen_movzx(self) -> X86Instruction:
        return X86Instruction(
            opcode=b"\x0f\xb6", modrm=_modrm(3, self._reg(), self._reg())
        )

    # -- structure -----------------------------------------------------------

    def _fresh_block(self) -> List[X86Instruction]:
        rng = self._rng
        length = rng.randrange(3, 9)
        table = [
            (0.24, self._gen_load),
            (0.13, self._gen_store),
            (0.22, self._gen_alu_reg),
            (0.12, self._gen_alu_imm8),
            (0.07, self._gen_mov_imm32),
            (0.08, self._gen_push_pop),
            (0.05, self._gen_inc_dec),
            (0.04, self._gen_lea),
            (0.03, self._gen_movzx),
        ]
        block = [weighted_choice(rng, table)() for _ in range(length)]
        terminator = weighted_choice(rng, [(5, "jcc"), (2, "call"), (3, "none")])
        if terminator == "jcc":
            block.append(self._gen_jcc())
        elif terminator == "call":
            block.append(self._gen_call())
        return block

    def _next_block(self) -> List[X86Instruction]:
        rng = self._rng
        if self._motifs and rng.random() < self.profile.motif_reuse:
            motif = rng.choice(self._motifs)
            if rng.random() < 0.65 and motif:
                # Re-emit the idiom with a different register or frame
                # slot: opcode sequences repeat, raw bytes diverge.
                clone = list(motif)
                for _ in range(rng.randrange(1, 3)):
                    index = rng.randrange(len(clone))
                    clone[index] = self._perturb(clone[index])
                return clone
            return list(motif)
        block = self._fresh_block()
        if len(self._motifs) < self.profile.motif_pool:
            self._motifs.append(block)
        else:
            self._motifs[rng.randrange(len(self._motifs))] = block
        return block

    def _perturb(self, old: X86Instruction) -> X86Instruction:
        """Vary one instruction's ModRM register or 8-bit displacement."""
        rng = self._rng
        if old.modrm is not None and (not old.disp or rng.random() < 0.5):
            mod, _reg, rm = (old.modrm >> 6), (old.modrm >> 3) & 7, old.modrm & 7
            return X86Instruction(
                prefixes=old.prefixes, opcode=old.opcode,
                modrm=_modrm(mod, self._reg(), rm), sib=old.sib,
                disp=old.disp, imm=old.imm,
            )
        if len(old.disp) == 1:
            delta = rng.choice((-8, -4, 4, 8))
            disp = bytes([(old.disp[0] + delta) & 0xFF])
            return X86Instruction(
                prefixes=old.prefixes, opcode=old.opcode,
                modrm=old.modrm, sib=old.sib, disp=disp, imm=old.imm,
            )
        return old

    def _function(self) -> List[X86Instruction]:
        rng = self._rng
        frame = 4 * rng.randrange(2, 12)
        body: List[X86Instruction] = [
            X86Instruction(opcode=b"\x55"),                      # push ebp
            X86Instruction(opcode=b"\x89", modrm=0xE5),          # mov ebp, esp
            X86Instruction(                                       # sub esp, imm8
                opcode=b"\x83", modrm=_modrm(3, 5, 4), imm=bytes([frame])
            ),
        ]
        for _ in range(rng.randrange(2, 9)):
            body.extend(self._next_block())
        body.append(X86Instruction(opcode=b"\xc9"))               # leave
        body.append(X86Instruction(opcode=b"\xc3"))               # ret
        return body

    def generate_instructions(self) -> List[X86Instruction]:
        out: List[X86Instruction] = []
        while len(out) < self.target:
            out.extend(self._function())
        return out

    def generate(self) -> bytes:
        code = bytearray()
        for instruction in self.generate_instructions():
            code.extend(instruction.encode())
        return bytes(code)
