"""SPEC95 benchmark profiles for the synthetic workload generator.

The paper evaluates on 18 SPEC95 benchmarks compiled for MIPS and
Pentium Pro.  We cannot ship those binaries, so each benchmark gets a
*profile* capturing the statistics that drive code compressibility:

* size (instruction count) — ``compress`` and ``tomcatv`` are small,
  ``gcc`` and ``vortex`` are large (the paper notes gzip's advantage
  shrinks on small programs such as ``compress``);
* integer vs floating-point mix — FP benchmarks use the COP1 subset and
  longer, more regular inner loops;
* *motif reuse* — how often the generated code repeats idiomatic
  instruction sequences, modelling how repetitive compiler output is
  (higher for regular FP loop nests, lower for branchy integer code);
* register skew — how concentrated register usage is.

Sizes are scaled-down (thousands of instructions, not hundreds of
thousands) so the full suite runs in seconds; compression *ratios* are
driven by the stream statistics, not absolute size, so the paper's
relative ordering is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical fingerprint of one SPEC95 benchmark."""

    name: str
    category: str  # "int" or "fp"
    #: Baseline instruction count at scale=1.0.
    instructions: int
    #: Probability a new basic block reuses a pooled motif (0..1).
    motif_reuse: float
    #: Number of distinct motifs in the pool; fewer = more repetitive.
    motif_pool: int
    #: Zipf-like exponent for register selection; higher = more skewed.
    register_skew: float
    #: Fraction of instructions that are FP operations (fp benchmarks).
    fp_fraction: float

    def __post_init__(self) -> None:
        if self.category not in ("int", "fp"):
            raise ValueError(f"bad category {self.category!r}")
        if not 0.0 <= self.motif_reuse <= 1.0:
            raise ValueError("motif_reuse must be in [0, 1]")


def _int(name: str, instructions: int, reuse: float, pool: int,
         skew: float = 1.2) -> BenchmarkProfile:
    return BenchmarkProfile(name, "int", instructions, reuse, pool, skew, 0.0)


def _fp(name: str, instructions: int, reuse: float, pool: int,
        skew: float = 1.4, fp_fraction: float = 0.35) -> BenchmarkProfile:
    return BenchmarkProfile(name, "fp", instructions, reuse, pool, skew, fp_fraction)


#: The 18 SPEC95 benchmarks of Figures 7 and 8, in the paper's order.
SPEC95: Tuple[BenchmarkProfile, ...] = (
    _fp("applu", 5200, 0.72, 40),
    _fp("apsi", 5800, 0.66, 55),
    _int("compress", 1100, 0.58, 35),
    _fp("fpppp", 7400, 0.62, 70, fp_fraction=0.45),
    _int("gcc", 9000, 0.55, 110),
    _int("go", 6200, 0.52, 95),
    _fp("hydro2d", 4800, 0.70, 45),
    _int("ijpeg", 4400, 0.60, 70),
    _int("m88ksim", 4000, 0.62, 60),
    _fp("mgrid", 3200, 0.76, 30),
    _int("perl", 6800, 0.56, 90),
    _fp("su2cor", 4600, 0.68, 50),
    _fp("swim", 2400, 0.78, 25),
    _fp("tomcatv", 1400, 0.80, 20),
    _fp("turb3d", 4200, 0.66, 55),
    _int("vortex", 8600, 0.58, 100),
    _fp("wave5", 5000, 0.67, 52),
    _int("xlisp", 3000, 0.64, 50),
)

#: Profiles by name.
BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in SPEC95}

#: The benchmark names in figure order.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(p.name for p in SPEC95)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a SPEC95 profile by benchmark name."""
    if name not in BY_NAME:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}"
        )
    return BY_NAME[name]
