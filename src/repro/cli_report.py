"""Shared report-formatting helpers for CLI subcommands.

``bench-diff`` and ``check`` both follow the same reporting contract:
a body of result lines on stdout (with a placeholder when there is
nothing to report), an optional failure summary on stderr, and an exit
status that gates CI.  Centralising that shape keeps the two commands'
output — and any future report-style subcommand — consistent.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterable, Optional, Sequence, TextIO


def format_table(
    rows: Sequence[Sequence[Any]],
    headers: Optional[Sequence[str]] = None,
    indent: str = "  ",
) -> str:
    """Render rows as an aligned two-or-more-column text table.

    Every cell is ``str()``-ed and left-aligned to its column's widest
    entry; with ``headers`` a ``-`` rule separates them from the body.
    Used by ``stats``, ``loadgen``, and ``fuzz`` so tabular CLI output
    shares one shape.
    """
    table = [[str(cell) for cell in row] for row in rows]
    if headers is not None:
        table = [[str(cell) for cell in headers]] + table
    if not table:
        return ""
    columns = max(len(row) for row in table)
    widths = [
        max((len(row[i]) for row in table if i < len(row)), default=0)
        for i in range(columns)
    ]
    if headers is not None:
        table.insert(1, ["-" * width for width in widths])
    lines = []
    for row in table:
        cells = [
            cell.ljust(widths[i]) if i < len(row) - 1 else cell
            for i, cell in enumerate(row)
        ]
        lines.append(indent + "  ".join(cells).rstrip())
    return "\n".join(lines)


def print_lines(
    lines: Iterable[str],
    empty: str,
    stream: Optional[TextIO] = None,
) -> None:
    """Print report body lines, or the ``empty`` placeholder if none."""
    out = stream if stream is not None else sys.stdout
    body = list(lines)
    print("\n".join(body) if body else empty, file=out)


def emit_json(payload: Any, stream: Optional[TextIO] = None) -> None:
    """Print a machine-readable report (stable key order)."""
    out = stream if stream is not None else sys.stdout
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)


def report_failures(
    count: int,
    message: str,
    stream: Optional[TextIO] = None,
) -> int:
    """Print a failure summary to stderr when ``count > 0``.

    Returns the exit status contribution: 1 on failure, 0 otherwise,
    so callers can ``return report_failures(...)`` directly.
    """
    err = stream if stream is not None else sys.stderr
    if count > 0:
        print(f"\n{message}", file=err)
        return 1
    return 0
