"""Shared report-formatting helpers for CLI subcommands.

``bench-diff`` and ``check`` both follow the same reporting contract:
a body of result lines on stdout (with a placeholder when there is
nothing to report), an optional failure summary on stderr, and an exit
status that gates CI.  Centralising that shape keeps the two commands'
output — and any future report-style subcommand — consistent.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterable, Optional, TextIO


def print_lines(
    lines: Iterable[str],
    empty: str,
    stream: Optional[TextIO] = None,
) -> None:
    """Print report body lines, or the ``empty`` placeholder if none."""
    out = stream if stream is not None else sys.stdout
    body = list(lines)
    print("\n".join(body) if body else empty, file=out)


def emit_json(payload: Any, stream: Optional[TextIO] = None) -> None:
    """Print a machine-readable report (stable key order)."""
    out = stream if stream is not None else sys.stdout
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)


def report_failures(
    count: int,
    message: str,
    stream: Optional[TextIO] = None,
) -> int:
    """Print a failure summary to stderr when ``count > 0``.

    Returns the exit status contribution: 1 on failure, 0 otherwise,
    so callers can ``return report_failures(...)`` directly.
    """
    err = stream if stream is not None else sys.stderr
    if count > 0:
        print(f"\n{message}", file=err)
        return 1
    return 0
