"""LZW compression — the UNIX ``compress(1)`` baseline of Figures 7/8.

Variable-width codes growing from 9 to 16 bits, a CLEAR code that resets
the dictionary when it fills, and greedy longest-prefix parsing: the same
algorithm family as ``compress``.  This is a *file-oriented* coder — the
dictionary is built adaptively along the stream, so decompression must
start from byte 0.  That is precisely why the paper rules the Ziv-Lempel
family out for compressed-code memories ("pointers to previous
occurrences of strings … makes an individual block decompression scheme
impossible"); it appears here purely as a compression-ratio yardstick.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bitstream.io import BitReader, BitWriter
from repro.fastpath import fastpath_enabled
from repro.obs import get_recorder
from repro.resilience.errors import (
    CATEGORY_BUDGET,
    CATEGORY_SYMBOL,
    CorruptedStreamError,
    decode_guard,
)

MIN_BITS = 9
MAX_BITS = 16
CLEAR_CODE = 256
FIRST_CODE = 257

#: Allocation budget for a declared output length.  The 32-bit header is
#: attacker-controlled on a corrupted stream; nothing this repo
#: compresses approaches the cap, so larger claims are rejected up front
#: instead of allocated.
MAX_DECLARED_OUTPUT = 1 << 28


def lzw_compress(data: bytes) -> bytes:
    """Compress with LZW (compress(1)-style variable-width codes).

    Dispatches to the integer-keyed kernel in
    :mod:`repro.fastpath.lz_kernel` unless ``REPRO_FASTPATH=0``; both
    paths emit the identical code stream.
    """
    rec = get_recorder()
    with rec.span("lzw.compress"):
        if fastpath_enabled():
            from repro.fastpath.lz_kernel import lzw_compress_fast

            out = lzw_compress_fast(data)
        else:
            out = _lzw_compress_reference(data)
    if rec.enabled:
        # The whole stream is the 32-bit length header plus code bits
        # (the final partial byte's padding is charged to the codes).
        rec.add_bits("header", 32)
        rec.add_bits("codes", len(out) * 8 - 32)
    return out


def lzw_compress_blocks(blocks) -> List[bytes]:
    """Compress a batch of independent blocks.

    Reference semantics are ``[lzw_compress(b) for b in blocks]`` (the
    ``REPRO_FASTPATH=0`` path); the fastpath batch kernel compresses
    each distinct block once and replays repeats.  Byte-identical either
    way.
    """
    blocks = [bytes(block) for block in blocks]
    if blocks and fastpath_enabled():
        from repro.fastpath.lz_kernel import lzw_compress_blocks_fast

        return lzw_compress_blocks_fast(blocks)
    return [lzw_compress(block) for block in blocks]


def _lzw_compress_reference(data: bytes) -> bytes:
    """The string-keyed parse the fastpath kernel is pinned against."""
    writer = BitWriter()
    # 16-bit big-endian length header so decompression is self-delimiting.
    writer.write_bits(len(data) & 0xFFFFFFFF, 32)
    if not data:
        return writer.getvalue()

    table: Dict[bytes, int] = {bytes([i]): i for i in range(256)}
    next_code = FIRST_CODE
    width = MIN_BITS
    clear_codes = 0
    prefix = bytes([data[0]])
    for byte in data[1:]:
        candidate = prefix + bytes([byte])
        if candidate in table:
            prefix = candidate
            continue
        writer.write_bits(table[prefix], width)
        if next_code < (1 << MAX_BITS):
            table[candidate] = next_code
            next_code += 1
            if next_code > (1 << width) and width < MAX_BITS:
                width += 1
        else:
            # Dictionary full: emit CLEAR and start over, like compress
            # does when its ratio-check fires.
            writer.write_bits(CLEAR_CODE, width)
            table = {bytes([i]): i for i in range(256)}
            next_code = FIRST_CODE
            width = MIN_BITS
            clear_codes += 1
        prefix = bytes([byte])
    writer.write_bits(table[prefix], width)
    if clear_codes:
        get_recorder().count("lzw.clear_codes", clear_codes)
    return writer.getvalue()


# repro: contract decode-entry
def lzw_decompress(payload: bytes) -> bytes:  # repro: noqa fastpath-parity (no decode kernel; table rebuild dominates either way)
    """Inverse of :func:`lzw_compress`.

    Termination on arbitrary bytes: the output loop is bounded by the
    (budget-capped) declared length, every code read consumes at least
    ``MIN_BITS`` of payload, and running off the end surfaces as a
    ``truncated`` :class:`CorruptedStreamError` via the guard.
    """
    with decode_guard("lzw.decompress"):
        reader = BitReader(payload)
        length = reader.read_bits(32)
        out = bytearray()
        if length == 0:
            return bytes(out)
        if length > MAX_DECLARED_OUTPUT:
            raise CorruptedStreamError(
                f"declared output of {length} bytes exceeds the "
                f"{MAX_DECLARED_OUTPUT}-byte budget",
                offset=0,
                category=CATEGORY_BUDGET,
            )

        table: List[bytes] = [bytes([i]) for i in range(256)] + [b""]  # slot 256 = CLEAR
        width = MIN_BITS
        previous = b""
        while len(out) < length:
            code = reader.read_bits(width)
            if code == CLEAR_CODE:
                table = [bytes([i]) for i in range(256)] + [b""]  # slot 256 = CLEAR
                width = MIN_BITS
                previous = b""
                continue
            if code < len(table) and table[code]:
                entry = table[code]
            elif code == len(table) and previous:
                entry = previous + previous[:1]  # the KwKwK corner case
            else:
                raise CorruptedStreamError(
                    f"invalid LZW code {code}",
                    offset=reader.bit_position // 8,
                    category=CATEGORY_SYMBOL,
                )
            out.extend(entry)
            if previous and len(table) < (1 << MAX_BITS):
                table.append(previous + entry[:1])
                # The encoder widens after *assigning* next_code; mirror it.
                if len(table) + 1 > (1 << width) and width < MAX_BITS:
                    width += 1
            previous = entry
        return bytes(out[:length])


def lzw_ratio(data: bytes) -> float:
    """Compressed/original size ratio (the paper's metric)."""
    if not data:
        return 1.0
    return len(lzw_compress(data)) / len(data)
