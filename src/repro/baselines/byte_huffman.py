"""Byte-based Huffman coding — the Kozuch & Wolfe baseline of Figure 9.

One semiadaptive Huffman table over the program's byte distribution;
every cache block encodes independently (Huffman is stateless, so block
random access is free — the property that made this the prior state of
the art for compressed-code memories).  Its weakness, which the paper
calls out, is treating all four bytes of a 32-bit instruction as draws
from a single distribution, ignoring per-field statistics — exactly what
SAMC's stream subdivision fixes.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from repro.bitstream.io import BitReader, BitWriter
from repro.core.lat import CompressedImage, split_blocks
from repro.fastpath import fastpath_enabled
from repro.entropy.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
)
from repro.obs import get_recorder
from repro.resilience.errors import decode_guard
from repro.resilience.frame import block_payload

DEFAULT_BLOCK_SIZE = 32


class ByteHuffmanCodec:
    """Block-oriented byte Huffman compressor (Kozuch & Wolfe)."""

    def __init__(self, block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.block_size = block_size

    def compress(self, code: bytes) -> CompressedImage:  # repro: noqa fastpath-parity (table-driven HuffmanEncoder already batches; no encode kernel)
        """Compress a code image block by block under one shared table."""
        rec = get_recorder()
        table = build_code(Counter(code))
        encoder = HuffmanEncoder(table)
        blocks = []
        if rec.enabled:
            with rec.span("byte_huffman.encode"):
                symbol_bits = 0
                padding_bits = 0
                for block in split_blocks(code, self.block_size):
                    writer = BitWriter()
                    encoder.encode_to(writer, list(block))
                    payload = writer.getvalue()
                    symbol_bits += writer.bit_length
                    padding_bits += len(payload) * 8 - writer.bit_length
                    blocks.append(payload)
            rec.add_bits("symbols", symbol_bits)
            if padding_bits:
                rec.add_bits("padding", padding_bits)
        else:
            for block in split_blocks(code, self.block_size):
                writer = BitWriter()
                encoder.encode_to(writer, list(block))
                blocks.append(writer.getvalue())
        image = CompressedImage(
            algorithm="byte-huffman",
            original_size=len(code),
            block_size=self.block_size,
            blocks=blocks,
            model_bytes=(table.table_bits(8) + 7) // 8,
            metadata={"code": table},
        )
        if rec.enabled:
            rec.add_bits("model", image.model_bytes * 8)
            rec.add_bits("lat", image.compact_lat.storage_bytes * 8)
            rec.count("byte_huffman.blocks_encoded", len(blocks))
        return image

    # repro: contract decode-entry
    def decompress(self, image: CompressedImage) -> bytes:
        return b"".join(
            self.decompress_blocks(image, range(image.block_count()))
        )

    # repro: contract decode-entry
    def decompress_blocks(
        self, image: CompressedImage, indices: Sequence[int]
    ) -> List[bytes]:
        """Random-access decode of a batch of cache blocks.

        Reference semantics are the per-block loop (and that is the
        ``REPRO_FASTPATH=0`` path).  With the fastpath on, the shared
        canonical table compiles to a flat lookup table once and the
        batch decodes in lockstep
        (:func:`repro.fastpath.huffman_kernel.decode_blocks_fast`);
        corrupted streams and exotic tables drop back to the reference
        decoder so the error behaviour — which block raises, and what —
        is exactly the loop's.  Output is byte-identical either way.
        """
        indices = list(indices)
        if not indices:
            return []
        if fastpath_enabled():
            from repro.fastpath.huffman_kernel import (
                compile_decode_table,
                decode_blocks_fast,
            )

            table = compile_decode_table(image.metadata["code"])
            if table is not None:
                counts = [
                    self._original_block_bytes(image, index)
                    for index in indices
                ]
                with decode_guard("byte_huffman.decompress_blocks"):
                    payloads = [
                        block_payload(image, index) for index in indices
                    ]
                    decoded = decode_blocks_fast(table, payloads, counts)
                if decoded is not None:
                    return decoded
        return [self.decompress_block(image, index) for index in indices]

    def decompress_block(self, image: CompressedImage, block_index: int) -> bytes:  # repro: noqa fastpath-parity (single-block reference path; the batch entry point dispatches)
        """Random-access decode of one cache block."""
        table: HuffmanCode = image.metadata["code"]
        decoder = HuffmanDecoder(table)
        count = self._original_block_bytes(image, block_index)
        with decode_guard("byte_huffman.decompress_block"):
            symbols = decoder.decode(block_payload(image, block_index), count)
            # bytes() rejects symbols outside [0, 255] — a corrupted table
            # can decode such a symbol, so keep the conversion guarded.
            return bytes(symbols)

    def _original_block_bytes(self, image: CompressedImage, block_index: int) -> int:
        full_blocks, tail = divmod(image.original_size, image.block_size)
        if block_index < full_blocks:
            return image.block_size
        if block_index == full_blocks and tail:
            return tail
        raise IndexError(f"block {block_index} out of range")


def byte_huffman_ratio(code: bytes, block_size: int = DEFAULT_BLOCK_SIZE) -> float:
    """Compressed/original ratio including table and LAT overhead."""
    if not code:
        return 1.0
    return ByteHuffmanCodec(block_size).compress(code).compression_ratio
