"""Positional byte-Huffman: one table per byte position in the word.

The paper's critique of Kozuch & Wolfe's byte-Huffman is precise: "all 4
bytes within the same 32-bit word are encoded using the same table.
Since instructions have different fields which have different
statistical characteristics such a choice increases the entropy of the
source significantly."  This codec is the natural fix — a separate
Huffman table for each byte position within the instruction word — and
sits strictly between plain byte-Huffman and SAMC: per-field statistics,
but no intra- or inter-field memory.  The ``tab-positional`` benchmark
uses it to quantify the paper's argument.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.bitstream.io import BitReader, BitWriter
from repro.core.lat import CompressedImage, split_blocks
from repro.entropy.huffman import (
    HuffmanCode,
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
)
from repro.resilience.errors import decode_guard

DEFAULT_BLOCK_SIZE = 32


class PositionalHuffmanCodec:
    """Byte-Huffman with per-byte-position tables (word-aligned code)."""

    def __init__(
        self, block_size: int = DEFAULT_BLOCK_SIZE, word_bytes: int = 4
    ) -> None:
        if word_bytes < 1:
            raise ValueError("word_bytes must be positive")
        if block_size % word_bytes != 0:
            raise ValueError("block_size must hold whole words")
        self.block_size = block_size
        self.word_bytes = word_bytes

    def compress(self, code: bytes) -> CompressedImage:
        """Compress block by block under one table per byte position."""
        if len(code) % self.word_bytes != 0:
            raise ValueError(
                f"code length {len(code)} is not a multiple of "
                f"{self.word_bytes}"
            )
        counters = [Counter() for _ in range(self.word_bytes)]
        for index, byte in enumerate(code):
            counters[index % self.word_bytes][byte] += 1
        tables = [build_code(counter) for counter in counters]
        encoders = [HuffmanEncoder(table) for table in tables]

        blocks = []
        for block in split_blocks(code, self.block_size):
            writer = BitWriter()
            for index, byte in enumerate(block):
                encoders[index % self.word_bytes].encode_to(writer, [byte])
            blocks.append(writer.getvalue())

        model_bits = sum(table.table_bits(8) for table in tables)
        return CompressedImage(
            algorithm="byte-huffman",  # same decoder class and timing
            original_size=len(code),
            block_size=self.block_size,
            blocks=blocks,
            model_bytes=(model_bits + 7) // 8,
            metadata={"positional_tables": tables,
                      "word_bytes": self.word_bytes},
        )

    # repro: contract decode-entry
    def decompress(self, image: CompressedImage) -> bytes:
        return b"".join(
            self.decompress_block(image, index)
            for index in range(image.block_count())
        )

    def decompress_block(self, image: CompressedImage, block_index: int) -> bytes:
        count = self._original_block_bytes(image, block_index)
        with decode_guard("positional_huffman.decompress_block"):
            # Everything derived from the image is untrusted: a missing
            # metadata key, a truncated payload (BitReader EOF), or a
            # symbol outside [0, 255] must surface as
            # CorruptedStreamError, never a low-level exception.
            tables: List[HuffmanCode] = image.metadata["positional_tables"]
            decoders = [HuffmanDecoder(table) for table in tables]
            reader = BitReader(image.blocks[block_index])
            out = bytearray()
            for index in range(count):
                out.extend(
                    decoders[index % self.word_bytes].decode_from(reader, 1)
                )
            return bytes(out)

    def _original_block_bytes(self, image: CompressedImage, block_index: int) -> int:
        full_blocks, tail = divmod(image.original_size, image.block_size)
        if block_index < full_blocks:
            return image.block_size
        if block_index == full_blocks and tail:
            return tail
        raise IndexError(f"block {block_index} out of range")


def positional_huffman_ratio(
    code: bytes, block_size: int = DEFAULT_BLOCK_SIZE
) -> float:
    """Compressed/original ratio with per-position tables."""
    if not code:
        return 1.0
    return PositionalHuffmanCodec(block_size).compress(code).compression_ratio
