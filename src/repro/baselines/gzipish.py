"""The ``gzip`` stand-in: LZSS + canonical Huffman (simplified DEFLATE).

Matches and literals from :mod:`repro.baselines.lzss` are coded with two
semiadaptive canonical Huffman tables using DEFLATE's symbol binning:

* **lit/len alphabet** — 256 literal bytes, an end-of-block symbol, and
  29 length bins, each followed by 0-5 raw extra bits;
* **distance alphabet** — 30 distance bins with 0-13 raw extra bits.

The code-length tables travel in the header (5 bits per present symbol),
so the output is fully self-contained and the measured sizes are honest.
Like real gzip — and unlike SAMC/SADC — the stream only decompresses
from the beginning; it is the file-oriented upper-bound comparator in
Figures 7 and 8.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.lzss import Literal, Match, Token, detokenize, tokenize
from repro.bitstream.io import BitReader, BitWriter
from repro.entropy.huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    build_code,
)
from repro.obs import get_recorder
from repro.resilience.errors import decode_guard

END_OF_BLOCK = 256

#: DEFLATE length bins: (symbol, extra_bits, base_length).
_LENGTH_BINS: List[Tuple[int, int, int]] = []
_length_bases = [
    (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 9), (0, 10),
    (1, 11), (1, 13), (1, 15), (1, 17), (2, 19), (2, 23), (2, 27), (2, 31),
    (3, 35), (3, 43), (3, 51), (3, 59), (4, 67), (4, 83), (4, 99), (4, 115),
    (5, 131), (5, 163), (5, 195), (5, 227), (0, 258),
]
for _i, (_extra, _base) in enumerate(_length_bases):
    _LENGTH_BINS.append((257 + _i, _extra, _base))

#: DEFLATE distance bins: (symbol, extra_bits, base_distance).
_DISTANCE_BINS: List[Tuple[int, int, int]] = []
_distance_bases = [
    (0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 7), (2, 9), (2, 13),
    (3, 17), (3, 25), (4, 33), (4, 49), (5, 65), (5, 97), (6, 129), (6, 193),
    (7, 257), (7, 385), (8, 513), (8, 769), (9, 1025), (9, 1537),
    (10, 2049), (10, 3073), (11, 4097), (11, 6145), (12, 8193), (12, 12289),
    (13, 16385), (13, 24577),
]
for _i, (_extra, _base) in enumerate(_distance_bases):
    _DISTANCE_BINS.append((_i, _extra, _base))


def _length_symbol(length: int) -> Tuple[int, int, int]:
    """(symbol, extra_bits, extra_value) for a match length."""
    for symbol, extra, base in reversed(_LENGTH_BINS):
        if length >= base:
            return symbol, extra, length - base
    raise ValueError(f"match length {length} below minimum")


def _distance_symbol(distance: int) -> Tuple[int, int, int]:
    for symbol, extra, base in reversed(_DISTANCE_BINS):
        if distance >= base:
            return symbol, extra, distance - base
    raise ValueError(f"distance {distance} below minimum")


_LENGTH_BY_SYMBOL = {symbol: (extra, base) for symbol, extra, base in _LENGTH_BINS}
_DISTANCE_BY_SYMBOL = {symbol: (extra, base) for symbol, extra, base in _DISTANCE_BINS}


def _write_table(writer: BitWriter, lengths: Dict[int, int], alphabet: int) -> None:
    """Serialise code lengths: 5 bits per symbol, 0 = absent."""
    for symbol in range(alphabet):
        writer.write_bits(min(31, lengths.get(symbol, 0)), 5)


def _read_table(reader: BitReader, alphabet: int) -> Dict[int, int]:
    lengths = {}
    for symbol in range(alphabet):
        length = reader.read_bits(5)
        if length:
            lengths[symbol] = length
    return lengths


def gzipish_compress(data: bytes) -> bytes:
    """Compress ``data``; output embeds both Huffman tables."""
    tokens = tokenize(data)

    litlen_counts: Dict[int, int] = {END_OF_BLOCK: 1}
    dist_counts: Dict[int, int] = {}
    coded: List[Tuple[str, tuple]] = []
    for token in tokens:
        if isinstance(token, Literal):
            litlen_counts[token.byte] = litlen_counts.get(token.byte, 0) + 1
            coded.append(("lit", (token.byte,)))
        else:
            symbol, extra, value = _length_symbol(token.length)
            litlen_counts[symbol] = litlen_counts.get(symbol, 0) + 1
            dsymbol, dextra, dvalue = _distance_symbol(token.distance)
            dist_counts[dsymbol] = dist_counts.get(dsymbol, 0) + 1
            coded.append(("match", (symbol, extra, value, dsymbol, dextra, dvalue)))

    litlen_code = build_code(litlen_counts)
    dist_code = build_code(dist_counts)
    rec = get_recorder()
    if rec.enabled:
        return _emit_instrumented(rec, coded, litlen_code, dist_code)
    writer = BitWriter()
    _write_table(writer, litlen_code.lengths, 286)
    _write_table(writer, dist_code.lengths, 30)
    litlen_encoder = HuffmanEncoder(litlen_code)
    dist_encoder = HuffmanEncoder(dist_code)
    for kind, payload in coded:
        if kind == "lit":
            litlen_encoder.encode_to(writer, [payload[0]])
        else:
            symbol, extra, value, dsymbol, dextra, dvalue = payload
            litlen_encoder.encode_to(writer, [symbol])
            if extra:
                writer.write_bits(value, extra)
            dist_encoder.encode_to(writer, [dsymbol])
            if dextra:
                writer.write_bits(dvalue, dextra)
    litlen_encoder.encode_to(writer, [END_OF_BLOCK])
    return writer.getvalue()


def _emit_instrumented(rec, coded, litlen_code, dist_code) -> bytes:
    """Obs-on emit: the same writes as the loop in
    :func:`gzipish_compress`, with ``writer.bit_length`` deltas charged
    to tables / literals / match_lengths / match_distances / eob."""
    writer = BitWriter()
    _write_table(writer, litlen_code.lengths, 286)
    _write_table(writer, dist_code.lengths, 30)
    table_bits = writer.bit_length
    litlen_encoder = HuffmanEncoder(litlen_code)
    dist_encoder = HuffmanEncoder(dist_code)
    literal_bits = 0
    length_bits = 0
    distance_bits = 0
    for kind, payload in coded:
        if kind == "lit":
            mark = writer.bit_length
            litlen_encoder.encode_to(writer, [payload[0]])
            literal_bits += writer.bit_length - mark
        else:
            symbol, extra, value, dsymbol, dextra, dvalue = payload
            mark = writer.bit_length
            litlen_encoder.encode_to(writer, [symbol])
            if extra:
                writer.write_bits(value, extra)
            length_bits += writer.bit_length - mark
            mark = writer.bit_length
            dist_encoder.encode_to(writer, [dsymbol])
            if dextra:
                writer.write_bits(dvalue, dextra)
            distance_bits += writer.bit_length - mark
    mark = writer.bit_length
    litlen_encoder.encode_to(writer, [END_OF_BLOCK])
    eob_bits = writer.bit_length - mark
    out = writer.getvalue()
    rec.add_bits("tables", table_bits)
    if literal_bits:
        rec.add_bits("literals", literal_bits)
    if length_bits:
        rec.add_bits("match_lengths", length_bits)
    if distance_bits:
        rec.add_bits("match_distances", distance_bits)
    rec.add_bits("eob", eob_bits)
    pad = len(out) * 8 - writer.bit_length
    if pad:
        rec.add_bits("padding", pad)
    return out


# repro: contract decode-entry
def gzipish_decompress(payload: bytes) -> bytes:
    """Inverse of :func:`gzipish_compress`.

    Termination on arbitrary bytes: each token consumes at least one
    payload bit, matches expand at most 258 bytes each, and exhausting
    the reader raises through the guard as ``truncated``.
    """
    with decode_guard("gzipish.decompress"):
        reader = BitReader(payload)
        litlen_lengths = _read_table(reader, 286)
        dist_lengths = _read_table(reader, 30)
        from repro.entropy.huffman import HuffmanCode, canonical_codewords

        litlen_code = HuffmanCode(litlen_lengths, canonical_codewords(litlen_lengths))
        dist_code = HuffmanCode(dist_lengths, canonical_codewords(dist_lengths))
        litlen_decoder = HuffmanDecoder(litlen_code)
        dist_decoder = HuffmanDecoder(dist_code)

        tokens: List[Token] = []
        while True:
            symbol = litlen_decoder.decode_from(reader, 1)[0]
            if symbol == END_OF_BLOCK:
                break
            if symbol < 256:
                tokens.append(Literal(symbol))
                continue
            extra, base = _LENGTH_BY_SYMBOL[symbol]
            length = base + (reader.read_bits(extra) if extra else 0)
            dsymbol = dist_decoder.decode_from(reader, 1)[0]
            dextra, dbase = _DISTANCE_BY_SYMBOL[dsymbol]
            distance = dbase + (reader.read_bits(dextra) if dextra else 0)
            tokens.append(Match(length, distance))
        return detokenize(iter(tokens))


def gzipish_ratio(data: bytes) -> float:
    """Compressed/original ratio for the gzip stand-in."""
    if not data:
        return 1.0
    return len(gzipish_compress(data)) / len(data)
