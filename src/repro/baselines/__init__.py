"""Baseline compressors the paper compares against.

* :mod:`repro.baselines.lzw` — UNIX ``compress`` (file-oriented LZW).
* :mod:`repro.baselines.gzipish` — gzip stand-in (LZSS + Huffman).
* :mod:`repro.baselines.byte_huffman` — Kozuch & Wolfe byte Huffman
  (block-oriented; the prior instruction-compression state of the art).
"""

from repro.baselines.byte_huffman import ByteHuffmanCodec, byte_huffman_ratio
from repro.baselines.positional_huffman import (
    PositionalHuffmanCodec,
    positional_huffman_ratio,
)
from repro.baselines.gzipish import (
    gzipish_compress,
    gzipish_decompress,
    gzipish_ratio,
)
from repro.baselines.lzss import Literal, Match, detokenize, tokenize
from repro.baselines.lzw import lzw_compress, lzw_decompress, lzw_ratio

__all__ = [
    "ByteHuffmanCodec",
    "Literal",
    "Match",
    "PositionalHuffmanCodec",
    "positional_huffman_ratio",
    "byte_huffman_ratio",
    "detokenize",
    "gzipish_compress",
    "gzipish_decompress",
    "gzipish_ratio",
    "lzw_compress",
    "lzw_decompress",
    "lzw_ratio",
    "tokenize",
]
