"""LZSS: sliding-window match finding (the LZ77 half of gzip).

A hash-chain matcher over a 32 KiB window with 3..258-byte matches —
the same search structure and limits as DEFLATE.  The token stream
(:class:`Literal` / :class:`Match`) is consumed by
:mod:`repro.baselines.gzipish`, which entropy-codes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Union

from repro.fastpath import fastpath_enabled
from repro.obs import get_recorder
from repro.resilience.errors import CATEGORY_STRUCTURE, CorruptedStreamError

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
#: Hash-chain depth bound: the classic speed/ratio trade-off knob.
MAX_CHAIN = 64


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    byte: int


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int


Token = Union[Literal, Match]


def tokenize(data: bytes) -> List[Token]:
    """Greedy LZSS parse of ``data`` into literals and matches.

    Dispatches to the chunked-extension kernel in
    :mod:`repro.fastpath.lz_kernel` unless ``REPRO_FASTPATH=0``; both
    paths emit the identical token stream.
    """
    rec = get_recorder()
    with rec.span("lzss.tokenize"):
        if fastpath_enabled():
            from repro.fastpath.lz_kernel import tokenize_fast

            tokens = tokenize_fast(data)
        else:
            tokens = _tokenize_reference(data)
    if rec.enabled:
        literals = sum(1 for token in tokens if isinstance(token, Literal))
        rec.count("lzss.literals", literals)
        rec.count("lzss.matches", len(tokens) - literals)
        for token in tokens:
            if isinstance(token, Match):
                rec.observe("lzss.match_length", token.length)
    return tokens


def tokenize_blocks(blocks) -> List[List[Token]]:
    """Greedy-parse a batch of independent blocks.

    Reference semantics are ``[tokenize(b) for b in blocks]`` — that is
    the ``REPRO_FASTPATH=0`` path.  With the fastpath on, the batch goes
    to :func:`repro.fastpath.lz_kernel.tokenize_blocks_fast`, which
    precomputes every block's hash-chain keys in one vectorised pass and
    parses repeated blocks once; the token streams are identical either
    way.
    """
    blocks = [bytes(block) for block in blocks]
    if blocks and fastpath_enabled():
        from repro.fastpath.lz_kernel import tokenize_blocks_fast

        return tokenize_blocks_fast(blocks)
    return [tokenize(block) for block in blocks]


def _tokenize_reference(data: bytes) -> List[Token]:
    """The clarity-first parse the fastpath kernel is pinned against."""
    tokens: List[Token] = []
    chains: Dict[bytes, List[int]] = {}
    pos = 0
    n = len(data)
    while pos < n:
        best_length = 0
        best_distance = 0
        if pos + MIN_MATCH <= n:
            key = data[pos : pos + MIN_MATCH]
            for candidate in reversed(chains.get(key, ())):
                if pos - candidate > WINDOW_SIZE:
                    break
                length = _match_length(data, candidate, pos)
                if length > best_length:
                    best_length = length
                    best_distance = pos - candidate
                    if length >= MAX_MATCH:
                        break
        if best_length >= MIN_MATCH:
            tokens.append(Match(best_length, best_distance))
            end = pos + best_length
            while pos < end:
                if pos + MIN_MATCH <= n:
                    _insert(chains, data[pos : pos + MIN_MATCH], pos)
                pos += 1
        else:
            tokens.append(Literal(data[pos]))
            if pos + MIN_MATCH <= n:
                _insert(chains, data[pos : pos + MIN_MATCH], pos)
            pos += 1
    return tokens


def _match_length(data: bytes, candidate: int, pos: int) -> int:
    limit = min(MAX_MATCH, len(data) - pos)
    length = 0
    while length < limit and data[candidate + length] == data[pos + length]:
        length += 1
    return length


def _insert(chains: Dict[bytes, List[int]], key: bytes, pos: int) -> None:
    chain = chains.setdefault(key, [])
    chain.append(pos)
    if len(chain) > MAX_CHAIN:
        del chain[0 : len(chain) - MAX_CHAIN]


# repro: contract decode-entry
def detokenize(tokens: Iterator[Token]) -> bytes:  # repro: noqa fastpath-parity (no decode kernel; copy loop is already linear)
    """Expand a token stream back to bytes."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            if token.distance < 1 or token.distance > len(out):
                raise CorruptedStreamError(
                    f"bad match distance {token.distance} with "
                    f"{len(out)} bytes decoded",
                    offset=len(out),
                    category=CATEGORY_STRUCTURE,
                )
            start = len(out) - token.distance
            for i in range(token.length):  # may self-overlap, byte at a time
                out.append(out[start + i])
    return bytes(out)
