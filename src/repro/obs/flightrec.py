"""The flight recorder: a bounded ring of request-lifecycle events.

Post-mortems for the serving stack.  Aggregated telemetry answers "how
is the service doing"; when a fuzz run hangs or a busy storm drops a
connection, the question becomes "what were the last N things that
happened", and counters cannot answer it.  The flight recorder can: a
fixed-capacity ring buffer of structured events — every accepted
request, reply, busy rejection, wire error, and internal failure, each
stamped with a monotonic timestamp and a monotonically increasing
sequence number — that costs O(capacity) memory forever and is dumped
as JSONL on demand:

* the service's ``DUMP`` wire op returns the ring to any client;
* the server writes a dump file when a wire error trips it (see
  ``ServiceConfig.flightrec_dump``);
* the protocol fuzzer attaches a dump to every failing run, so a fuzz
  failure in CI ships its own flight data as an artifact.

Clock use is confined to :mod:`repro.obs` by design: events carry
``monotonic_ns`` readings, and the determinism story is the same as the
recorder's — timestamps are *data*, and every serialisation below
iterates in insertion/sorted order so identical event sequences produce
identical dumps.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.clock import monotonic_ns

#: Default ring capacity; one event is a small dict, so the default
#: recorder holds the last ~1k lifecycle events in ~a few hundred KB.
DEFAULT_CAPACITY = 1024

#: Dump document schema version (the ``meta`` line of every dump).
DUMP_VERSION = 1


class FlightRecorder:
    """Bounded, thread-safe ring buffer of structured events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder needs capacity >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    def record(self, kind: str, **fields: object) -> None:
        """Append one event; the oldest event falls off a full ring."""
        with self._lock:
            self._seq += 1
            if len(self._ring) == self.capacity:
                self._dropped += 1
            event: Dict[str, object] = {
                "seq": self._seq,
                "t_ns": monotonic_ns(),
                "kind": kind,
            }
            for key in sorted(fields):
                event[key] = fields[key]
            self._ring.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (dropped ones included)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        with self._lock:
            return self._dropped

    def events(self) -> List[Dict[str, object]]:
        """Snapshot of the ring, oldest first (copies, safe to mutate)."""
        with self._lock:
            return [dict(event) for event in self._ring]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts per ``kind`` over the current ring contents.

        What lifecycle verification wants: "how many ``shed`` /
        ``drained`` / ``force_closed`` events survived the run" without
        hand-rolling the aggregation at every call site.
        """
        counts: Dict[str, int] = {}
        for event in self.events():
            kind = str(event["kind"])
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # repro: contract determinism-sink
    def dump_jsonl(self) -> str:
        """The ring as JSONL: one ``meta`` line, then one line per event.

        Key order inside each line is sorted and the event order is the
        ring order, so two recorders holding the same event sequence
        dump byte-identical documents.
        """
        import json

        with self._lock:
            events = [dict(event) for event in self._ring]
            meta = {
                "meta": DUMP_VERSION,
                "capacity": self.capacity,
                "recorded": self._seq,
                "dropped": self._dropped,
                "events": len(events),
            }
        lines = [json.dumps(meta, sort_keys=True)]
        lines.extend(json.dumps(event, sort_keys=True) for event in events)
        return "\n".join(lines) + "\n"

    def dump_to(self, path: str) -> str:
        """Write :meth:`dump_jsonl` to ``path``; returns the path."""
        data = self.dump_jsonl()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(data)
        return path


class NullFlightRecorder:
    """Disabled recorder: every operation is a no-op, dumps are empty."""

    capacity = 0
    recorded = 0
    dropped = 0

    def record(self, kind: str, **fields: object) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self) -> List[Dict[str, object]]:
        return []

    def clear(self) -> None:
        pass

    def counts_by_kind(self) -> Dict[str, int]:
        return {}

    def dump_jsonl(self) -> str:
        import json

        return json.dumps({
            "meta": DUMP_VERSION, "capacity": 0, "recorded": 0,
            "dropped": 0, "events": 0,
        }, sort_keys=True) + "\n"

    def dump_to(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dump_jsonl())
        return path


def parse_dump(data: str) -> Dict[str, object]:
    """Parse a JSONL dump back into ``{"meta": ..., "events": [...]}``.

    Raises ``ValueError`` on a malformed document — the shape check the
    fuzz artifacts and tests rely on.
    """
    import json

    lines = [line for line in data.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty flight-recorder dump")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ValueError(f"bad dump meta line: {error}") from error
    if not isinstance(meta, dict) or "meta" not in meta:
        raise ValueError("first dump line is not a meta record")
    events = []
    for index, line in enumerate(lines[1:], start=2):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"bad dump line {index}: {error}") from error
        if not isinstance(event, dict) or "seq" not in event:
            raise ValueError(f"dump line {index} is not an event record")
        events.append(event)
    if meta.get("events") != len(events):
        raise ValueError(
            f"dump meta declares {meta.get('events')} events, "
            f"found {len(events)}"
        )
    return {"meta": meta, "events": events}


__all__ = [
    "DEFAULT_CAPACITY",
    "DUMP_VERSION",
    "FlightRecorder",
    "NullFlightRecorder",
    "parse_dump",
]
