"""Codec telemetry: spans, typed metrics, and bit-accounting.

A zero-dependency observability layer for the whole compression stack.
Three channels, one recorder:

* **Spans** — nested timed regions on monotonic clocks, aggregated by
  path (``pipeline.run/job{...}/samc.encode``) so traces from every
  worker process merge into one tree.
* **Metric instruments** — counters, high-water-mark gauges, and
  histograms with fixed exponential bucketing (merges are deterministic
  regardless of process interleaving).
* **Bit accounting** — codecs attribute every output bit to a category
  (per-stream arithmetic-coder bits, dictionary tokens vs operand
  streams, model tables, LAT, padding) under a ``benchmark/isa/algo``
  scope; per-scope totals equal the compressed size in bits exactly.

**Off by default, free when off.**  The ambient recorder is a
:class:`~repro.obs.recorder.NullRecorder` unless ``REPRO_OBS=1`` is set
(or a CLI ``--obs`` flag / :func:`obs_session` enables it), and every
instrumentation site branches on ``recorder.enabled`` so the disabled
hot paths execute exactly the pre-instrumentation code.  Golden vectors
and benchmark medians pin that property.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Union

from repro.obs.recorder import (
    NullRecorder,
    Recorder,
    empty_snapshot,
    merge_snapshots,
)

#: Environment variable that enables telemetry at interpreter start;
#: also how the pipeline's pool workers inherit the setting.
OBS_ENV = "REPRO_OBS"

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled() -> bool:
    return os.environ.get(OBS_ENV, "").lower() in _TRUTHY


#: The ambient recorder every instrumentation site consults.
_RECORDER: Union[NullRecorder, Recorder] = (
    Recorder() if _env_enabled() else NullRecorder()
)


def get_recorder() -> Union[NullRecorder, Recorder]:
    """The ambient recorder (a no-op :class:`NullRecorder` when off)."""
    return _RECORDER


def set_recorder(
    recorder: Union[NullRecorder, Recorder],
) -> Union[NullRecorder, Recorder]:
    """Install ``recorder`` as ambient; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def obs_enabled() -> bool:
    """True when the ambient recorder is live."""
    return _RECORDER.enabled


@contextmanager
def use_recorder(recorder: Union[NullRecorder, Recorder]):
    """Temporarily swap the ambient recorder (process-wide).

    The pipeline worker entry point uses this to isolate one job's
    telemetry into a fresh recorder whose snapshot travels back in the
    job payload.
    """
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def obs_session(scope: str = ""):
    """Enable telemetry for a block: fresh recorder + ``REPRO_OBS=1``.

    Setting the environment variable (not just the in-process recorder)
    is what lets ``ProcessPoolExecutor`` workers — fork or spawn — come
    up with telemetry already enabled; both the variable and the ambient
    recorder are restored on exit.
    """
    recorder = Recorder(scope=scope)
    previous_env = os.environ.get(OBS_ENV)
    os.environ[OBS_ENV] = "1"
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
        if previous_env is None:
            os.environ.pop(OBS_ENV, None)
        else:
            os.environ[OBS_ENV] = previous_env


__all__ = [
    "OBS_ENV",
    "NullRecorder",
    "Recorder",
    "empty_snapshot",
    "get_recorder",
    "merge_snapshots",
    "obs_enabled",
    "obs_session",
    "set_recorder",
    "use_recorder",
]
