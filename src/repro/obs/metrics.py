"""Typed metric instruments: counters, gauges, exponential histograms.

The instruments live as plain dicts inside the recorder; this module
holds the value semantics, chosen so that **merging is deterministic**:

* counters add;
* gauges keep the maximum (the only commutative, associative choice
  that needs no timestamps — "high-water mark" semantics);
* histograms use *fixed* exponential bucketing — bucket ``i`` holds
  values ``v`` with ``bit_length(v) == i`` (i.e. ``2**(i-1) <= v <
  2**i``), bucket 0 holds ``v <= 0`` — so two histograms built in
  different processes always share bucket boundaries and merge by
  plain per-bucket addition.
"""

from __future__ import annotations

from typing import Dict

#: Largest histogram bucket index; values beyond 2**63 clamp here.
BUCKET_CAP = 64


def bucket_index(value: int) -> int:
    """Fixed exponential bucket of a non-negative integer observation."""
    if value <= 0:
        return 0
    return min(int(value).bit_length(), BUCKET_CAP)


def bucket_bounds(index: int) -> tuple:
    """Inclusive-exclusive ``[lo, hi)`` value range of a bucket."""
    if index <= 0:
        return (0, 1)
    return (1 << (index - 1), 1 << index)


def new_histogram() -> Dict[str, object]:
    """An empty histogram cell (buckets keyed by int index)."""
    return {"buckets": {}, "count": 0, "total": 0}


def observe(histogram: Dict[str, object], value: int) -> None:
    """Record one observation into a histogram cell."""
    buckets = histogram["buckets"]
    index = bucket_index(value)
    buckets[index] = buckets.get(index, 0) + 1
    histogram["count"] += 1
    histogram["total"] += int(value)


def merge_histogram(into: Dict[str, object], other: Dict[str, object]) -> None:
    """Merge ``other`` into ``into``; deterministic (pure addition)."""
    buckets = into["buckets"]
    for index, count in other["buckets"].items():
        index = int(index)
        buckets[index] = buckets.get(index, 0) + count
    into["count"] += other["count"]
    into["total"] += other["total"]


__all__ = [
    "BUCKET_CAP",
    "bucket_bounds",
    "bucket_index",
    "merge_histogram",
    "new_histogram",
    "observe",
]
