"""Typed metric instruments: counters, gauges, exponential histograms.

The instruments live as plain dicts inside the recorder; this module
holds the value semantics, chosen so that **merging is deterministic**:

* counters add;
* gauges keep the maximum (the only commutative, associative choice
  that needs no timestamps — "high-water mark" semantics);
* histograms use *fixed* exponential bucketing — bucket ``i`` holds
  values ``v`` with ``bit_length(v) == i`` (i.e. ``2**(i-1) <= v <
  2**i``), bucket 0 holds ``v <= 0`` — so two histograms built in
  different processes always share bucket boundaries and merge by
  plain per-bucket addition.
"""

from __future__ import annotations

import math
from typing import Dict

#: Largest histogram bucket index; values beyond 2**63 clamp here.
BUCKET_CAP = 64


def bucket_index(value: int) -> int:
    """Fixed exponential bucket of a non-negative integer observation."""
    if value <= 0:
        return 0
    return min(int(value).bit_length(), BUCKET_CAP)


def bucket_bounds(index: int) -> tuple:
    """Inclusive-exclusive ``[lo, hi)`` value range of a bucket."""
    if index <= 0:
        return (0, 1)
    return (1 << (index - 1), 1 << index)


def new_histogram() -> Dict[str, object]:
    """An empty histogram cell (buckets keyed by int index)."""
    return {"buckets": {}, "count": 0, "total": 0}


def observe(histogram: Dict[str, object], value: int) -> None:
    """Record one observation into a histogram cell."""
    buckets = histogram["buckets"]
    index = bucket_index(value)
    buckets[index] = buckets.get(index, 0) + 1
    histogram["count"] += 1
    histogram["total"] += int(value)


def histogram_quantile(histogram: Dict[str, object], q: float) -> int:
    """Approximate the ``q``-quantile of a histogram cell.

    Walks the cumulative counts to the bucket holding the ``q``-th
    observation and returns that bucket's inclusive upper edge — a
    conservative (never under-reporting) estimate, exact to within the
    power-of-two bucket width.  This is what turns the service's
    latency histograms into the p50/p99 figures ``repro serve`` reports.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = histogram["count"]
    if count == 0:
        return 0
    rank = max(1, min(count, math.ceil(count * q)))
    seen = 0
    last = 0
    for index in sorted(int(i) for i in histogram["buckets"]):
        seen += histogram["buckets"][index]
        last = index
        if seen >= rank:
            return bucket_bounds(index)[1] - 1
    return bucket_bounds(last)[1] - 1


def summarize_histogram(histogram: Dict[str, object]) -> Dict[str, int]:
    """Count / mean / p50 / p95 / p99 summary of one histogram cell."""
    count = histogram["count"]
    return {
        "count": count,
        "mean": (histogram["total"] // count) if count else 0,
        "p50": histogram_quantile(histogram, 0.50),
        "p95": histogram_quantile(histogram, 0.95),
        "p99": histogram_quantile(histogram, 0.99),
    }


def merge_histogram(into: Dict[str, object], other: Dict[str, object]) -> None:
    """Merge ``other`` into ``into``; deterministic (pure addition)."""
    buckets = into["buckets"]
    for index, count in other["buckets"].items():
        index = int(index)
        buckets[index] = buckets.get(index, 0) + count
    into["count"] += other["count"]
    into["total"] += other["total"]


__all__ = [
    "BUCKET_CAP",
    "bucket_bounds",
    "bucket_index",
    "histogram_quantile",
    "merge_histogram",
    "new_histogram",
    "observe",
    "summarize_histogram",
]
