"""Typed metric instruments: counters, gauges, exponential histograms.

The instruments live as plain dicts inside the recorder; this module
holds the value semantics, chosen so that **merging is deterministic**:

* counters add;
* gauges keep the maximum (the only commutative, associative choice
  that needs no timestamps — "high-water mark" semantics);
* histograms use *fixed* exponential bucketing — bucket ``i`` holds
  values ``v`` with ``bit_length(v) == i`` (i.e. ``2**(i-1) <= v <
  2**i``), bucket 0 holds ``v <= 0`` — so two histograms built in
  different processes always share bucket boundaries and merge by
  plain per-bucket addition.
"""

from __future__ import annotations

import math
from typing import Dict

#: Largest histogram bucket index; values beyond 2**63 clamp here.
BUCKET_CAP = 64


def bucket_index(value: int) -> int:
    """Fixed exponential bucket of a non-negative integer observation."""
    if value <= 0:
        return 0
    return min(int(value).bit_length(), BUCKET_CAP)


def bucket_bounds(index: int) -> tuple:
    """Inclusive-exclusive ``[lo, hi)`` value range of a bucket."""
    if index <= 0:
        return (0, 1)
    return (1 << (index - 1), 1 << index)


def new_histogram() -> Dict[str, object]:
    """An empty histogram cell (buckets keyed by int index).

    ``overflow`` counts observations beyond the cap bucket's range
    (``>= 2**BUCKET_CAP``) that were clamped into it; ``underflow``
    counts negative observations clamped into bucket 0.  Both are kept
    explicitly so saturation is *visible* — a clamped observation still
    lands in a bucket (count/total stay exact), but quantiles drawn
    from a saturated edge bucket can be flagged instead of silently
    reported as in-range values.
    """
    return {"buckets": {}, "count": 0, "total": 0,
            "overflow": 0, "underflow": 0}


def observe(histogram: Dict[str, object], value: int) -> None:
    """Record one observation into a histogram cell."""
    buckets = histogram["buckets"]
    value = int(value)
    index = bucket_index(value)
    if value < 0:
        histogram["underflow"] = histogram.get("underflow", 0) + 1
    elif value > 0 and value.bit_length() > BUCKET_CAP:
        histogram["overflow"] = histogram.get("overflow", 0) + 1
    buckets[index] = buckets.get(index, 0) + 1
    histogram["count"] += 1
    histogram["total"] += value


def histogram_quantile(histogram: Dict[str, object], q: float) -> int:
    """Approximate the ``q``-quantile of a histogram cell.

    Walks the cumulative counts to the bucket holding the ``q``-th
    observation and returns that bucket's inclusive upper edge — a
    conservative (never under-reporting) estimate, exact to within the
    power-of-two bucket width.  This is what turns the service's
    latency histograms into the p50/p99 figures ``repro serve`` reports.

    When the quantile lands in a *saturated* bucket — the cap bucket
    with clamped overflow observations, or bucket 0 with clamped
    underflow — the returned edge is a lower bound, not an estimate;
    :func:`quantile_saturated` reports that condition and
    :func:`summarize_histogram` surfaces it as a ``saturated`` flag.
    """
    return _quantile_bucket(histogram, q)[0]


def quantile_saturated(histogram: Dict[str, object], q: float) -> bool:
    """True when the ``q``-quantile falls in a bucket that clamped."""
    return _quantile_bucket(histogram, q)[1]


def _quantile_bucket(histogram: Dict[str, object], q: float):
    """(quantile value, landed-in-a-saturated-bucket) for one cell."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = histogram["count"]
    if count == 0:
        return 0, False
    rank = max(1, min(count, math.ceil(count * q)))
    seen = 0
    last = 0
    landed = None
    for index in sorted(int(i) for i in histogram["buckets"]):
        seen += histogram["buckets"][index]
        last = index
        if seen >= rank:
            landed = index
            break
    if landed is None:
        landed = last
    saturated = (
        (landed >= BUCKET_CAP and histogram.get("overflow", 0) > 0)
        or (landed == 0 and histogram.get("underflow", 0) > 0)
    )
    return bucket_bounds(landed)[1] - 1, saturated


def summarize_histogram(histogram: Dict[str, object]) -> Dict[str, object]:
    """Count / mean / p50 / p95 / p99 summary of one histogram cell.

    ``saturated`` is true when any reported quantile landed in a bucket
    that clamped observations (overflow past the cap bucket, or
    negative underflow) — the signal that the percentile column is a
    bound, not an estimate.
    """
    count = histogram["count"]
    return {
        "count": count,
        "mean": (histogram["total"] // count) if count else 0,
        "p50": histogram_quantile(histogram, 0.50),
        "p95": histogram_quantile(histogram, 0.95),
        "p99": histogram_quantile(histogram, 0.99),
        "saturated": any(
            quantile_saturated(histogram, q) for q in (0.50, 0.95, 0.99)
        ),
    }


def merge_histogram(into: Dict[str, object], other: Dict[str, object]) -> None:
    """Merge ``other`` into ``into``; deterministic (pure addition)."""
    buckets = into["buckets"]
    for index, count in other["buckets"].items():
        index = int(index)
        buckets[index] = buckets.get(index, 0) + count
    into["count"] += other["count"]
    into["total"] += other["total"]
    # .get for both sides: snapshots serialised before the saturation
    # counters existed merge as zero.
    into["overflow"] = into.get("overflow", 0) + other.get("overflow", 0)
    into["underflow"] = into.get("underflow", 0) + other.get("underflow", 0)


__all__ = [
    "BUCKET_CAP",
    "bucket_bounds",
    "bucket_index",
    "histogram_quantile",
    "merge_histogram",
    "new_histogram",
    "observe",
    "quantile_saturated",
    "summarize_histogram",
]
