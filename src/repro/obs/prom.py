"""Prometheus text-format exposition of a telemetry snapshot.

Renders every counter, gauge, and histogram of a
:meth:`repro.obs.recorder.Recorder.snapshot` in the Prometheus text
exposition format (version 0.0.4) — what ``repro serve
--metrics-port`` serves at ``/metrics`` and what the CI obs job
scrapes.  The mapping:

* counters → ``counter`` samples, ``repro_`` prefixed, dots and other
  non-metric characters folded to underscores;
* gauges → ``gauge`` samples (the recorder's gauges are high-water
  marks; the HELP line says so);
* histograms → classic Prometheus cumulative histograms: one
  ``_bucket{le="..."}`` sample per occupied fixed exponential bucket
  (upper edge inclusive, matching :func:`repro.obs.metrics
  .bucket_bounds`), a ``+Inf`` bucket, ``_sum`` and ``_count``, plus a
  ``_overflow_total`` counter when saturated observations clamped.

Determinism: metric families and samples are emitted in sorted order,
so two snapshots with equal contents render byte-identically — pinned
by the exposition-format tests.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import bucket_bounds

#: Exposition content type (text format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PREFIX = "repro_"


def metric_name(name: str) -> str:
    """Fold a recorder metric name into a legal Prometheus name."""
    out = []
    for char in name:
        if char.isalnum() or char == "_":
            out.append(char)
        else:
            out.append("_")
    folded = "".join(out)
    if folded and folded[0].isdigit():
        folded = "_" + folded
    return _PREFIX + folded


# repro: contract determinism-sink
def prometheus_exposition(snapshot: Dict[str, object]) -> str:
    """Render one snapshot in the Prometheus text exposition format."""
    lines: List[str] = []

    counters = snapshot.get("counters", {})
    for name in sorted(counters):
        metric = metric_name(name) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {int(counters[name])}")

    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        metric = metric_name(name)
        lines.append(f"# HELP {metric} repro high-water gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]}")

    histograms = snapshot.get("histograms", {})
    for name in sorted(histograms):
        cell = histograms[name]
        metric = metric_name(name)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        # Bucket keys may be ints (live cells) or strings (cells that
        # crossed a JSON boundary); normalise before sorting.
        buckets = {int(i): c for i, c in cell["buckets"].items()}
        for index in sorted(buckets):
            cumulative += buckets[index]
            upper = bucket_bounds(index)[1] - 1
            lines.append(
                f'{metric}_bucket{{le="{upper}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cell["count"]}')
        lines.append(f"{metric}_sum {int(cell['total'])}")
        lines.append(f"{metric}_count {cell['count']}")
        overflow = int(cell.get("overflow", 0))
        if overflow:
            lines.append(f"# TYPE {metric}_overflow_total counter")
            lines.append(f"{metric}_overflow_total {overflow}")
        underflow = int(cell.get("underflow", 0))
        if underflow:
            lines.append(f"# TYPE {metric}_underflow_total counter")
            lines.append(f"{metric}_underflow_total {underflow}")

    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> List[str]:
    """Schema-check an exposition document; returns the defects found.

    Not a full Prometheus parser — it pins what the format guarantees:
    every ``# TYPE`` names a known type, every sample line is
    ``name[{labels}] value`` with a parseable value, every sample
    belongs to a typed family, and histogram cumulative buckets are
    monotone with a ``+Inf`` bucket equal to ``_count``.  The CI obs
    job runs this against a live scrape.
    """
    defects: List[str] = []
    types: Dict[str, str] = {}
    buckets: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                defects.append(f"line {lineno}: malformed TYPE line")
            else:
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name, _, rest = line.partition(" ")
        if not name or not rest:
            defects.append(f"line {lineno}: malformed sample line")
            continue
        bare = name.partition("{")[0]
        try:
            value = float(rest.split()[0])
        except ValueError:
            defects.append(f"line {lineno}: unparseable value {rest!r}")
            continue
        family = bare
        for suffix in ("_bucket", "_sum", "_count"):
            if bare.endswith(suffix):
                family = bare[: -len(suffix)]
                break
        if bare not in types and family not in types:
            defects.append(f"line {lineno}: sample {bare} has no TYPE")
        if bare.endswith("_bucket") and 'le="' in name:
            edge = name.split('le="', 1)[1].split('"', 1)[0]
            upper = float("inf") if edge == "+Inf" else float(edge)
            series = buckets.setdefault(family, [])
            series.append(value)
            if len(series) >= 2 and series[-1] < series[-2]:
                defects.append(
                    f"line {lineno}: bucket le={edge} not cumulative"
                )
            del upper
        if bare.endswith("_count"):
            counts[family] = value
    for family, series in sorted(buckets.items()):
        expected = counts.get(family)
        if expected is not None and series and series[-1] != expected:
            defects.append(
                f"histogram {family}: +Inf bucket {series[-1]} != "
                f"count {expected}"
            )
    return defects


__all__ = [
    "CONTENT_TYPE",
    "metric_name",
    "prometheus_exposition",
    "validate_exposition",
]
