"""Renderers for telemetry snapshots: bit tables, span trees, JSON.

The text renderers feed ``python -m repro stats``; they consume the
plain-dict snapshot shape (:func:`repro.obs.recorder.empty_snapshot`)
and nothing else, so any merged snapshot — single process or rolled up
across the pool — renders the same way.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import bucket_bounds

#: JSON document schema version for ``repro stats --format json``.
STATS_SCHEMA_VERSION = 1


def format_bits_table(bits: Dict[str, Dict[str, int]]) -> str:
    """Per-scope bit-attribution tables.

    One section per accounting scope (``benchmark/isa/algorithm``), one
    row per category, with the share of the total; the ``total`` row is
    the compressed size in bits (the invariant the tests assert).
    """
    if not bits:
        return "no bit-accounting data (was the obs layer enabled?)"
    sections: List[str] = []
    for scope in sorted(bits):
        categories = bits[scope]
        total = sum(categories.values())
        width = max(
            [len(category) for category in categories] + [len("total")]
        )
        lines = [f"{scope or '(global)'}", f"  {'category'.ljust(width)} {'bits':>12} {'share':>7}"]
        for category in sorted(categories):
            value = categories[category]
            share = (100.0 * value / total) if total else 0.0
            lines.append(
                f"  {category.ljust(width)} {value:>12} {share:>6.2f}%"
            )
        lines.append(
            f"  {'total'.ljust(width)} {total:>12} "
            f"({(total + 7) // 8} bytes)"
        )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def format_span_tree(spans: Dict[str, Dict[str, int]]) -> str:
    """Flamegraph-style text tree of aggregated spans.

    Children indent under their parents; siblings sort by total time,
    heaviest first, so the hot path reads top to bottom.
    """
    if not spans:
        return "no spans recorded"
    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    for path in spans:
        parent, _, _leaf = path.rpartition("/")
        if parent and parent in spans:
            children.setdefault(parent, []).append(path)
        else:
            roots.append(path)

    lines: List[str] = []

    def total(path: str) -> int:
        return spans[path]["total_ns"]

    def emit(path: str, depth: int) -> None:
        cell = spans[path]
        leaf = path.rpartition("/")[2]
        label = "  " * depth + leaf
        mean_ns = cell["total_ns"] // max(1, cell["count"])
        lines.append(
            f"{label:<52} {cell['count']:>6}x "
            f"{cell['total_ns'] / 1e6:>10.2f}ms "
            f"(mean {mean_ns / 1e6:.3f}ms)"
        )
        for child in sorted(children.get(path, ()), key=total, reverse=True):
            emit(child, depth + 1)

    for root in sorted(roots, key=total, reverse=True):
        emit(root, 0)
    return "\n".join(lines)


def format_histogram(name: str, cell: Dict[str, object]) -> str:
    """One histogram as ``[lo, hi): count`` lines."""
    lines = [f"{name}: n={cell['count']} total={cell['total']}"]
    for index in sorted(int(i) for i in cell["buckets"]):
        lo, hi = bucket_bounds(index)
        lines.append(f"  [{lo}, {hi}): {cell['buckets'][index]}")
    return "\n".join(lines)


def stats_document(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The stable ``repro stats --format json`` schema.

    All keys are strings (histogram buckets included) so the document
    survives JSON round-trips unchanged; ``benchmarks`` maps each
    accounting scope to its category bits plus the total, which equals
    the compressed size of that (benchmark, codec) cell in bits.
    """
    benchmarks = {}
    for scope, categories in snapshot.get("bits", {}).items():
        total = sum(categories.values())
        benchmarks[scope] = {
            "categories": dict(sorted(categories.items())),
            "total_bits": total,
            "total_bytes": (total + 7) // 8,
        }
    return {
        "schema_version": STATS_SCHEMA_VERSION,
        "benchmarks": benchmarks,
        "counters": dict(snapshot.get("counters", {})),
        "gauges": dict(snapshot.get("gauges", {})),
        "histograms": {
            name: {
                "buckets": {
                    str(index): count
                    for index, count in sorted(
                        (int(i), c) for i, c in cell["buckets"].items()
                    )
                },
                "count": cell["count"],
                "total": cell["total"],
                "overflow": cell.get("overflow", 0),
                "underflow": cell.get("underflow", 0),
            }
            for name, cell in snapshot.get("histograms", {}).items()
        },
        "spans": {
            path: dict(cell)
            for path, cell in snapshot.get("spans", {}).items()
        },
    }


__all__ = [
    "STATS_SCHEMA_VERSION",
    "format_bits_table",
    "format_histogram",
    "format_span_tree",
    "stats_document",
]
