"""The one sanctioned wall-clock boundary of the package.

Every timing measurement in :mod:`repro` flows through these two
functions — the ``no-wallclock-in-codec`` lint rule
(:mod:`repro.verify.rules`) forbids direct ``time.time()`` /
``time.perf_counter()`` calls everywhere outside ``obs/``, so codec and
pipeline code cannot grow ad-hoc timing that bypasses the tracer.  Both
clocks are monotonic: span durations never go negative across NTP slews.
"""

from __future__ import annotations

import time


def monotonic_ns() -> int:
    """Monotonic nanoseconds; the tracer's span clock."""
    return time.perf_counter_ns()


def perf_seconds() -> float:
    """Monotonic float seconds, for coarse wall-time accounting."""
    return time.perf_counter()


__all__ = ["monotonic_ns", "perf_seconds"]
