"""The telemetry recorder: spans, metric instruments, bit accounting.

Two implementations share one duck-typed interface:

* :class:`NullRecorder` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumentation sites can branch with a
  single attribute read and the hot paths never pay for telemetry.
* :class:`Recorder` — the live implementation.  Thread-safe (one lock
  around all mutations; span stacks and bit-accounting scopes are
  thread-local), and **mergeable**: :meth:`Recorder.snapshot` produces
  a plain-dict state that pickles across the pipeline's process pool,
  and :meth:`Recorder.merge_snapshot` folds a worker's snapshot back in.

Aggregation model: spans are not stored as individual events but
aggregated by *path* — the ``/``-joined chain of enclosing span names
(attributes fold into the name as ``name{k=v,...}``).  Each path keeps
``count / total_ns / min_ns / max_ns``, which is what the flamegraph-
style tree renders and what merges associatively across processes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

from repro.obs.clock import monotonic_ns
from repro.obs.metrics import merge_histogram, new_histogram, observe

SNAPSHOT_VERSION = 1


def empty_snapshot() -> Dict[str, object]:
    """The shape every snapshot and merge target starts from."""
    return {
        "version": SNAPSHOT_VERSION,
        "counters": {},
        "gauges": {},
        "histograms": {},
        "bits": {},
        "spans": {},
    }


# repro: contract determinism-sink
def merge_into(target: Dict[str, object], snap: Dict[str, object]) -> None:
    """Fold one snapshot into another (addition / max; deterministic)."""
    counters = target["counters"]
    for name, value in snap.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = target["gauges"]
    for name, value in snap.get("gauges", {}).items():
        gauges[name] = max(gauges[name], value) if name in gauges else value
    histograms = target["histograms"]
    for name, cell in snap.get("histograms", {}).items():
        if name not in histograms:
            histograms[name] = new_histogram()
        merge_histogram(histograms[name], cell)
    bits = target["bits"]
    for scope, categories in snap.get("bits", {}).items():
        mine = bits.setdefault(scope, {})
        for category, value in categories.items():
            mine[category] = mine.get(category, 0) + value
    spans = target["spans"]
    for path, cell in snap.get("spans", {}).items():
        mine = spans.get(path)
        if mine is None:
            spans[path] = dict(cell)
        else:
            mine["count"] += cell["count"]
            mine["total_ns"] += cell["total_ns"]
            mine["min_ns"] = min(mine["min_ns"], cell["min_ns"])
            mine["max_ns"] = max(mine["max_ns"], cell["max_ns"])


# repro: contract determinism-sink
def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Merge many snapshots into a fresh one (order-insensitive)."""
    merged = empty_snapshot()
    for snap in snapshots:
        merge_into(merged, snap)
    return merged


class _NullContext:
    """Reusable no-op context manager (cheaper than a generator)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Instrumentation sites that do per-event work (measuring deltas,
    building label tables) must branch on :attr:`enabled` and keep the
    uninstrumented code path byte-for-byte what it was — that is what
    makes telemetry *provably* free when off.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullContext:
        return _NULL_CONTEXT

    def scope(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value) -> None:
        pass

    def observe(self, name: str, value: int) -> None:
        pass

    def add_bits(self, category: str, bits: int, scope: Optional[str] = None) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return empty_snapshot()

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        pass


def span_label(name: str, attrs: Dict[str, object]) -> str:
    """Fold span attributes into the aggregation name, sorted for
    determinism: ``job{algorithm=SAMC,benchmark=gcc}``."""
    if not attrs:
        return name
    inner = ",".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"{name}{{{inner}}}"


class Recorder:
    """The live recorder.  See the module docstring for the data model.

    ``scope`` is the default bit-accounting scope used when no
    :meth:`scope` context is active — the pipeline sets it to
    ``benchmark/isa/algorithm`` for each worker-side job recorder, so
    codecs can attribute bits without knowing what program they are
    compressing.
    """

    enabled = True

    def __init__(self, scope: str = "") -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._default_scope = scope
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, object] = {}
        self.histograms: Dict[str, Dict[str, object]] = {}
        self.bits: Dict[str, Dict[str, int]] = {}
        self.spans: Dict[str, Dict[str, int]] = {}

    # -- thread-local state -------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_scope(self) -> str:
        return getattr(self._tls, "scope", self._default_scope)

    # -- spans ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a nested region; aggregates under the span-stack path."""
        stack = self._stack()
        stack.append(span_label(name, attrs))
        path = "/".join(stack)
        started = monotonic_ns()
        try:
            yield self
        finally:
            elapsed = monotonic_ns() - started
            stack.pop()
            with self._lock:
                cell = self.spans.get(path)
                if cell is None:
                    self.spans[path] = {
                        "count": 1,
                        "total_ns": elapsed,
                        "min_ns": elapsed,
                        "max_ns": elapsed,
                    }
                else:
                    cell["count"] += 1
                    cell["total_ns"] += elapsed
                    if elapsed < cell["min_ns"]:
                        cell["min_ns"] = elapsed
                    if elapsed > cell["max_ns"]:
                        cell["max_ns"] = elapsed

    # -- bit accounting ------------------------------------------------

    @contextmanager
    def scope(self, name: str):
        """Route :meth:`add_bits` calls to the named accounting scope."""
        previous = getattr(self._tls, "scope", None)
        self._tls.scope = name
        try:
            yield self
        finally:
            if previous is None:
                del self._tls.scope
            else:
                self._tls.scope = previous

    def add_bits(self, category: str, bits: int, scope: Optional[str] = None) -> None:
        """Attribute ``bits`` output bits to ``category`` in a scope."""
        key = scope if scope is not None else self.current_scope()
        with self._lock:
            categories = self.bits.setdefault(key, {})
            categories[category] = categories.get(category, 0) + bits

    # -- metric instruments -------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value) -> None:
        with self._lock:
            current = self.gauges.get(name)
            if current is None or value > current:
                self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        with self._lock:
            cell = self.histograms.get(name)
            if cell is None:
                cell = self.histograms[name] = new_histogram()
            observe(cell, value)

    # -- serialisation -------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A deep plain-dict copy of the state; pickles across the pool."""
        with self._lock:
            return {
                "version": SNAPSHOT_VERSION,
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {
                    name: {
                        "buckets": dict(cell["buckets"]),
                        "count": cell["count"],
                        "total": cell["total"],
                        "overflow": cell.get("overflow", 0),
                        "underflow": cell.get("underflow", 0),
                    }
                    for name, cell in self.histograms.items()
                },
                "bits": {
                    scope: dict(categories)
                    for scope, categories in self.bits.items()
                },
                "spans": {path: dict(cell) for path, cell in self.spans.items()},
            }

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this recorder."""
        with self._lock:
            state = {
                "counters": self.counters,
                "gauges": self.gauges,
                "histograms": self.histograms,
                "bits": self.bits,
                "spans": self.spans,
            }
            merge_into(state, snap)


__all__ = [
    "NullRecorder",
    "Recorder",
    "empty_snapshot",
    "merge_into",
    "merge_snapshots",
    "span_label",
]
