"""Request-scoped trace contexts and Chrome trace-event export.

Where :mod:`repro.obs.recorder` *aggregates* spans by path (the right
shape for fleet-wide telemetry), this module records **one request's
timeline**: an ordered sequence of named segments on a monotonic clock,
cheap enough to build per traced request and small enough to ship back
to the client inside the wire response.

The model is deliberately exact: a :class:`TraceContext` starts at an
origin timestamp and every :meth:`~TraceContext.mark` *closes* the
segment that began at the previous boundary.  Segment durations are
differences of the same monotonic readings, so they partition the
timeline with no gaps and no overlaps — ``sum(dur) == last_mark -
origin`` holds as integer arithmetic, which is what lets the service
tests reconcile a server timeline against client-observed wire latency.

Sub-systems that run *under* a traced request but do not know about the
request object (the warm model registry, codec adapters) annotate the
timeline through the thread-local activation API: the executor binds
the active contexts with :func:`activate`, and :func:`trace_annotate` /
:func:`trace_event` append point events to every active context.

:func:`chrome_trace_document` renders either per-request timelines or
an aggregated recorder span tree as Chrome trace-event JSON (the
``chrome://tracing`` / Perfetto "JSON Array Format"), which is what
``python -m repro trace`` emits.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.clock import monotonic_ns

#: Schema version of the wire trace annex (the JSON document a traced
#: response carries).
TRACE_ANNEX_VERSION = 1

_active = threading.local()


class TraceContext:
    """One request's timeline: ordered exact segments plus annotations.

    ``origin_ns`` anchors the timeline (the server's receive
    timestamp); every mark closes the segment since the previous
    boundary.  ``annotations`` are point events (registry hit/train,
    codec names) stamped with their offset from the origin.
    """

    __slots__ = ("trace_id", "origin_ns", "segments", "annotations", "_last_ns")

    def __init__(self, trace_id: int, origin_ns: Optional[int] = None) -> None:
        self.trace_id = trace_id
        self.origin_ns = monotonic_ns() if origin_ns is None else origin_ns
        self._last_ns = self.origin_ns
        self.segments: List[Dict[str, int]] = []
        self.annotations: List[Dict[str, object]] = []

    def mark(self, segment_name: str, now_ns: Optional[int] = None) -> None:
        """Close the segment that started at the previous boundary."""
        now = monotonic_ns() if now_ns is None else now_ns
        if now < self._last_ns:  # monotonic clocks should forbid this,
            now = self._last_ns  # but never emit a negative duration
        self.segments.append({
            "name": segment_name,
            "start_ns": self._last_ns - self.origin_ns,
            "dur_ns": now - self._last_ns,
        })
        self._last_ns = now

    def annotate(self, name: str, **fields: object) -> None:
        """Append a point event at the current clock reading."""
        event: Dict[str, object] = {
            "name": name,
            "at_ns": monotonic_ns() - self.origin_ns,
        }
        for key in sorted(fields):
            event[key] = fields[key]
        self.annotations.append(event)

    @property
    def total_ns(self) -> int:
        """Exact sum of all closed segments (== span of the timeline)."""
        return self._last_ns - self.origin_ns

    def to_annex(self) -> Dict[str, object]:
        """The JSON document embedded in a traced wire response."""
        return {
            "version": TRACE_ANNEX_VERSION,
            "trace_id": self.trace_id,
            "total_ns": self.total_ns,
            "segments": list(self.segments),
            "annotations": list(self.annotations),
        }


# -- thread-local activation -------------------------------------------------

def active_traces() -> List[TraceContext]:
    """The trace contexts bound to this thread (empty when untraced)."""
    return getattr(_active, "contexts", [])


@contextmanager
def activate(contexts: Sequence[TraceContext]):
    """Bind ``contexts`` as this thread's active traces for a block.

    The service executor activates every traced member of a request
    group around the codec call, so annotations from shared machinery
    (one registry lookup serving the whole group) land on each traced
    request's timeline.
    """
    previous = getattr(_active, "contexts", [])
    _active.contexts = list(contexts)
    try:
        yield
    finally:
        _active.contexts = previous


def trace_annotate(name: str, **fields: object) -> None:
    """Annotate every active trace context (no-op when none are)."""
    contexts = getattr(_active, "contexts", [])
    for context in contexts:
        context.annotate(name, **fields)


@contextmanager
def trace_event(name: str):
    """Time a region as an annotation on every active trace context."""
    contexts = getattr(_active, "contexts", [])
    if not contexts:
        yield
        return
    started = monotonic_ns()
    try:
        yield
    finally:
        elapsed = monotonic_ns() - started
        for context in contexts:
            context.annotate(name, dur_ns=elapsed)


# -- Chrome trace-event export -----------------------------------------------

def parse_annex(data: bytes) -> Dict[str, object]:
    """Parse and shape-check a wire trace annex; raises ``ValueError``."""
    import json

    try:
        annex = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"trace annex is not valid JSON: {error}") from error
    if not isinstance(annex, dict):
        raise ValueError("trace annex must be a JSON object")
    for key in ("version", "trace_id", "total_ns", "segments"):
        if key not in annex:
            raise ValueError(f"trace annex missing {key!r}")
    return annex


def annex_to_chrome_events(
    annex: Dict[str, object],
    pid: int = 1,
    tid: int = 1,
    origin_us: float = 0.0,
) -> List[Dict[str, object]]:
    """One traced request's annex as Chrome ``X``-phase trace events."""
    events: List[Dict[str, object]] = [{
        "name": f"request trace_id={annex.get('trace_id', 0)}",
        "cat": "request",
        "ph": "X",
        "ts": origin_us,
        "dur": int(annex.get("total_ns", 0)) / 1000.0,
        "pid": pid,
        "tid": tid,
    }]
    for segment in annex.get("segments", []):
        events.append({
            "name": str(segment["name"]),
            "cat": "segment",
            "ph": "X",
            "ts": origin_us + int(segment["start_ns"]) / 1000.0,
            "dur": int(segment["dur_ns"]) / 1000.0,
            "pid": pid,
            "tid": tid,
        })
    for note in annex.get("annotations", []):
        event: Dict[str, object] = {
            "name": str(note.get("name", "annotation")),
            "cat": "annotation",
            "ph": "i",
            "s": "t",
            "ts": origin_us + int(note.get("at_ns", 0)) / 1000.0,
            "pid": pid,
            "tid": tid,
        }
        args = {
            key: value for key, value in sorted(note.items())
            if key not in ("name", "at_ns")
        }
        if args:
            event["args"] = args
        events.append(event)
    return events


def spans_to_chrome_events(
    spans: Dict[str, Dict[str, int]],
    pid: int = 1,
    tid: int = 1,
) -> List[Dict[str, object]]:
    """An aggregated recorder span tree as a synthetic Chrome timeline.

    Aggregated spans have no real start times, so the layout is
    synthetic but structure-preserving: siblings are laid out
    sequentially by total time (heaviest first) and children start at
    their parent's start — nesting in the viewer mirrors nesting in the
    recorded span paths, and widths are the real total durations.
    """
    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    for path in spans:
        parent, _, _leaf = path.rpartition("/")
        if parent and parent in spans:
            children.setdefault(parent, []).append(path)
        else:
            roots.append(path)

    events: List[Dict[str, object]] = []

    def total(path: str) -> int:
        return spans[path]["total_ns"]

    def emit(path: str, start_us: float) -> None:
        cell = spans[path]
        events.append({
            "name": path.rpartition("/")[2],
            "cat": "span",
            "ph": "X",
            "ts": start_us,
            "dur": cell["total_ns"] / 1000.0,
            "pid": pid,
            "tid": tid,
            "args": {"count": cell["count"]},
        })
        child_start = start_us
        for child in sorted(children.get(path, ()), key=total, reverse=True):
            emit(child, child_start)
            child_start += spans[child]["total_ns"] / 1000.0

    cursor = 0.0
    for root in sorted(roots, key=total, reverse=True):
        emit(root, cursor)
        cursor += spans[root]["total_ns"] / 1000.0
    return events


def chrome_trace_document(
    events: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Wrap events in the Chrome trace-event JSON object form."""
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro trace"},
    }


__all__ = [
    "TRACE_ANNEX_VERSION",
    "TraceContext",
    "activate",
    "active_traces",
    "annex_to_chrome_events",
    "chrome_trace_document",
    "parse_annex",
    "spans_to_chrome_events",
    "trace_annotate",
    "trace_event",
]
