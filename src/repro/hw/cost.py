"""Gate- and storage-cost models for the two decompressor designs.

The paper stops at block diagrams ("architectural details remain future
work") but argues the schemes are "reasonably implemented in hardware";
these models put first-order numbers on that claim using standard
gate-equivalent counts: a w-bit comparator ≈ 3w gates, a w-bit adder
≈ 9w gates, a w×w multiplier ≈ 9w² gates, SRAM ≈ 1 gate-equivalent per
~4 bits.  They feed the ``tab-hw`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Gate-equivalent unit costs.
GATES_PER_COMPARATOR_BIT = 3
GATES_PER_ADDER_BIT = 9
GATES_PER_MULTIPLIER_BIT2 = 9
BITS_PER_SRAM_GATE = 4


@dataclass(frozen=True)
class SamcDecoderCost:
    """Figure 5: probability memory + midpoint logic + comparators.

    ``bits_per_cycle`` nibble decoding needs ``2**n - 1`` midpoint units
    and as many comparators; the probability memory holds every Markov
    node of every stream replica.
    """

    probability_count: int
    probability_bits: int = 8
    interval_bits: int = 24
    bits_per_cycle: int = 4
    multiplier_free: bool = False

    @property
    def midpoint_units(self) -> int:
        return (1 << self.bits_per_cycle) - 1

    @property
    def probability_memory_bits(self) -> int:
        return self.probability_count * self.probability_bits

    @property
    def logic_gates(self) -> int:
        """Midpoint units + comparators (the datapath of Figure 5)."""
        w = self.interval_bits
        if self.multiplier_free:
            # Shift (wiring) + subtractor per unit.
            per_unit = GATES_PER_ADDER_BIT * w
        else:
            per_unit = (
                GATES_PER_MULTIPLIER_BIT2 * w * self.probability_bits // 8
                + GATES_PER_ADDER_BIT * w
            )
        comparators = self.midpoint_units * GATES_PER_COMPARATOR_BIT * w
        return self.midpoint_units * per_unit + comparators

    @property
    def memory_gates(self) -> int:
        return self.probability_memory_bits // BITS_PER_SRAM_GATE

    @property
    def total_gates(self) -> int:
        return self.logic_gates + self.memory_gates

    def cycles_per_block(self, block_bytes: int) -> int:
        """Decode latency for one cache block."""
        bits = 8 * block_bytes
        return -(-bits // self.bits_per_cycle)


@dataclass(frozen=True)
class SadcDecoderCost:
    """Figure 6: dictionary tables + operand-length + instruction gen.

    Three 256-entry decode tables (opcode extractor, operand lengths,
    and the Huffman/dictionary storage proper), a small control FSM, and
    for MIPS an instruction-generator mux network that scatters stream
    bits back into their word positions.
    """

    dictionary_bits: int
    table_entries: int = 256
    instruction_bits: int = 32
    needs_instruction_generator: bool = True
    instructions_per_2cycles: int = 1

    @property
    def table_memory_bits(self) -> int:
        # operand-length table (4 bits/entry) + opcode map (8 bits/entry).
        return self.dictionary_bits + self.table_entries * (4 + 8)

    @property
    def logic_gates(self) -> int:
        control = 500  # small FSM + counters
        generator = (
            self.instruction_bits * 12 if self.needs_instruction_generator else 0
        )
        return control + generator

    @property
    def memory_gates(self) -> int:
        return self.table_memory_bits // BITS_PER_SRAM_GATE

    @property
    def total_gates(self) -> int:
        return self.logic_gates + self.memory_gates

    def cycles_per_block(self, block_bytes: int) -> int:
        instructions = -(-8 * block_bytes // self.instruction_bits)
        return 2 * instructions // self.instructions_per_2cycles


def compare_decoders(samc: SamcDecoderCost, sadc: SadcDecoderCost) -> Dict[str, Dict[str, int]]:
    """Side-by-side summary used by the tab-hw benchmark."""
    return {
        "SAMC": {
            "memory_bits": samc.probability_memory_bits,
            "logic_gates": samc.logic_gates,
            "total_gates": samc.total_gates,
            "cycles_per_32B_block": samc.cycles_per_block(32),
        },
        "SADC": {
            "memory_bits": sadc.table_memory_bits,
            "logic_gates": sadc.logic_gates,
            "total_gates": sadc.total_gates,
            "cycles_per_32B_block": sadc.cycles_per_block(32),
        },
    }
