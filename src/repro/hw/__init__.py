"""Hardware decoder models: midpoint datapath and gate-cost estimates."""

from repro.hw.cost import SadcDecoderCost, SamcDecoderCost, compare_decoders
from repro.hw.midpoint import (
    INTERVAL_BITS,
    INTERVAL_MAX,
    compute_midpoints,
    parallel_decode,
    serial_decode,
    serial_midpoint,
    shift_only_midpoint,
)

__all__ = [
    "INTERVAL_BITS",
    "INTERVAL_MAX",
    "SadcDecoderCost",
    "SamcDecoderCost",
    "compare_decoders",
    "compute_midpoints",
    "parallel_decode",
    "serial_decode",
    "serial_midpoint",
    "shift_only_midpoint",
]
